"""Random waypoint mobility (Johnson & Maltz, 1996).

The model used for the paper's large-area experiments (Section 5.1):
processes pick a uniformly random destination in the area, move to it at a
speed drawn uniformly from ``[speed_min, speed_max]``, pause for
``pause_time`` seconds, and repeat.  The paper uses a 5 km x 5 km area
(25 km^2), 150 processes and a 1 s pause time.

``speed_min == speed_max == v`` gives the paper's fixed-speed data points;
``speed_max == 0`` degenerates to a stationary process (the 0 m/s points).

Spatial indexing: waypoint legs routinely span kilometres, so this is
the model for which mid-leg re-anchors (``anchor_interval_m``, see
:class:`~repro.mobility.base.MobilityModel`) actually matter — without
them a node could drift a whole leg away from its indexed position.  At
10 m/s and the default 55 m slack that is one cheap re-anchor event per
node every ~5.5 s, in exchange for O(neighbourhood) receiver scans.
"""

from __future__ import annotations

from repro.mobility.base import Leg, MobilityModel, PauseLeg
from repro.sim.space import Vec2


class RandomWaypoint(MobilityModel):
    """Uniform random-waypoint movement in an axis-aligned rectangle."""

    def __init__(self, width: float, height: float,
                 speed_min: float, speed_max: float,
                 pause_time: float = 1.0):
        super().__init__()
        if width <= 0 or height <= 0:
            raise ValueError("area dimensions must be positive")
        if speed_min < 0 or speed_max < speed_min:
            raise ValueError(
                f"need 0 <= speed_min <= speed_max, got "
                f"[{speed_min}, {speed_max}]")
        if pause_time < 0:
            raise ValueError(f"pause_time must be >= 0: {pause_time}")
        self.width = float(width)
        self.height = float(height)
        self.speed_min = float(speed_min)
        self.speed_max = float(speed_max)
        self.pause_time = float(pause_time)
        self._pausing = False

    def _random_point(self) -> Vec2:
        return Vec2(self._rng.uniform(0.0, self.width),
                    self._rng.uniform(0.0, self.height))

    def _initial_position(self) -> Vec2:
        return self._random_point()

    def _next_leg(self, origin: Vec2):
        if self.speed_max <= 0.0:
            # Degenerate stationary configuration: never move again.
            return PauseLeg(origin, float("inf"), 0.0)
        if self._pausing or self.pause_time == 0.0:
            self._pausing = False
            dest = self._random_point()
            speed = self._rng.uniform(self.speed_min, self.speed_max)
            if speed <= 0.0:
                speed = max(self.speed_max * 1e-3, 1e-6)
            return Leg(origin, dest, speed, 0.0)
        self._pausing = True
        return PauseLeg(origin, self.pause_time, 0.0)
