"""Mobility model interface and the shared leg-interpolation machinery.

A *leg* is a straight-line movement from one point to another at constant
speed (a pause is a zero-speed leg).  Concrete models only decide *what the
next leg is*; this base class owns interpolation, leg scheduling and the
``position()``/``current_speed()`` queries the rest of the system uses.

Position anchors
----------------
Besides answering exact ``position()`` queries, a model *pushes* position
updates to an observer (``on_move``) so consumers never have to poll every
node: the wireless medium registers each node's anchor in a spatial index
and prunes its per-frame receiver scans with it.  An anchor is emitted at
every leg boundary (start, arrival, pause, stop) and — when
``anchor_interval_m`` is set — every ``anchor_interval_m`` metres along a
moving leg, so a node's true position never drifts more than that distance
from its last pushed anchor.  That bounded staleness is what lets the
medium inflate its range queries by a fixed slack and still resolve the
exact receiver set (see :mod:`repro.net.medium`).
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from repro.sim.kernel import Simulator
from repro.sim.space import Vec2


@dataclass(frozen=True, slots=True)
class Leg:
    """One constant-velocity movement segment."""

    start: Vec2
    end: Vec2
    speed: float      # metres/second; 0 for a pause
    start_time: float

    @property
    def duration(self) -> float:
        if self.speed <= 0.0:
            raise ValueError("pause legs have explicit durations; "
                             "use Leg.pause()")
        return self.start.distance_to(self.end) / self.speed

    @staticmethod
    def pause(at: Vec2, duration: float, start_time: float) -> "PauseLeg":
        return PauseLeg(at, duration, start_time)


@dataclass(frozen=True, slots=True)
class PauseLeg:
    """A stationary wait at a point for a fixed duration."""

    at: Vec2
    wait: float
    start_time: float


class MobilityModel(abc.ABC):
    """Base class for all mobility models.

    Lifecycle: construct with model parameters, then :meth:`start` binds the
    model to a simulator and an RNG stream and begins movement.  After
    ``start()``, :meth:`position` and :meth:`current_speed` are valid at any
    simulation time >= the start instant.
    """

    def __init__(self) -> None:
        self._sim: Optional[Simulator] = None
        self._rng = None
        self._leg: Optional[Leg] = None
        self._pause: Optional[PauseLeg] = None
        self._arrival_timer = None
        self._anchor_timer = None
        self.legs_completed = 0
        #: Observer receiving position anchors (metres); set by the node /
        #: medium wiring before :meth:`start`.  Called with the exact
        #: position at every leg boundary and every ``anchor_interval_m``
        #: metres along a moving leg.
        self.on_move: Optional[Callable[[Vec2], None]] = None
        #: Maximum distance (metres) the model may travel between two
        #: ``on_move`` notifications; ``None`` disables mid-leg re-anchors
        #: (anchors then only fire at leg boundaries).
        self.anchor_interval_m: Optional[float] = None
        #: Observer notified (no arguments) whenever the current leg
        #: changes — at every leg boundary and on :meth:`stop`.  The
        #: vectorized medium subscribes and re-reads :meth:`leg_state`,
        #: which stays exact for the *whole* leg, so leg-change pushes
        #: are much rarer than position anchors.
        self.on_leg_change: Optional[Callable[[], None]] = None

    # -- lifecycle ---------------------------------------------------------

    def start(self, sim: Simulator, rng) -> None:
        """Bind to a simulator and begin the movement process."""
        if self._sim is not None:
            raise RuntimeError("mobility model already started")
        self._sim = sim
        self._rng = rng
        self._begin_next_leg(self._initial_position())

    def stop(self) -> None:
        """Freeze the model at its current position (node crash/shutdown)."""
        if self._sim is None:
            return
        here = self.position()
        if self._arrival_timer is not None:
            self._arrival_timer.cancel()
        self._cancel_anchor_timer()
        self._pause = PauseLeg(here, float("inf"), self._sim.now)
        self._leg = None
        if self.on_leg_change is not None:
            self.on_leg_change()
        if self.on_move is not None:
            self.on_move(here)

    @property
    def started(self) -> bool:
        return self._sim is not None

    # -- queries -----------------------------------------------------------

    def position(self) -> Vec2:
        """Exact position at the current simulation time."""
        self._require_started()
        if self._pause is not None:
            return self._pause.at
        leg = self._leg
        assert leg is not None
        if leg.speed <= 0.0:
            return leg.start
        elapsed = self._sim.now - leg.start_time
        total = leg.duration
        if total <= 0.0:
            return leg.end
        t = min(1.0, max(0.0, elapsed / total))
        return leg.start.lerp(leg.end, t)

    def current_speed(self) -> float:
        """Instantaneous speed in m/s (0 while paused)."""
        self._require_started()
        if self._pause is not None:
            return 0.0
        assert self._leg is not None
        return self._leg.speed

    def leg_state(self) -> Tuple[float, float, float, float, float, float]:
        """The current leg as ``(x0, y0, x1, y1, t0, dur)``.

        An exact encoding of :meth:`position` for the *remainder of the
        leg*: evaluating ``u = min(1, max(0, (now - t0) / dur))`` then
        ``(x0 + (x1 - x0) * u, y0 + (y1 - y0) * u)`` reproduces
        ``position()`` bit for bit at any ``now`` until the next leg
        change.  Pauses and degenerate legs encode as a parked point
        with ``dur = inf`` (``u`` is then exactly 0).  This is what the
        vectorized medium's :class:`~repro.sim.batch.LegTable` consumes.
        """
        self._require_started()
        if self._pause is not None:
            at = self._pause.at
            return (at.x, at.y, at.x, at.y, self._pause.start_time,
                    math.inf)
        leg = self._leg
        assert leg is not None
        if leg.speed <= 0.0:
            p = leg.start
            return (p.x, p.y, p.x, p.y, leg.start_time, math.inf)
        total = leg.duration
        if total <= 0.0:
            p = leg.end
            return (p.x, p.y, p.x, p.y, leg.start_time, math.inf)
        return (leg.start.x, leg.start.y, leg.end.x, leg.end.y,
                leg.start_time, total)

    # -- to be provided by concrete models -----------------------------------

    @abc.abstractmethod
    def _initial_position(self) -> Vec2:
        """Position at which the process enters the simulation."""

    @abc.abstractmethod
    def _next_leg(self, origin: Vec2):
        """Return the next :class:`Leg` or :class:`PauseLeg` from ``origin``.

        Called at the instant the previous leg finished; the returned leg's
        ``start_time`` is overwritten with the current simulation time.
        """

    # -- internal ------------------------------------------------------------

    def _require_started(self) -> None:
        if self._sim is None:
            raise RuntimeError("mobility model not started")

    def _begin_next_leg(self, origin: Vec2) -> None:
        nxt = self._next_leg(origin)
        now = self._sim.now
        self._cancel_anchor_timer()
        if isinstance(nxt, PauseLeg):
            self._pause = PauseLeg(nxt.at, nxt.wait, now)
            self._leg = None
            if nxt.wait != float("inf"):
                self._arrival_timer = self._sim.schedule(
                    nxt.wait, self._on_leg_end, nxt.at)
        elif isinstance(nxt, Leg):
            leg = Leg(nxt.start, nxt.end, nxt.speed, now)
            self._pause = None
            self._leg = leg
            if leg.speed <= 0.0 or leg.start.distance_to(leg.end) == 0.0:
                # Degenerate leg: treat as an instantaneous hop to avoid a
                # zero-duration busy loop; re-draw after a short beat.
                self._arrival_timer = self._sim.schedule(
                    1e-3, self._on_leg_end, leg.end)
            else:
                self._arrival_timer = self._sim.schedule(
                    leg.duration, self._on_leg_end, leg.end)
        else:  # pragma: no cover - defensive
            raise TypeError(f"_next_leg returned {type(nxt).__name__}")
        if self.on_leg_change is not None:
            self.on_leg_change()
        self._announce_anchor()

    def _on_leg_end(self, endpoint: Vec2) -> None:
        self.legs_completed += 1
        self._begin_next_leg(endpoint)

    # -- position-anchor pushes ----------------------------------------------

    def refresh_anchor(self) -> None:
        """Re-emit the current exact position and re-arm the mid-leg
        re-anchor timer.

        Must be called after wiring ``on_move``/``anchor_interval_m``
        onto an *already-started* model (mid-leg): the boundary anchors
        alone would otherwise let the observer's view drift without
        bound until the current leg ends.  No-op before :meth:`start`.
        """
        if self._sim is None:
            return
        self._cancel_anchor_timer()
        self._announce_anchor()

    def _cancel_anchor_timer(self) -> None:
        if self._anchor_timer is not None:
            self._anchor_timer.cancel()
            self._anchor_timer = None

    def _announce_anchor(self) -> None:
        """Push the current exact position to ``on_move`` and, while on a
        moving leg, arm the next mid-leg re-anchor so the observer's view
        never lags the true position by more than ``anchor_interval_m``."""
        if self.on_move is not None:
            self.on_move(self.position())
        self._schedule_reanchor()

    def _schedule_reanchor(self) -> None:
        leg = self._leg
        if (self.on_move is None or self.anchor_interval_m is None
                or leg is None or leg.speed <= 0.0
                or leg.start.distance_to(leg.end) == 0.0):
            return
        dt = self.anchor_interval_m / leg.speed
        remaining = leg.duration - (self._sim.now - leg.start_time)
        if remaining > dt:
            # The arrival timer (scheduled first, hence a lower sequence
            # number) wins any same-instant tie and cancels this one.
            self._anchor_timer = self._sim.schedule(dt, self._reanchor)

    def _reanchor(self) -> None:
        if self._leg is None:
            return  # leg ended in the same instant; arrival anchor covers it
        self._announce_anchor()
