"""City-section mobility (Davies, 2000), as used in the paper's Section 5.

Processes move only along the streets of a :class:`~repro.mobility.maps.StreetMap`:

* each process starts at a random intersection,
* it draws a destination intersection weighted by road popularity (popular
  roads attract traffic, creating the meeting hot-spots the paper observed),
* it follows the popularity-aware route edge by edge, driving each road
  segment at that road's speed limit (the paper: "all 15 processes drive at
  a given speed which is the speed limit of the road they are currently
  driving on, between 8 and 13 m/s"),
* at every intermediate intersection it may stop for a red light with
  probability ``stop_probability`` for U(stop_min, stop_max) seconds
  ("it may happen that they stop for a while — red light, parking etc."),
* at the destination it pauses for U(stop_min, stop_max) and then draws a
  new destination.

Spatial indexing: street segments on the campus map are short (one
block, ~150-200 m), so the leg-boundary anchors pushed at every
intersection already keep the medium's grid nearly exact; mid-leg
re-anchors only trigger on blocks longer than the configured slack.
"""

from __future__ import annotations

from typing import List, Optional

from repro.mobility.base import Leg, MobilityModel, PauseLeg
from repro.mobility.maps import StreetMap
from repro.sim.space import Vec2


class CitySection(MobilityModel):
    """Street-constrained mobility over a :class:`StreetMap`."""

    def __init__(self, street_map: StreetMap,
                 stop_probability: float = 0.3,
                 stop_min: float = 2.0,
                 stop_max: float = 15.0,
                 start_node: Optional[int] = None):
        super().__init__()
        if not 0.0 <= stop_probability <= 1.0:
            raise ValueError(f"stop_probability must be in [0,1]: "
                             f"{stop_probability}")
        if stop_min < 0 or stop_max < stop_min:
            raise ValueError("need 0 <= stop_min <= stop_max")
        self.map = street_map
        self.stop_probability = float(stop_probability)
        self.stop_min = float(stop_min)
        self.stop_max = float(stop_max)
        self._start_node = start_node
        self._at_node: Optional[int] = None        # intersection we're at
        self._route: List[int] = []                 # remaining intersections
        self._pending_stop = False

    # -- MobilityModel hooks ---------------------------------------------------

    def _initial_position(self) -> Vec2:
        if self._start_node is not None:
            node = self._start_node
            if node not in self.map.graph:
                raise ValueError(f"start_node {node} not in map")
        else:
            node = self._rng.choice(self.map.intersections())
        self._at_node = node
        return self.map.position_of(node)

    def _next_leg(self, origin: Vec2):
        rng = self._rng
        if self._pending_stop:
            # We decided to stop at this intersection; serve the stop first.
            self._pending_stop = False
            wait = rng.uniform(self.stop_min, self.stop_max)
            return PauseLeg(origin, wait, 0.0)

        if not self._route:
            # Arrived (or starting): pick a fresh destination and route.
            dest = self.map.choose_destination(rng, exclude=self._at_node)
            path = self.map.route(self._at_node, dest)
            self._route = path[1:]  # drop the current node
            if not self._route:
                # Isolated corner case: dest == src; just wait a beat.
                return PauseLeg(origin, rng.uniform(self.stop_min,
                                                    self.stop_max), 0.0)

        nxt = self._route.pop(0)
        speed = self.map.speed_limit(self._at_node, nxt)
        leg = Leg(origin, self.map.position_of(nxt), speed, 0.0)
        self._at_node = nxt
        # Decide now whether we will stop at the *arrival* intersection
        # (only at intermediate intersections; destinations always pause).
        if self._route:
            self._pending_stop = rng.random() < self.stop_probability
        else:
            self._pending_stop = True   # terminal pause at destination
        return leg

    # -- introspection (used by tests and examples) ----------------------------

    @property
    def current_intersection(self) -> Optional[int]:
        """The last intersection reached (or departed from)."""
        return self._at_node

    @property
    def remaining_route(self) -> List[int]:
        return list(self._route)
