"""Street maps for the city-section mobility model.

The paper drove 15 processes over the real EPFL campus street map
(1200 x 900 m) with per-road speed limits and *realistic traffic
conditions* — "some roads are more often used than others".  The real map
is not distributed with the paper, so :func:`campus_map` synthesises a
street network with the properties the evaluation depends on:

* the same 1200 x 900 m extent and urban radio range,
* speed limits in the paper's 8-13 m/s band,
* a popularity weight per road, with a dominant main avenue, so that
  processes concentrate on popular roads and meet at hot-spots (the effect
  the paper uses to explain Figs. 14-16).

Maps are :class:`networkx.Graph` instances wrapped in :class:`StreetMap`;
nodes are intersections with ``pos`` attributes (:class:`Vec2`), edges are
road segments with ``speed_limit`` (m/s), ``popularity`` (> 0, relative
traffic share) and ``length`` (m, derived).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import networkx as nx

from repro.sim.space import Vec2


@dataclass
class StreetMap:
    """A street network plus cached routing structures."""

    graph: nx.Graph
    name: str = "street-map"
    _route_cache: Dict[Tuple[int, int], List[int]] = field(
        default_factory=dict, repr=False)
    # Lazy caches over the (immutable after __post_init__) graph: the
    # destination draw runs on every mobility leg of every node, and
    # networkx attribute views are far too slow for that hot path.
    _weights_cache: Dict[int, float] = field(
        default_factory=dict, repr=False)
    _nodes_cache: List[int] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.graph.number_of_nodes() == 0:
            raise ValueError("street map has no intersections")
        if not nx.is_connected(self.graph):
            raise ValueError("street map must be connected")
        for u, v, data in self.graph.edges(data=True):
            if "speed_limit" not in data or data["speed_limit"] <= 0:
                raise ValueError(f"edge {u}-{v} missing positive speed_limit")
            pu: Vec2 = self.graph.nodes[u]["pos"]
            pv: Vec2 = self.graph.nodes[v]["pos"]
            data["length"] = pu.distance_to(pv)
            data.setdefault("popularity", 1.0)
            # Routing cost: popular roads are *cheaper*, so shortest-path
            # routing concentrates traffic on them, creating the hot-spots
            # the paper observed on the campus.
            data["route_cost"] = (data["length"] / data["speed_limit"]
                                  / data["popularity"])

    # -- queries -------------------------------------------------------------

    def intersections(self) -> List[int]:
        """The sorted intersection ids (cached — do not mutate)."""
        if not self._nodes_cache:
            self._nodes_cache = sorted(self.graph.nodes)
        return self._nodes_cache

    def position_of(self, node_id: int) -> Vec2:
        return self.graph.nodes[node_id]["pos"]

    def speed_limit(self, u: int, v: int) -> float:
        return self.graph.edges[u, v]["speed_limit"]

    def popularity_weights(self) -> Dict[int, float]:
        """Node attractiveness = total popularity of incident roads
        (cached — the graph is immutable after construction)."""
        if not self._weights_cache:
            weights = self._weights_cache
            for node in self.graph.nodes:
                weights[node] = sum(
                    self.graph.edges[node, nbr]["popularity"]
                    for nbr in self.graph.neighbors(node))
        return self._weights_cache

    def choose_destination(self, rng: random.Random, exclude: int) -> int:
        """Draw a destination intersection, weighted by attractiveness."""
        weights = self.popularity_weights()
        nodes = [n for n in self.intersections() if n != exclude]
        if not nodes:
            return exclude
        totals = [weights[n] for n in nodes]
        return rng.choices(nodes, weights=totals, k=1)[0]

    def route(self, src: int, dst: int) -> List[int]:
        """Popularity-aware shortest path (cached)."""
        key = (src, dst)
        path = self._route_cache.get(key)
        if path is None:
            path = nx.shortest_path(self.graph, src, dst,
                                    weight="route_cost")
            self._route_cache[key] = path
        return path

    @property
    def extent(self) -> Tuple[float, float]:
        xs = [self.position_of(n).x for n in self.graph.nodes]
        ys = [self.position_of(n).y for n in self.graph.nodes]
        return (max(xs) - min(xs), max(ys) - min(ys))


def grid_map(columns: int, rows: int, width: float, height: float,
             speed_limits: Tuple[float, float] = (8.0, 13.0),
             main_avenue_popularity: float = 6.0,
             seed: int = 0,
             name: str = "grid") -> StreetMap:
    """Build a ``columns x rows`` Manhattan street grid.

    One horizontal *main avenue* (the middle row) gets
    ``main_avenue_popularity`` while side streets get popularity drawn from
    U(0.5, 1.5); speed limits are drawn uniformly from ``speed_limits`` per
    road segment.  Deterministic for a given ``seed``.
    """
    if columns < 2 or rows < 2:
        raise ValueError("grid needs at least 2x2 intersections")
    rng = random.Random(seed)
    graph = nx.Graph()
    dx = width / (columns - 1)
    dy = height / (rows - 1)

    def node_id(ix: int, iy: int) -> int:
        return iy * columns + ix

    for iy in range(rows):
        for ix in range(columns):
            graph.add_node(node_id(ix, iy), pos=Vec2(ix * dx, iy * dy))

    main_row = rows // 2
    lo, hi = speed_limits
    for iy in range(rows):
        for ix in range(columns):
            here = node_id(ix, iy)
            if ix + 1 < columns:
                pop = (main_avenue_popularity if iy == main_row
                       else rng.uniform(0.5, 1.5))
                graph.add_edge(here, node_id(ix + 1, iy),
                               speed_limit=rng.uniform(lo, hi),
                               popularity=pop)
            if iy + 1 < rows:
                graph.add_edge(here, node_id(ix, iy + 1),
                               speed_limit=rng.uniform(lo, hi),
                               popularity=rng.uniform(0.5, 1.5))
    return StreetMap(graph=graph, name=name)


def campus_map(seed: int = 7) -> StreetMap:
    """The synthetic stand-in for the paper's EPFL campus map.

    1200 x 900 m, a 7 x 5 street grid (roughly the block size of the
    campus), speed limits 8-13 m/s, one dominant east-west avenue.
    """
    return grid_map(columns=7, rows=5, width=1200.0, height=900.0,
                    speed_limits=(8.0, 13.0),
                    main_avenue_popularity=6.0,
                    seed=seed, name="epfl-campus-synthetic")
