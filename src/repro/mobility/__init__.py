"""Mobility models.

The paper evaluates under the two most popular MANET mobility models
(Section 2): *random waypoint* and *city section*.  Both are implemented
here with continuous positions — a model exposes its exact position at any
simulation instant by interpolating along its current movement leg, so the
wireless medium never sees stale, tick-quantised coordinates.

* :class:`~repro.mobility.random_waypoint.RandomWaypoint` — uniform random
  destinations in a rectangle, speed drawn from ``[speed_min, speed_max]``,
  pause between legs.
* :class:`~repro.mobility.city_section.CitySection` — movement constrained
  to a street graph with per-road speed limits, road popularity weights and
  stochastic stops at intersections (red lights / parking).
* :class:`~repro.mobility.stationary.Stationary` — a fixed position
  (the paper's 0 m/s data points).
* :func:`~repro.mobility.maps.campus_map` — a synthetic 1200x900 m street
  network standing in for the EPFL campus map used by the paper.
"""

from repro.mobility.base import MobilityModel, Leg
from repro.mobility.random_waypoint import RandomWaypoint
from repro.mobility.city_section import CitySection
from repro.mobility.stationary import Stationary
from repro.mobility.maps import StreetMap, campus_map, grid_map

__all__ = [
    "MobilityModel",
    "Leg",
    "RandomWaypoint",
    "CitySection",
    "Stationary",
    "StreetMap",
    "campus_map",
    "grid_map",
]
