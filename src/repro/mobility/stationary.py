"""A process that never moves (the paper's 0 m/s configurations)."""

from __future__ import annotations

from repro.mobility.base import MobilityModel, PauseLeg
from repro.sim.space import Vec2


class Stationary(MobilityModel):
    """Fixed-position mobility.

    If ``position`` is omitted, a uniform random point in
    ``width x height`` is drawn at start time, which lets stationary
    scenarios share the placement distribution of
    :class:`~repro.mobility.random_waypoint.RandomWaypoint`.

    Spatial indexing: a stationary process emits exactly one position
    anchor (at start) and never schedules a mid-leg re-anchor, so a
    1000-node stationary population costs the medium's grid nothing
    after setup.
    """

    def __init__(self, position: Vec2 | None = None,
                 width: float | None = None, height: float | None = None):
        super().__init__()
        if position is None and (width is None or height is None):
            raise ValueError(
                "provide either a fixed position or area dimensions")
        self._fixed = position
        self.width = width
        self.height = height

    def _initial_position(self) -> Vec2:
        if self._fixed is not None:
            return self._fixed
        return Vec2(self._rng.uniform(0.0, self.width),
                    self._rng.uniform(0.0, self.height))

    def _next_leg(self, origin: Vec2):
        return PauseLeg(origin, float("inf"), 0.0)
