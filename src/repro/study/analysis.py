"""Analysis over study result matrices: Pareto frontiers and deltas.

Operates on plain row dicts (the ``rows`` of an
:class:`~repro.harness.experiments.ExperimentResult`), so everything
here composes with hand-written experiments too.  Rendering goes
through :func:`repro.harness.reporting.format_table` /
:func:`~repro.harness.reporting.pivot_table`, keeping the console
output consistent with every other table the harness prints.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.harness.reporting import _render_cell, format_table, pivot_table
from repro.study.spec import Metric, Objective, PivotSpec

__all__ = ["DominatedPoint", "FrontierResult", "dominates",
           "pareto_frontier", "frontier_report", "component_deltas",
           "delta_report", "pivot_report"]


# --------------------------------------------------------------------------
# Pareto frontiers
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class DominatedPoint:
    """A dominated row together with one witness that dominates it."""

    row: Mapping[str, object]
    by: Mapping[str, object]


@dataclass(frozen=True)
class FrontierResult:
    """Pareto extraction outcome: the frontier plus dominated points."""

    frontier: Tuple[Mapping[str, object], ...]
    dominated: Tuple[DominatedPoint, ...]
    objectives: Tuple[Objective, ...]


def _objective_vector(row: Mapping[str, object],
                      objectives: Sequence[Objective]) -> List[float]:
    vec = []
    for objective in objectives:
        if objective.key not in row:
            raise KeyError(
                f"objective {objective.key!r} missing from row; "
                f"known columns: {sorted(row)}")
        value = row[objective.key]
        if not isinstance(value, (int, float)) \
                or not math.isfinite(float(value)):
            raise ValueError(
                f"objective {objective.key!r} has non-finite value "
                f"{value!r}: Pareto dominance over inf/NaN is undefined "
                f"— filter such rows (or fix the metric) before "
                f"extracting a frontier")
        vec.append(float(value))
    return vec


def dominates(a: Sequence[float], b: Sequence[float],
              objectives: Sequence[Objective]) -> bool:
    """Whether objective vector ``a`` Pareto-dominates ``b``.

    ``a`` dominates ``b`` when it is at least as good in *every*
    objective and strictly better in at least one.  Exactly equal
    vectors dominate each other in neither direction, so ties survive
    to the frontier together.
    """
    strictly_better = False
    for objective, va, vb in zip(objectives, a, b):
        if objective.better(vb, va):
            return False
        if objective.better(va, vb):
            strictly_better = True
    return strictly_better


def pareto_frontier(rows: Sequence[Mapping[str, object]],
                    objectives: Sequence[Objective]) -> FrontierResult:
    """Extract the Pareto-optimal subset of ``rows``.

    Every row must carry every objective key with a finite value
    (non-finite values raise :class:`ValueError` — an ``inf`` joules
    cell would otherwise silently dominate or be dominated by
    everything).  Input order is preserved within both the frontier
    and the dominated list; each dominated point records one witness
    row that dominates it.
    """
    objectives = tuple(objectives)
    if not objectives:
        raise ValueError("pareto_frontier needs at least one objective")
    rows = list(rows)
    vectors = [_objective_vector(row, objectives) for row in rows]
    frontier: List[Mapping[str, object]] = []
    dominated: List[DominatedPoint] = []
    for i, row in enumerate(rows):
        witness = None
        for j, other in enumerate(rows):
            if i != j and dominates(vectors[j], vectors[i], objectives):
                witness = other
                break
        if witness is None:
            frontier.append(row)
        else:
            dominated.append(DominatedPoint(row=row, by=witness))
    return FrontierResult(frontier=tuple(frontier),
                          dominated=tuple(dominated),
                          objectives=objectives)


def _point_label(row: Mapping[str, object],
                 keys: Sequence[str]) -> str:
    cells = [k for k in keys if k in row]
    return ",".join(f"{k}={_render_cell(row[k])}" for k in cells)


def frontier_report(result: FrontierResult,
                    cell_keys: Sequence[str]) -> str:
    """Render a frontier as a printable table with dominance accounting.

    ``cell_keys`` are the parameter columns identifying a point (axis
    and variant cells); the frontier table shows them plus every
    objective, and each dominated point is listed with the frontier
    point that beats it.
    """
    goals = ", ".join(f"{o.key} {o.goal}" for o in result.objectives)
    columns = [k for k in cell_keys] + [o.key for o in result.objectives]
    lines = [f"-- Pareto frontier ({goals}) --",
             format_table([dict(r) for r in result.frontier],
                          columns=columns)]
    total = len(result.frontier) + len(result.dominated)
    lines.append(f"frontier: {len(result.frontier)} of {total} points; "
                 f"{len(result.dominated)} dominated")
    if result.dominated:
        rows = []
        for point in result.dominated:
            row = {k: point.row.get(k, "") for k in columns}
            row["dominated_by"] = _point_label(point.by, cell_keys)
            rows.append(row)
        lines.append(format_table(rows, columns=columns + ["dominated_by"]))
    return "\n".join(lines)


# --------------------------------------------------------------------------
# Component marginals / deltas
# --------------------------------------------------------------------------

def component_deltas(rows: Sequence[Mapping[str, object]],
                     variant_keys: Sequence[str],
                     axis_keys: Sequence[str],
                     metrics: Sequence[Metric]
                     ) -> List[Dict[str, object]]:
    """Per-axis-cell deltas of every variant against the baseline.

    Rows are grouped by their axis cells; within each group the *first*
    row (declaration order — the all-components-on baseline of a
    default :class:`~repro.study.spec.Toggles`) is the reference, and
    every other variant's metrics are reported as ``d_<metric>``
    differences against it.  The marginal effect of toggling a
    component off is then one row per axis point.
    """
    variant_keys = [k for k in variant_keys]
    groups: Dict[Tuple, List[Mapping[str, object]]] = {}
    order: List[Tuple] = []
    for row in rows:
        key = tuple(row.get(k) for k in axis_keys)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(row)
    out: List[Dict[str, object]] = []
    for key in order:
        group = groups[key]
        baseline = group[0]
        for row in group[1:]:
            delta: Dict[str, object] = {
                k: row[k] for k in axis_keys if k in row}
            for k in variant_keys:
                if k in row:
                    delta[k] = row[k]
            for metric in metrics:
                column = metric.column
                if column in row and column in baseline:
                    delta[f"d_{column}"] = row[column] - baseline[column]
            out.append(delta)
    return out


def delta_report(rows: Sequence[Mapping[str, object]],
                 variant_keys: Sequence[str],
                 axis_keys: Sequence[str],
                 metrics: Sequence[Metric]) -> str:
    """Render the component delta table (see :func:`component_deltas`)."""
    deltas = component_deltas(rows, variant_keys, axis_keys, metrics)
    header = "-- component deltas vs baseline (first variant) --"
    if not deltas:
        return header + "\n(no toggled variants)"
    return header + "\n" + format_table(deltas)


def pivot_report(rows: Sequence[Mapping[str, object]],
                 pivot: PivotSpec) -> str:
    """Render a study's declared pivot grid as a titled table."""
    rows_label = " x ".join(pivot.rows)
    cols_label = " x ".join(pivot.cols)
    title = f"-- {pivot.value} by {rows_label} over {cols_label} --"
    return title + "\n" + pivot_table(rows, pivot.rows, pivot.cols,
                                      pivot.value)
