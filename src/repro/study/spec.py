"""Declarative study specifications: axis grids and component toggles.

A *study* turns one base :class:`~repro.harness.scenario.ScenarioConfig`
plus a handful of declarations into a full experiment matrix:

* an :class:`Axis` is a named grid over any config field path
  (``"faults.churn.mean_session_s"``, ``"gossip.fanout"``,
  ``"protocol"`` via the registry, ...) or an arbitrary per-value
  config transform;
* a :class:`Component` is an on/off toggle expressed as config changes
  (back-off, id-exchange, adaptive heartbeat, ...); a :class:`Toggles`
  dimension enumerates named :class:`Variant` subsets of its
  components (default: the full system plus each leave-one-out);
* a :class:`StudySpec` combines the base config, an ordered ``grid``
  of dimensions, the averaging seeds and the :class:`Metric` columns
  to report — optionally with Pareto :class:`Objective` directions and
  a :class:`PivotSpec` rendering.

:func:`expand` turns a spec into its deterministic cross product of
:class:`StudyCell` jobs — pure declaration-to-configs translation, no
execution (that is :func:`repro.study.engine.run_study`'s job).  The
expansion order is the grid declaration order with the *rightmost*
dimension varying fastest, exactly like the nested ``for`` loops the
hand-written experiments used — which is what lets the collapsed
``abl-*`` studies reproduce their frozen originals row for row.
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional, Tuple, Union

from repro.harness.scenario import ScenarioConfig

__all__ = ["Axis", "Component", "Variant", "Toggles", "Metric",
           "Objective", "PivotSpec", "StudySpec", "StudyCell",
           "set_field_path", "expand"]


# --------------------------------------------------------------------------
# Config field paths
# --------------------------------------------------------------------------

def set_field_path(config, path: str, value):
    """Return a copy of ``config`` with the dotted ``path`` set to
    ``value``.

    Every segment but the last must name a dataclass field holding
    another dataclass (``"frugal.eviction_policy"`` replaces the
    ``eviction_policy`` field of the nested
    :class:`~repro.core.config.FrugalConfig`); all the intermediate
    objects are rebuilt immutably via :func:`dataclasses.replace`, so
    the originals are never mutated.  Unknown fields and ``None``
    intermediates raise :class:`ValueError` naming the offending
    segment — a typo'd axis path must fail at declaration time, not
    silently sweep nothing.
    """
    head, _, rest = path.partition(".")
    if not dataclasses.is_dataclass(config):
        raise ValueError(
            f"cannot descend into {type(config).__name__!r} at "
            f"segment {head!r} of path {path!r}: not a dataclass")
    names = {f.name for f in dataclasses.fields(config)}
    if head not in names:
        raise ValueError(
            f"unknown config field {head!r} in path {path!r}; "
            f"known fields of {type(config).__name__}: {sorted(names)}")
    if not rest:
        return dataclasses.replace(config, **{head: value})
    child = getattr(config, head)
    if child is None:
        raise ValueError(
            f"cannot set {path!r}: intermediate field {head!r} is None "
            f"(give the base config a concrete value first)")
    return dataclasses.replace(config, **{head: set_field_path(child, rest,
                                                               value)})


# --------------------------------------------------------------------------
# Dimensions
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class Axis:
    """A named grid over one config degree of freedom.

    ``values`` are swept in declaration order.  Each value is applied
    to the base config either through ``path`` — one dotted field path,
    or a tuple of paths all set to the same value (e.g. pinning
    ``mobility.speed_min`` and ``mobility.speed_max`` together) — or
    through an arbitrary ``apply(config, value) -> config`` transform
    for knobs that are not a plain field (duty-cycle schedules, fault
    plans).  When neither is given, ``path`` defaults to ``name``,
    which covers top-level fields such as ``"protocol"`` directly.

    ``cells`` maps a value to the parameter cells of its result row
    (default ``{name: value}``); axes over composite values use it to
    explode a tuple into several row columns.
    """

    name: str
    values: Tuple
    path: Optional[Union[str, Tuple[str, ...]]] = None
    apply: Optional[Callable[[ScenarioConfig, object], ScenarioConfig]] = None
    cells: Optional[Callable[[object], Dict[str, object]]] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", tuple(self.values))
        if not self.values:
            raise ValueError(f"axis {self.name!r} has no values")
        if self.path is not None and self.apply is not None:
            raise ValueError(
                f"axis {self.name!r}: give either path or apply, not both")

    def paths(self) -> Tuple[str, ...]:
        """The field path(s) this axis writes (empty for apply-axes)."""
        if self.apply is not None:
            return ()
        path = self.name if self.path is None else self.path
        return (path,) if isinstance(path, str) else tuple(path)

    def points(self) -> Tuple[Tuple[Dict[str, object], Callable], ...]:
        """One ``(row cells, config transform)`` pair per value."""
        out = []
        for value in self.values:
            cells = (dict(self.cells(value)) if self.cells is not None
                     else {self.name: value})

            def transform(config, _value=value):
                if self.apply is not None:
                    return self.apply(config, _value)
                for path in self.paths():
                    config = set_field_path(config, path, _value)
                return config

            out.append((cells, transform))
        return tuple(out)


@dataclass(frozen=True)
class Component:
    """An on/off toggle expressed as config changes.

    ``off`` (and, rarely, ``on``) map dotted field paths to the values
    installed when the component is disabled (enabled).  The base
    config is expected to describe the *full* system, so most
    components only need ``off`` changes.  ``transform_off`` /
    ``transform_on`` accept a ``config -> config`` callable for
    toggles that cannot be expressed as plain field writes.
    """

    name: str
    off: Mapping[str, object] = field(default_factory=dict)
    on: Mapping[str, object] = field(default_factory=dict)
    transform_off: Optional[Callable[[ScenarioConfig],
                                     ScenarioConfig]] = None
    transform_on: Optional[Callable[[ScenarioConfig],
                                    ScenarioConfig]] = None

    def apply(self, config: ScenarioConfig,
              enabled: bool) -> ScenarioConfig:
        """Install this component's enabled/disabled changes."""
        changes = self.on if enabled else self.off
        for path, value in changes.items():
            config = set_field_path(config, path, value)
        transform = self.transform_on if enabled else self.transform_off
        return transform(config) if transform is not None else config


@dataclass(frozen=True)
class Variant:
    """One named subset of enabled components.

    ``cells`` overrides the row cells (default ``{toggles.key:
    label}``); ``label`` overrides the derived name (``"+"``-joined
    component names when everything is on, ``no-<name>`` per missing
    component otherwise).
    """

    enabled: Tuple[str, ...]
    label: Optional[str] = None
    cells: Optional[Mapping[str, object]] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "enabled", tuple(self.enabled))


@dataclass(frozen=True)
class Toggles:
    """The component-variant dimension of a study grid.

    Enumerates ``variants`` — explicit subsets of ``components`` to
    run — in declaration order.  The default is the classic ablation
    shape: the full system first (every component on, the baseline the
    delta tables compare against), then one leave-one-out variant per
    component.  Disabled components apply their ``off`` changes in
    component declaration order, so toggles compose deterministically.
    """

    components: Tuple[Component, ...]
    key: str = "variant"
    variants: Optional[Tuple[Variant, ...]] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "components", tuple(self.components))
        if not self.components:
            raise ValueError("Toggles needs at least one component")
        names = [c.name for c in self.components]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate component names: {names}")
        if self.variants is not None:
            object.__setattr__(self, "variants", tuple(self.variants))
            for variant in self.variants:
                unknown = set(variant.enabled) - set(names)
                if unknown:
                    raise ValueError(
                        f"variant enables unknown components "
                        f"{sorted(unknown)}; declared: {names}")

    def resolved_variants(self) -> Tuple[Variant, ...]:
        """The explicit variants, or the default all-on + leave-one-out."""
        if self.variants is not None:
            return self.variants
        names = tuple(c.name for c in self.components)
        out = [Variant(enabled=names)]
        for name in names:
            out.append(Variant(enabled=tuple(n for n in names
                                             if n != name)))
        return tuple(out)

    def label(self, variant: Variant) -> str:
        """The display label of ``variant`` (explicit or derived)."""
        if variant.label is not None:
            return variant.label
        names = [c.name for c in self.components]
        missing = [n for n in names if n not in variant.enabled]
        if not missing:
            return "+".join(names)
        return "+".join(f"no-{n}" for n in missing)

    def points(self) -> Tuple[Tuple[Dict[str, object], Callable], ...]:
        """One ``(row cells, config transform)`` pair per variant."""
        out = []
        for variant in self.resolved_variants():
            cells = (dict(variant.cells) if variant.cells is not None
                     else {self.key: self.label(variant)})

            def transform(config, _variant=variant):
                for component in self.components:
                    config = component.apply(
                        config, component.name in _variant.enabled)
                return config

            out.append((cells, transform))
        return tuple(out)


#: A study grid dimension: an axis sweep or a component-variant set.
Dimension = Union[Axis, Toggles]


# --------------------------------------------------------------------------
# Metrics, objectives, pivots
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class Metric:
    """One reported column of a study row.

    By default the column is the mean of summary key ``key`` (which
    defaults to ``column``) across the seeds; ``std=True`` also emits
    ``<column>_std``.  ``derive`` computes the value from the whole
    :class:`~repro.harness.runner.MultiSeedResult` instead (e.g. mean
    wall-clock), overriding the summary lookup.
    """

    column: str
    key: Optional[str] = None
    std: bool = False
    derive: Optional[Callable] = None


@dataclass(frozen=True)
class Objective:
    """One Pareto objective: a row key and an optimisation direction."""

    key: str
    goal: str = "max"

    def __post_init__(self) -> None:
        if self.goal not in ("max", "min"):
            raise ValueError(
                f"objective {self.key!r}: goal must be 'max' or 'min', "
                f"got {self.goal!r}")

    def better(self, a: float, b: float) -> bool:
        """Whether value ``a`` strictly beats ``b`` in this direction."""
        return a > b if self.goal == "max" else a < b


@dataclass(frozen=True)
class PivotSpec:
    """A pivot rendering: row keys x column keys -> value key."""

    rows: Tuple[str, ...]
    cols: Tuple[str, ...]
    value: str

    def __post_init__(self) -> None:
        rows = ((self.rows,) if isinstance(self.rows, str)
                else tuple(self.rows))
        cols = ((self.cols,) if isinstance(self.cols, str)
                else tuple(self.cols))
        object.__setattr__(self, "rows", rows)
        object.__setattr__(self, "cols", cols)
        if not rows or not cols:
            raise ValueError("pivot needs at least one row and col key")


# --------------------------------------------------------------------------
# The study spec and its expansion
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class StudySpec:
    """A complete declarative experiment: base + grid + seeds + metrics.

    ``grid`` is an ordered tuple of dimensions (axes and component
    toggles); the cross product is swept with the rightmost dimension
    varying fastest.  ``parameters`` becomes the resulting
    :class:`~repro.harness.experiments.ExperimentResult.parameters`;
    ``objectives`` arm Pareto-frontier extraction and ``pivot`` a grid
    rendering, both attached to the result as printable notes.
    """

    study_id: str
    title: str
    base: ScenarioConfig
    grid: Tuple[Dimension, ...]
    seeds: Tuple[int, ...]
    metrics: Tuple[Metric, ...]
    parameters: Mapping[str, object] = field(default_factory=dict)
    objectives: Tuple[Objective, ...] = ()
    pivot: Optional[PivotSpec] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "grid", tuple(self.grid))
        object.__setattr__(self, "seeds", tuple(self.seeds))
        object.__setattr__(self, "metrics", tuple(self.metrics))
        object.__setattr__(self, "objectives", tuple(self.objectives))
        if not self.grid:
            raise ValueError(f"study {self.study_id!r} has an empty grid")
        if not self.seeds:
            raise ValueError(f"study {self.study_id!r} has no seeds")
        if not self.metrics:
            raise ValueError(f"study {self.study_id!r} has no metrics")
        columns = [m.column for m in self.metrics]
        if len(set(columns)) != len(columns):
            raise ValueError(
                f"study {self.study_id!r} repeats metric columns: "
                f"{columns}")

    def variant_keys(self) -> Tuple[str, ...]:
        """Row-cell keys contributed by the Toggles dimensions."""
        keys = []
        for dim in self.grid:
            if isinstance(dim, Toggles):
                for cells, _ in dim.points():
                    for key in cells:
                        if key not in keys:
                            keys.append(key)
        return tuple(keys)

    def axis_keys(self) -> Tuple[str, ...]:
        """Row-cell keys contributed by the Axis dimensions."""
        keys = []
        for dim in self.grid:
            if isinstance(dim, Axis):
                for cells, _ in dim.points():
                    for key in cells:
                        if key not in keys:
                            keys.append(key)
        return tuple(keys)


@dataclass(frozen=True)
class StudyCell:
    """One expanded grid point: its row cells and its full config."""

    cells: Mapping[str, object]
    config: ScenarioConfig


def expand(spec: StudySpec) -> Tuple[StudyCell, ...]:
    """The deterministic cross product of a study's grid.

    Pure declaration-to-config translation: the same spec always
    expands to the same cells in the same order (grid declaration
    order, rightmost dimension fastest — the nested-loop order of the
    hand-written experiments).  Two dimensions emitting the same row
    key is a declaration bug and raises :class:`ValueError`.
    """
    per_dim = [dim.points() for dim in spec.grid]
    out = []
    for combo in itertools.product(*per_dim):
        cells: Dict[str, object] = {}
        config = spec.base
        for dim_cells, transform in combo:
            clash = set(dim_cells) & set(cells)
            if clash:
                raise ValueError(
                    f"study {spec.study_id!r}: row key(s) {sorted(clash)} "
                    f"emitted by more than one grid dimension")
            cells.update(dim_cells)
            config = transform(config)
        out.append(StudyCell(cells=cells, config=config))
    return tuple(out)
