"""Study execution: expand the grid, run it through the cached engine.

:func:`run_study` is the whole pipeline: expand the
:class:`~repro.study.spec.StudySpec` into its cell cross product,
submit every ``(cell, seed)`` job as *one* batch to the parallel
execution engine (:mod:`repro.harness.parallel`) — so worker pools
stay saturated across cell boundaries and the on-disk result cache
answers every previously-computed cell, making re-runs compute only
dirty cells — then fold the per-seed results into one
:class:`~repro.harness.experiments.ExperimentResult` row per cell.

Analysis (component delta tables, the declared pivot, the Pareto
frontier) is rendered into ``ExperimentResult.notes`` so the CLI
prints it below the row table without any per-study code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.harness import parallel
from repro.harness.experiments import ExperimentResult
from repro.harness.runner import MultiSeedResult
from repro.study import analysis
from repro.study.spec import StudyCell, StudySpec, Toggles, expand

__all__ = ["StudyResult", "run_study"]


@dataclass
class StudyResult:
    """A fully executed study: per-seed results folded into rows.

    ``experiment`` is the flat row table (identical in shape to what a
    hand-written experiment function returns — the declaration-
    equivalence suite asserts ``==`` against the frozen originals);
    ``per_cell`` keeps the underlying
    :class:`~repro.harness.runner.MultiSeedResult` of every cell for
    ad-hoc analysis beyond the declared metrics.
    """

    spec: StudySpec
    cells: Tuple[StudyCell, ...]
    per_cell: List[MultiSeedResult]
    experiment: ExperimentResult

    def frontier(self) -> analysis.FrontierResult:
        """Pareto extraction over the spec's declared objectives."""
        if not self.spec.objectives:
            raise ValueError(
                f"study {self.spec.study_id!r} declares no objectives")
        return analysis.pareto_frontier(self.experiment.rows,
                                        self.spec.objectives)


def _metric_value(spec: StudySpec, multi: MultiSeedResult,
                  row: Dict[str, object]) -> None:
    summary = multi.summary()
    for metric in spec.metrics:
        if metric.derive is not None:
            row[metric.column] = metric.derive(multi)
            continue
        key = metric.key or metric.column
        if key not in summary:
            raise KeyError(
                f"study {spec.study_id!r}: metric key {key!r} not in "
                f"the scenario summary; known keys: {sorted(summary)} "
                f"(energy/fault metrics appear only when the base "
                f"config is instrumented)")
        agg = summary[key]
        row[metric.column] = agg.mean
        if metric.std:
            row[metric.column + "_std"] = agg.std


def _notes(spec: StudySpec, rows: List[Dict[str, object]]) -> List[str]:
    notes: List[str] = []
    if spec.pivot is not None:
        notes.append(analysis.pivot_report(rows, spec.pivot))
    if any(isinstance(dim, Toggles) for dim in spec.grid):
        notes.append(analysis.delta_report(rows, spec.variant_keys(),
                                           spec.axis_keys(), spec.metrics))
    if spec.objectives:
        result = analysis.pareto_frontier(rows, spec.objectives)
        cell_keys = list(spec.axis_keys()) + list(spec.variant_keys())
        notes.append(analysis.frontier_report(result, cell_keys))
    return notes


def run_study(spec: StudySpec,
              runner: Optional[parallel.ParallelRunner] = None
              ) -> StudyResult:
    """Execute a study spec end to end and fold it into rows.

    All ``len(cells) * len(seeds)`` scenario jobs are submitted as one
    ordered batch through ``runner`` (default: the process-wide engine,
    so the CLI's ``--jobs``/cache flags apply transparently).  Results
    are bit-identical to running each cell through
    :func:`~repro.harness.parallel.run_seeds` in a nested loop — the
    batching only changes scheduling, never values or row order.
    """
    runner = runner or parallel.get_default_runner()
    cells = expand(spec)
    seeds = spec.seeds
    configs = [cell.config.with_changes(seed=seed)
               for cell in cells for seed in seeds]
    results = runner.run_configs(configs)
    per_cell: List[MultiSeedResult] = []
    rows: List[Dict[str, object]] = []
    for i, cell in enumerate(cells):
        chunk = results[i * len(seeds):(i + 1) * len(seeds)]
        multi = MultiSeedResult(results=list(chunk))
        per_cell.append(multi)
        row: Dict[str, object] = dict(cell.cells)
        _metric_value(spec, multi, row)
        rows.append(row)
    experiment = ExperimentResult(
        experiment_id=spec.study_id, title=spec.title,
        parameters=dict(spec.parameters), rows=rows,
        notes=_notes(spec, rows))
    return StudyResult(spec=spec, cells=cells, per_cell=per_cell,
                       experiment=experiment)
