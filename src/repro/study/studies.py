"""The declared studies: every ``abl-*`` ablation plus new sweeps.

Each entry collapses a formerly hand-written experiment function into
a :class:`~repro.study.spec.StudySpec` declaration — the six builders
here replace ~150 lines of bespoke sweep loops, and the declaration-
equivalence suite (``tests/test_study.py``) proves each one
result-identical to its frozen original
(:mod:`repro.harness.frozen`).  ``study-frontier`` is the study the
old framework made too expensive to write: a protocol x churn-rate x
duty-cycle cube with automatic Pareto-frontier extraction over
reliability, joules, bytes and catch-up latency.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from repro.energy import DutyCycleConfig
from repro.faults import ChurnConfig, FaultConfig, RegionalOutage
from repro.core.config import FrugalConfig
from repro.harness.experiments import (ENERGY_PROTOCOLS, FAULT_METRICS,
                                       energy_scenario, rwp_scenario)
from repro.harness.presets import Scale
from repro.harness.scenario import ScenarioConfig
from repro.study.spec import (Axis, Component, Metric, Objective,
                              PivotSpec, StudySpec, Toggles, Variant)

__all__ = ["Study", "STUDIES", "study_names", "get_study", "build_study",
           "gc_study", "backoff_study", "adaptive_hb_study", "ids_study",
           "dutycycle_study", "outage_study", "frontier_study"]


# --------------------------------------------------------------------------
# Collapsed ablations (result-identical to repro.harness.frozen)
# --------------------------------------------------------------------------

def gc_study(scale: Scale, capacity: int = 8) -> StudySpec:
    """abl-gc as a declaration: one axis over the eviction policy."""
    policies = ["validity-forward", "remaining-validity", "fifo", "random"]
    frugal = FrugalConfig.paper_random_waypoint().with_changes(
        event_table_capacity=capacity)
    base = rwp_scenario(scale, 10.0, 10.0, validity=120.0, interest=0.8,
                        n_events=16, duration=160.0, frugal=frugal)
    return StudySpec(
        study_id="abl-gc",
        title=f"Eviction policy comparison (event table capacity "
              f"{capacity})",
        base=base,
        grid=(Axis(name="policy", path="frugal.eviction_policy",
                   values=tuple(policies)),),
        seeds=tuple(scale.seed_list()),
        metrics=(Metric("reliability"), Metric("duplicates")),
        parameters={"scale": scale.name, "capacity": capacity,
                    "policies": policies})


def backoff_study(scale: Scale) -> StudySpec:
    """abl-backoff as a declaration: back-off/suppression toggles."""
    base = rwp_scenario(scale, 10.0, 10.0, validity=180.0, interest=0.8,
                        n_events=5, duration=180.0,
                        frugal=FrugalConfig.paper_random_waypoint())
    toggles = Toggles(
        components=(
            Component("backoff", off={"frugal.use_backoff": False}),
            Component("suppression",
                      off={"frugal.backoff_suppression": False}),
        ),
        key="variant",
        variants=(
            Variant(enabled=("backoff", "suppression")),
            Variant(enabled=("backoff",)),
            # Without the back-off there is nothing to suppress: the
            # hand-written ablation switched both off, so the variant
            # disables both components under the historical name.
            Variant(enabled=(), label="no-backoff"),
        ))
    labels = [toggles.label(v) for v in toggles.resolved_variants()]
    return StudySpec(
        study_id="abl-backoff",
        title="Back-off / suppression ablation (duplicates per process)",
        base=base,
        grid=(toggles,),
        seeds=tuple(scale.seed_list()),
        metrics=(Metric("reliability"), Metric("duplicates"),
                 Metric("bandwidth_bytes")),
        parameters={"scale": scale.name, "variants": labels})


def adaptive_hb_study(scale: Scale) -> StudySpec:
    """abl-adaptive-hb as a declaration: toggle x speed grid."""
    speeds = [5.0, 20.0, 40.0]
    frugal = FrugalConfig.paper_random_waypoint().with_changes(
        hb_upper_bound=5.0)
    base = rwp_scenario(scale, 10.0, 10.0, validity=120.0, interest=0.8,
                        frugal=frugal)
    toggles = Toggles(
        components=(Component(
            "adaptive-hb", off={"frugal.adaptive_heartbeat": False}),),
        variants=(Variant(enabled=("adaptive-hb",),
                          cells={"adaptive": True}),
                  Variant(enabled=(), cells={"adaptive": False})))
    return StudySpec(
        study_id="abl-adaptive-hb",
        title="Adaptive vs static heartbeat (hb upper bound 5 s)",
        base=base,
        grid=(toggles,
              Axis(name="speed", values=tuple(speeds),
                   path=("mobility.speed_min", "mobility.speed_max"))),
        seeds=tuple(scale.seed_list()),
        metrics=(Metric("reliability"), Metric("bandwidth_bytes")),
        parameters={"scale": scale.name, "speeds": speeds})


def ids_study(scale: Scale) -> StudySpec:
    """abl-ids as a declaration: the id-exchange toggle."""
    base = rwp_scenario(scale, 10.0, 10.0, validity=180.0, interest=0.8,
                        n_events=5, duration=180.0,
                        frugal=FrugalConfig.paper_random_waypoint())
    toggles = Toggles(
        components=(Component(
            "id-exchange",
            off={"frugal.announce_on_new_neighbor": False}),),
        variants=(Variant(enabled=("id-exchange",),
                          cells={"id_exchange": True}),
                  Variant(enabled=(), cells={"id_exchange": False})))
    return StudySpec(
        study_id="abl-ids",
        title="Event-id exchange vs blind push (duplicates, bandwidth)",
        base=base,
        grid=(toggles,),
        seeds=tuple(scale.seed_list()),
        metrics=(Metric("reliability"), Metric("duplicates"),
                 Metric("bandwidth_bytes")),
        parameters={"scale": scale.name})


def _apply_awake_fraction(config: ScenarioConfig,
                          awake: float) -> ScenarioConfig:
    """Install a heartbeat-aligned duty cycle (1.0 = always on)."""
    if awake < 1.0:
        duty = DutyCycleConfig.heartbeat_aligned(
            config.frugal.hb_upper_bound, awake)
    else:
        duty = DutyCycleConfig.always_on()
    return config.with_changes(
        energy=dataclasses.replace(config.energy, duty_cycle=duty))


def dutycycle_study(scale: Scale,
                    awake_fractions: Tuple[float, ...] = (1.0, 0.5, 0.25)
                    ) -> StudySpec:
    """abl-dutycycle as a declaration: protocol x awake-fraction grid."""
    base = energy_scenario(scale, ENERGY_PROTOCOLS[0], awake_fraction=1.0)
    return StudySpec(
        study_id="abl-dutycycle",
        title="Duty-cycling ablation (heartbeat-aligned sleep windows)",
        base=base,
        grid=(Axis(name="protocol", values=tuple(ENERGY_PROTOCOLS)),
              Axis(name="awake_fraction", values=tuple(awake_fractions),
                   apply=_apply_awake_fraction)),
        seeds=tuple(scale.seed_list()),
        metrics=(Metric("reliability"), Metric("joules_per_node"),
                 Metric("joules_per_delivery"), Metric("bandwidth_bytes")),
        parameters={"scale": scale.name,
                    "protocols": list(ENERGY_PROTOCOLS),
                    "awake_fractions": list(awake_fractions)})


def _apply_outage(config: ScenarioConfig, value) -> ScenarioConfig:
    """Install one regional outage from a ``(kind, radius_frac)`` value."""
    kind, frac = value
    if kind == "none":
        faults = FaultConfig()
    else:
        half = config.mobility.width / 2.0
        faults = FaultConfig(outages=(RegionalOutage(
            at=20.0, duration=60.0, center=(half, half),
            radius_m=frac * half, kind=kind),))
    return config.with_changes(faults=faults)


def outage_study(scale: Scale) -> StudySpec:
    """abl-outage as a declaration: one composite outage axis."""
    fractions = scale.pick([0.25, 0.5, 0.75], [0.5])
    variants = [("none", 0.0)] + [(kind, frac)
                                  for kind in ("silence", "crash")
                                  for frac in fractions]
    base = rwp_scenario(scale, 10.0, 10.0, validity=100.0, interest=0.8,
                        n_events=5, duration=120.0)
    return StudySpec(
        study_id="abl-outage",
        title="Regional outage ablation (60 s outage, random waypoint)",
        base=base,
        grid=(Axis(name="outage", values=tuple(variants),
                   apply=_apply_outage,
                   cells=lambda v: {"outage": v[0], "radius_frac": v[1]}),),
        seeds=tuple(scale.seed_list()),
        metrics=(Metric("reliability"), Metric("bandwidth_bytes"))
        + tuple(Metric(name) for name in FAULT_METRICS),
        parameters={"scale": scale.name,
                    "kinds": ["none", "silence", "crash"],
                    "radius_fractions": fractions})


# --------------------------------------------------------------------------
# New studies the old framework made too expensive to write
# --------------------------------------------------------------------------

#: Mean session lengths swept by ``study-frontier`` (None = no churn).
FRONTIER_SESSIONS_FULL = (None, 240.0, 120.0, 60.0, 30.0)
FRONTIER_SESSIONS_COARSE = (None, 120.0, 30.0)

#: Protocols raced across the frontier cube: the frugal protocol, the
#: strongest interest-aware flooder, and the lpbcast gossip baseline.
FRONTIER_PROTOCOLS = ("frugal", "neighbor-flooding", "gossip")


def _apply_churn_session(config: ScenarioConfig,
                         session) -> ScenarioConfig:
    """Install exponential churn (``None`` = instrumented churn-free)."""
    if session is None:
        faults = FaultConfig()
    else:
        faults = FaultConfig(churn=ChurnConfig(
            mean_session_s=session, mean_rest_s=45.0))
    return config.with_changes(faults=faults)


def frontier_study(scale: Scale) -> StudySpec:
    """study-frontier: protocol x churn x duty-cycle, Pareto-extracted.

    Every cell is energy- and fault-instrumented, so one cube prices
    the frugality trade-off in all four currencies at once: how much
    churn-aware reliability each protocol buys per joule, per byte and
    per second of post-recovery catch-up latency.  The declared
    objectives extract the Pareto frontier automatically; the pivot
    renders churn-aware reliability across the churn axis for every
    (protocol, duty-cycle) row.  ``recovery_latency_s`` is 0 for cells
    where nothing needed catching up, which is genuinely optimal —
    churn-free cells simply never pay that cost.
    """
    sessions = scale.pick(FRONTIER_SESSIONS_FULL, FRONTIER_SESSIONS_COARSE)
    awake_fractions = scale.pick([1.0, 0.5, 0.25], [1.0, 0.5])
    base = energy_scenario(scale, FRONTIER_PROTOCOLS[0],
                           awake_fraction=1.0)
    return StudySpec(
        study_id="study-frontier",
        title="Frugality frontier: protocol x churn x duty-cycle "
              "(random waypoint, 10 m/s, power-save radio)",
        base=base,
        grid=(Axis(name="protocol", values=FRONTIER_PROTOCOLS),
              Axis(name="churn", values=tuple(sessions),
                   apply=_apply_churn_session,
                   cells=lambda s: {"churn_per_min":
                                    0.0 if s is None else 60.0 / s}),
              Axis(name="awake_fraction", values=tuple(awake_fractions),
                   apply=_apply_awake_fraction)),
        seeds=tuple(scale.seed_list()),
        metrics=(Metric("churn_reliability"), Metric("reliability"),
                 Metric("joules_per_node"), Metric("bandwidth_bytes"),
                 Metric("recovery_latency_s"), Metric("duplicates")),
        parameters={"scale": scale.name,
                    "protocols": list(FRONTIER_PROTOCOLS),
                    "mean_sessions_s": ["none" if s is None else s
                                        for s in sessions],
                    "awake_fractions": list(awake_fractions)},
        objectives=(Objective("churn_reliability", "max"),
                    Objective("joules_per_node", "min"),
                    Objective("bandwidth_bytes", "min"),
                    Objective("recovery_latency_s", "min")),
        pivot=PivotSpec(rows=("protocol", "awake_fraction"),
                        cols=("churn_per_min",),
                        value="churn_reliability"))


# --------------------------------------------------------------------------
# Registry
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class Study:
    """One registered study: an id, a one-liner, and a spec builder."""

    study_id: str
    summary: str
    build: Callable[..., StudySpec]


STUDIES: Dict[str, Study] = {
    study.study_id: study for study in (
        Study("abl-gc",
              "eviction policies under memory pressure (axis grid)",
              gc_study),
        Study("abl-backoff",
              "back-off / suppression component toggles",
              backoff_study),
        Study("abl-adaptive-hb",
              "adaptive-heartbeat toggle x speed grid",
              adaptive_hb_study),
        Study("abl-ids",
              "event-id exchange toggle vs blind push",
              ids_study),
        Study("abl-dutycycle",
              "protocol x awake-fraction duty-cycle grid",
              dutycycle_study),
        Study("abl-outage",
              "regional outage kind x radius composite axis",
              outage_study),
        Study("study-frontier",
              "protocol x churn x duty-cycle cube with Pareto frontier",
              frontier_study),
    )
}


def study_names() -> Tuple[str, ...]:
    """Every registered study id, declaration order."""
    return tuple(STUDIES)


def get_study(study_id: str) -> Study:
    """Look a study up by id; unknown ids name the known ones."""
    try:
        return STUDIES[study_id]
    except KeyError:
        raise KeyError(f"unknown study {study_id!r}; "
                       f"known studies: {list(STUDIES)}") from None


def build_study(study_id: str, scale: Scale, **kwargs) -> StudySpec:
    """Build the registered study's spec for ``scale``."""
    return get_study(study_id).build(scale, **kwargs)
