"""Declarative studies: axis grids + component toggles over the registry.

The study subsystem turns experiment matrices from hand-written nested
loops into declarations: a :class:`StudySpec` names a base scenario,
an ordered grid of :class:`Axis` sweeps and :class:`Component`
:class:`Toggles`, the seeds and the :class:`Metric` columns — and
:func:`run_study` expands, executes (one batch through the cached
parallel engine, so re-runs only compute dirty cells) and folds the
result into the same :class:`~repro.harness.experiments.ExperimentResult`
shape every hand-written experiment produces.  Analysis rides along:
multi-key pivots (:class:`PivotSpec`), component delta tables, and
Pareto-frontier extraction (:class:`Objective`,
:func:`pareto_frontier`).

The registered declarations live in :mod:`repro.study.studies`; the
six ``abl-*`` entries are proven result-identical to their frozen
hand-written originals by ``tests/test_study.py``.
"""

from repro.study.analysis import (DominatedPoint, FrontierResult,
                                  component_deltas, delta_report,
                                  dominates, frontier_report,
                                  pareto_frontier, pivot_report)
from repro.study.engine import StudyResult, run_study
from repro.study.spec import (Axis, Component, Metric, Objective,
                              PivotSpec, StudyCell, StudySpec, Toggles,
                              Variant, expand, set_field_path)
from repro.study.studies import (STUDIES, Study, build_study, get_study,
                                 study_names)

__all__ = [
    "Axis", "Component", "Variant", "Toggles", "Metric", "Objective",
    "PivotSpec", "StudySpec", "StudyCell", "set_field_path", "expand",
    "StudyResult", "run_study",
    "DominatedPoint", "FrontierResult", "dominates", "pareto_frontier",
    "frontier_report", "component_deltas", "delta_report", "pivot_report",
    "Study", "STUDIES", "study_names", "get_study", "build_study",
]
