"""Real-network asyncio runtime for the protocol stack.

Everything under :mod:`repro.core.stack` is written against the minimal
:class:`~repro.core.base.Host` interface; this package provides the
*second* implementation of that interface — real wall-clock timers and
real UDP datagrams instead of the discrete-event kernel:

* :mod:`repro.rt.codec` — a versioned binary wire codec for the three
  :mod:`repro.net.messages` frame types (round-trip exact, garbage and
  unknown-version datagrams rejected cleanly);
* :mod:`repro.rt.host` — :class:`AsyncioHost`, the
  :class:`~repro.core.base.Host` over ``asyncio``: ``call_later``-backed
  timers, datagram ``send()`` fanned out over a static peer table, and
  per-node seeded rng streams so protocol coin-flips stay reproducible;
* :mod:`repro.rt.cluster` — :class:`LoopbackCluster`, N in-process
  nodes on ``127.0.0.1`` UDP sockets running any registered protocol
  composition *unchanged*, with crash/silence injection mirroring the
  fault subsystem's vocabulary;
* :mod:`repro.rt.bridge` — the ``loopback-bridge`` experiment comparing
  sim-predicted against UDP-measured reliability and per-node overhead;
* :mod:`repro.rt.cli` — ``python -m repro.rt.cli loopback-bridge``.

The runtime executes protocols over a *single-hop* network (every node
hears every other, no radio model), so measured results are statistical,
not bit-identical to the sim — see docs/EXPERIMENTS.md for the
documented tolerance bands.
"""

from repro.rt.codec import (CodecError, UnsupportedVersion, WIRE_VERSION,
                            decode, encode)
from repro.rt.host import AsyncioHost, RtPeriodicTask, RtTimer
from repro.rt.cluster import (LoopbackCluster, RT_FAULT_KINDS, RtFault,
                              RtResult)

__all__ = [
    "AsyncioHost", "CodecError", "LoopbackCluster", "RT_FAULT_KINDS",
    "RtFault", "RtPeriodicTask", "RtResult", "RtTimer",
    "UnsupportedVersion", "WIRE_VERSION", "decode", "encode",
]
