"""The loopback-bridge experiment: sim-predicted vs UDP-measured.

For each protocol the bridge runs the *same* scenario twice — once
through the discrete-event kernel (:func:`repro.harness.runner.run_seeds`)
and once on a :class:`~repro.rt.cluster.LoopbackCluster` of real UDP
sockets — and reports predicted-vs-measured reliability and per-node
message overhead side by side.

The scenario is a stationary full-mesh grid (every node within radio
range of every other), because that is the *shared* topology: the
cluster's static peer table is a single-hop mesh, and a grid whose
diameter fits inside the sim radio's communication range makes the sim
see the same connectivity.  What differs is everything a real network
adds — wall-clock timer scheduling and preemption, OS socket queues,
non-zero and variable datagram latency, no globally ordered event list —
so measured results are *statistical*, not bit-identical: a run passes
when ``|sim - rt|`` reliability stays within the documented per-scale
tolerance band (``RELIABILITY_TOLERANCE``).
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

from repro.core import registry
from repro.harness.experiments import ExperimentResult
from repro.harness.presets import Scale, get_scale
from repro.harness.runner import run_seeds
from repro.harness.scenario import (FixedPositionsSpec, Publication,
                                    ScenarioConfig)
from repro.rt.cluster import LoopbackCluster

#: The default protocol trio the acceptance criteria name: the paper's
#: protocol, the epidemic baseline, and a flooder.
BRIDGE_PROTOCOLS: Tuple[str, ...] = ("frugal", "gossip", "simple-flooding")

#: Documented per-scale |sim - rt| reliability tolerance.  Smoke runs a
#: short window at high time compression on shared CI machines, so its
#: band is generous; quick/paper average more seeds over longer windows.
RELIABILITY_TOLERANCE = {"smoke": 0.25, "quick": 0.15, "paper": 0.15}

#: Default wall-clock compression: 1 wall second = 10 virtual seconds.
DEFAULT_TIME_SCALE = 10.0

#: Cluster runs are wall-clock bound (they cannot be parallelised away
#: like sim seeds), so cap how many seeds the rt half re-measures.
RT_MAX_SEEDS = 5

#: Cluster population per scale — ≥ 20 everywhere so even smoke runs
#: exercise a real 20-socket mesh.
_POPULATION = {"smoke": 20, "quick": 24, "paper": 40}


def grid_positions(n: int,
                   spacing: float = 20.0) -> Tuple[Tuple[float, float], ...]:
    """A compact √N x √N grid of node positions (metres).

    With the default spacing the whole grid sits far inside the paper
    radio's communication range, so the sim medium sees the same
    single-hop full mesh the UDP peer table provides.
    """
    if n < 1:
        raise ValueError(f"need at least one node: {n=}")
    side = math.ceil(math.sqrt(n))
    return tuple((spacing * (i % side), spacing * (i // side))
                 for i in range(n))


def bridge_scenario(protocol: str, scale: Scale,
                    seed: int = 0) -> ScenarioConfig:
    """The shared sim/rt scenario for one protocol at one scale.

    Stationary full-mesh grid, no speed sensor (the rt host has no
    tachometer either, so both halves run the same un-adapted heartbeat
    configuration), three publications inside a short measurement
    window whose validity comfortably outlives the window.
    """
    n = _POPULATION.get(scale.name, 20)
    return ScenarioConfig(
        n_processes=n,
        mobility=FixedPositionsSpec(grid_positions(n)),
        duration=28.0, warmup=6.0, seed=seed,
        protocol=protocol,
        subscriber_fraction=0.8,
        speed_sensor=False,
        publications=(Publication(at=1.0, validity=20.0),
                      Publication(at=3.0, validity=20.0, publisher=1),
                      Publication(at=5.0, validity=20.0, publisher=2)))


def loopback_bridge(scale: Optional[Scale] = None,
                    protocols: Sequence[str] = BRIDGE_PROTOCOLS,
                    time_scale: float = DEFAULT_TIME_SCALE
                    ) -> ExperimentResult:
    """Run the bridge: every protocol in-sim and on the UDP cluster.

    Returns one row per protocol with ``sim_reliability`` /
    ``rt_reliability`` (means across seeds), their delta, both sides'
    per-node message overhead and a ``within_band`` flag against the
    scale's documented tolerance.
    """
    scale = scale or get_scale()
    # Fail fast on unknown names, with the registry's known-name list.
    for protocol in protocols:
        registry.get(protocol)
    tolerance = RELIABILITY_TOLERANCE.get(scale.name, 0.25)
    rt_seeds = scale.seed_list()[:RT_MAX_SEEDS]
    rows = []
    for protocol in protocols:
        cfg = bridge_scenario(protocol, scale)
        sim = run_seeds(cfg, scale.seed_list())
        sim_rel = sim.metric(lambda r: r.reliability()).mean
        sim_msgs = _sim_messages_per_node(sim, cfg.n_processes)
        rt_rels = []
        rt_msgs = []
        for seed in rt_seeds:
            cluster = LoopbackCluster(cfg.with_changes(seed=seed),
                                      time_scale=time_scale)
            result = cluster.run()
            rt_rels.append(result.reliability())
            rt_msgs.append(result.messages_per_node())
        rt_rel = sum(rt_rels) / len(rt_rels)
        delta = rt_rel - sim_rel
        rows.append({
            "protocol": protocol,
            "n": cfg.n_processes,
            "sim_reliability": sim_rel,
            "rt_reliability": rt_rel,
            "delta": delta,
            "tolerance": tolerance,
            "within_band": abs(delta) <= tolerance,
            "sim_msgs_per_node": sim_msgs,
            "rt_msgs_per_node": sum(rt_msgs) / len(rt_msgs),
        })
    return ExperimentResult(
        experiment_id="loopback-bridge",
        title="Sim-predicted vs UDP-measured (loopback bridge)",
        parameters={"scale": scale.name, "protocols": tuple(protocols),
                    "time_scale": time_scale,
                    "rt_seeds": len(rt_seeds), "tolerance": tolerance},
        rows=rows)


def _sim_messages_per_node(sim_result, n: int) -> float:
    """Mean per-node protocol frames across the sim seeds."""
    def frames(r) -> float:
        c = r.protocol_counters()
        return (c.heartbeats_sent + c.id_lists_sent + c.batches_sent) / n
    return sim_result.metric(frames).mean
