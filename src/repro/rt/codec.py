"""Versioned binary wire codec for the protocol frame types.

The sim hands :mod:`repro.net.messages` dataclasses to the medium as
Python objects; a real network needs bytes.  The format is deliberately
simple — no external serialisation dependency, everything big-endian
:mod:`struct` — and versioned from day one:

``[magic "FP"] [version u8] [kind u8] [body...]``

* round trips are **exact**: ``decode(encode(m)) == m`` for every field
  of every frame type, including float64 times, ``None``-able speeds and
  frozenset subscription sets (``tests/test_rt_codec.py`` drives this
  with randomized hypothesis cases);
* malformed input — truncation, trailing garbage, bad magic, undecodable
  UTF-8, out-of-spec field values — raises :class:`CodecError`, never
  anything else, so a receive loop can drop bad datagrams without dying;
* a frame from a *newer* codec raises the :class:`UnsupportedVersion`
  subclass: a mixed-version cluster degrades to dropping frames it
  cannot parse instead of crashing (unknown-version tolerance).

Event payloads are application-opaque in the sim (``Event.payload`` is
``Any``); on the wire only ``None``, ``bytes`` and ``str`` payloads are
representable — encoding anything else raises :class:`CodecError`
eagerly, at send time, where the bug is.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, FrozenSet, Tuple

from repro.core.events import Event, EventId
from repro.core.topics import Topic
from repro.net.messages import EventBatch, EventIdList, Heartbeat, Message

#: Two-byte frame preamble ("Frugal Pubsub"); anything else is garbage.
MAGIC = b"FP"

#: Current wire format version; bump on any incompatible layout change.
WIRE_VERSION = 1

_KIND_HEARTBEAT = 1
_KIND_EVENT_ID_LIST = 2
_KIND_EVENT_BATCH = 3

_PAYLOAD_NONE = 0
_PAYLOAD_BYTES = 1
_PAYLOAD_TEXT = 2


class CodecError(ValueError):
    """A frame could not be encoded or decoded.

    Every malformed-input failure mode funnels here (truncation, bad
    magic, trailing bytes, invalid UTF-8, out-of-spec values), so the
    datagram receive path needs exactly one ``except`` clause.
    """


class UnsupportedVersion(CodecError):
    """The frame's wire version is not understood by this codec.

    Raised *before* any body parsing, so nodes running an older codec
    tolerate traffic from newer ones by dropping it.
    """


# --------------------------------------------------------------------------
# Encoding
# --------------------------------------------------------------------------

def _w_str(out: bytearray, text: str) -> None:
    raw = text.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise CodecError(f"string too long for wire: {len(raw)} bytes")
    out += struct.pack("!H", len(raw))
    out += raw


def _w_topics(out: bytearray, topics: FrozenSet[Topic]) -> None:
    if len(topics) > 0xFFFF:
        raise CodecError(f"too many topics for wire: {len(topics)}")
    out += struct.pack("!H", len(topics))
    # Sorted for a canonical encoding; the set round-trips regardless.
    for topic in sorted(str(t) for t in topics):
        _w_str(out, topic)


def _w_event_id(out: bytearray, eid: EventId) -> None:
    out += struct.pack("!qq", eid.publisher, eid.seq)


def _w_event(out: bytearray, event: Event) -> None:
    _w_event_id(out, event.event_id)
    _w_str(out, str(event.topic))
    out += struct.pack("!ddI", event.validity, event.published_at,
                       event.payload_bytes)
    payload = event.payload
    if payload is None:
        out += struct.pack("!B", _PAYLOAD_NONE)
    elif isinstance(payload, bytes):
        if len(payload) > 0xFFFFFFFF:
            raise CodecError("payload too large for wire")
        out += struct.pack("!BI", _PAYLOAD_BYTES, len(payload))
        out += payload
    elif isinstance(payload, str):
        raw = payload.encode("utf-8")
        if len(raw) > 0xFFFFFFFF:
            raise CodecError("payload too large for wire")
        out += struct.pack("!BI", _PAYLOAD_TEXT, len(raw))
        out += raw
    else:
        raise CodecError(
            f"payload of type {type(payload).__name__} is not wire-"
            f"representable (use None, bytes or str)")


def _encode_heartbeat(out: bytearray, msg: Heartbeat) -> None:
    out += struct.pack("!q", msg.sender)
    _w_topics(out, msg.subscriptions)
    if msg.speed is None:
        out += struct.pack("!B", 0)
    else:
        out += struct.pack("!Bd", 1, msg.speed)


def _encode_event_id_list(out: bytearray, msg: EventIdList) -> None:
    out += struct.pack("!qI", msg.sender, len(msg.event_ids))
    for eid in msg.event_ids:
        _w_event_id(out, eid)


def _encode_event_batch(out: bytearray, msg: EventBatch) -> None:
    out += struct.pack("!qHI", msg.sender, len(msg.events),
                       len(msg.neighbor_ids))
    for event in msg.events:
        _w_event(out, event)
    for nid in msg.neighbor_ids:
        out += struct.pack("!q", nid)


def encode(message: Message) -> bytes:
    """Serialise a protocol frame to its on-the-wire bytes.

    Raises :class:`CodecError` for frame types the wire format does not
    know, for non-wire-representable payloads, and for fields outside
    the format's ranges (e.g. node ids beyond 64 bits).
    """
    out = bytearray(MAGIC)
    out += struct.pack("!B", WIRE_VERSION)
    try:
        if isinstance(message, Heartbeat):
            out += struct.pack("!B", _KIND_HEARTBEAT)
            _encode_heartbeat(out, message)
        elif isinstance(message, EventIdList):
            out += struct.pack("!B", _KIND_EVENT_ID_LIST)
            _encode_event_id_list(out, message)
        elif isinstance(message, EventBatch):
            out += struct.pack("!B", _KIND_EVENT_BATCH)
            _encode_event_batch(out, message)
        else:
            raise CodecError(
                f"no wire encoding for {type(message).__name__}")
    except struct.error as exc:
        raise CodecError(f"field out of wire range: {exc}") from None
    return bytes(out)


# --------------------------------------------------------------------------
# Decoding
# --------------------------------------------------------------------------

class _Reader:
    """Bounds-checked cursor over a received datagram."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    def take(self, n: int) -> bytes:
        """The next ``n`` raw bytes, or :class:`CodecError` on underrun."""
        end = self.pos + n
        if end > len(self.data):
            raise CodecError(
                f"truncated frame: wanted {n} bytes at offset {self.pos}, "
                f"have {len(self.data) - self.pos}")
        chunk = self.data[self.pos:end]
        self.pos = end
        return chunk

    def unpack(self, fmt: str) -> tuple:
        """``struct.unpack`` the next ``calcsize(fmt)`` bytes."""
        return struct.unpack(fmt, self.take(struct.calcsize(fmt)))

    def r_str(self) -> str:
        """A length-prefixed UTF-8 string."""
        (length,) = self.unpack("!H")
        raw = self.take(length)
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise CodecError(f"invalid UTF-8 on wire: {exc}") from None

    @property
    def exhausted(self) -> bool:
        """Has every byte of the datagram been consumed?"""
        return self.pos == len(self.data)


def _r_topic(reader: _Reader) -> Topic:
    text = reader.r_str()
    try:
        return Topic(text)
    except (ValueError, TypeError) as exc:
        raise CodecError(f"invalid topic on wire: {exc}") from None


def _r_event_id(reader: _Reader) -> EventId:
    publisher, seq = reader.unpack("!qq")
    return EventId(publisher, seq)


def _r_event(reader: _Reader) -> Event:
    event_id = _r_event_id(reader)
    topic = _r_topic(reader)
    validity, published_at, payload_bytes = reader.unpack("!ddI")
    (tag,) = reader.unpack("!B")
    if tag == _PAYLOAD_NONE:
        payload = None
    elif tag == _PAYLOAD_BYTES:
        (length,) = reader.unpack("!I")
        payload = reader.take(length)
    elif tag == _PAYLOAD_TEXT:
        (length,) = reader.unpack("!I")
        raw = reader.take(length)
        try:
            payload = raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise CodecError(f"invalid UTF-8 payload: {exc}") from None
    else:
        raise CodecError(f"unknown payload tag {tag}")
    try:
        return Event(event_id=event_id, topic=topic, validity=validity,
                     published_at=published_at,
                     payload_bytes=payload_bytes, payload=payload)
    except ValueError as exc:
        raise CodecError(f"out-of-spec event on wire: {exc}") from None


def _decode_heartbeat(reader: _Reader) -> Heartbeat:
    (sender,) = reader.unpack("!q")
    (n_topics,) = reader.unpack("!H")
    topics = frozenset(_r_topic(reader) for _ in range(n_topics))
    (has_speed,) = reader.unpack("!B")
    if has_speed not in (0, 1):
        raise CodecError(f"invalid speed flag {has_speed}")
    speed = reader.unpack("!d")[0] if has_speed else None
    return Heartbeat(sender=sender, subscriptions=topics, speed=speed)


def _decode_event_id_list(reader: _Reader) -> EventIdList:
    sender, n_ids = reader.unpack("!qI")
    ids = tuple(_r_event_id(reader) for _ in range(n_ids))
    return EventIdList(sender=sender, event_ids=ids)


def _decode_event_batch(reader: _Reader) -> EventBatch:
    sender, n_events, n_neighbors = reader.unpack("!qHI")
    events = tuple(_r_event(reader) for _ in range(n_events))
    neighbors = tuple(reader.unpack("!q")[0] for _ in range(n_neighbors))
    return EventBatch(sender=sender, events=events, neighbor_ids=neighbors)


_DECODERS: Dict[int, Callable[[_Reader], Message]] = {
    _KIND_HEARTBEAT: _decode_heartbeat,
    _KIND_EVENT_ID_LIST: _decode_event_id_list,
    _KIND_EVENT_BATCH: _decode_event_batch,
}


def decode(data: bytes) -> Message:
    """Parse one datagram back into its protocol frame.

    Raises :class:`CodecError` on any malformed input (wrong magic,
    truncation, trailing bytes, bad field values) and its
    :class:`UnsupportedVersion` subclass when the frame announces a wire
    version this codec does not speak.  Never raises anything else, so
    the node receive loop survives arbitrary garbage.
    """
    reader = _Reader(bytes(data))
    if reader.take(len(MAGIC)) != MAGIC:
        raise CodecError("bad magic: not a protocol frame")
    (version,) = reader.unpack("!B")
    if version != WIRE_VERSION:
        raise UnsupportedVersion(
            f"wire version {version} not supported (this codec speaks "
            f"{WIRE_VERSION})")
    (kind,) = reader.unpack("!B")
    decoder = _DECODERS.get(kind)
    if decoder is None:
        raise CodecError(f"unknown frame kind {kind}")
    message = decoder(reader)
    if not reader.exhausted:
        raise CodecError(
            f"{len(reader.data) - reader.pos} trailing bytes after frame")
    return message
