"""Command-line entry point for the real-network runtime.

Run the loopback bridge from a shell::

    python -m repro.rt.cli loopback-bridge
    python -m repro.rt.cli loopback-bridge --scale smoke
    python -m repro.rt.cli loopback-bridge --protocols frugal,gossip
    python -m repro.rt.cli loopback-bridge --time-scale 5 --csv out/rt.csv

The sim half of the bridge fans its seeds out over ``--jobs`` worker
processes exactly like :mod:`repro.harness.cli`; the UDP half is
wall-clock bound and always runs in-process (the sockets are the
experiment).
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional

from repro.core import registry
from repro.harness import parallel
from repro.harness.cli import configure_engine
from repro.harness.presets import get_scale
from repro.harness.reporting import format_experiment, to_csv
from repro.rt.bridge import (BRIDGE_PROTOCOLS, DEFAULT_TIME_SCALE,
                             loopback_bridge)


def build_parser() -> argparse.ArgumentParser:
    """The rt CLI argument parser (exposed for --help tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro.rt.cli",
        description="Run protocol stacks over real UDP sockets.")
    sub = parser.add_subparsers(dest="command", required=True)
    bridge = sub.add_parser(
        "loopback-bridge",
        help="run protocols in-sim and on a UDP loopback cluster, "
             "report predicted vs measured side by side")
    bridge.add_argument(
        "--scale", default=None, choices=["smoke", "quick", "paper"],
        help="experiment scale (default: REPRO_SCALE env or quick)")
    bridge.add_argument(
        "--seed", type=int, default=None,
        help="re-base the deterministic seed set on this first seed")
    bridge.add_argument(
        "--protocols", default=",".join(BRIDGE_PROTOCOLS),
        help="comma-separated registry protocol names "
             f"(default: {','.join(BRIDGE_PROTOCOLS)})")
    bridge.add_argument(
        "--time-scale", type=float, default=DEFAULT_TIME_SCALE,
        help="virtual seconds per wall-clock second on the cluster "
             f"(default: {DEFAULT_TIME_SCALE:g})")
    bridge.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for the sim half's seed sweep")
    bridge.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk result cache for the sim half")
    bridge.add_argument(
        "--cache-dir", default=None,
        help="result cache directory (default: REPRO_CACHE_DIR env or "
             "./.repro-cache)")
    bridge.add_argument(
        "--csv", default=None,
        help="write the result rows to this CSV file")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    protocols = tuple(p.strip() for p in args.protocols.split(",")
                      if p.strip())
    try:
        for protocol in protocols:
            registry.get(protocol)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.time_scale <= 0:
        print(f"--time-scale must be positive: {args.time_scale}",
              file=sys.stderr)
        return 2
    scale = get_scale(args.scale)
    if args.seed is not None:
        scale = scale.with_seed_base(args.seed)
    configure_engine(args.jobs, args.no_cache, args.cache_dir)
    try:
        result = loopback_bridge(scale, protocols=protocols,
                                 time_scale=args.time_scale)
        print(format_experiment(result))
        outside = [row for row in result.rows if not row["within_band"]]
        if outside:
            names = ", ".join(row["protocol"] for row in outside)
            print(f"\nWARNING: measured reliability outside the "
                  f"±{result.parameters['tolerance']:g} band for: {names}")
        if args.csv:
            pathlib.Path(args.csv).parent.mkdir(parents=True, exist_ok=True)
            to_csv(result, args.csv)
            print(f"\nwrote {args.csv}")
        return 0
    finally:
        # Restore the library default engine (serial, uncached) so
        # embedding callers do not inherit this invocation's pool.
        parallel.configure(jobs=1, cache=None)


if __name__ == "__main__":
    raise SystemExit(main())
