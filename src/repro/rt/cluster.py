"""LoopbackCluster: N real UDP nodes running one scenario in-process.

The cluster is the rt twin of :func:`repro.harness.scenario.run_scenario`:
it takes the *same* :class:`~repro.harness.scenario.ScenarioConfig`, draws
the *same* subscriber population and per-node rng streams from the same
seed, attaches the *same* registry-built protocol stacks — but instead of
a discrete-event kernel each node gets an :class:`~repro.rt.host.AsyncioHost`
bound to its own ``127.0.0.1`` UDP socket, with every other node in its
static peer table (single-hop full mesh; the config's mobility and radio
model describe the sim half of a bridge comparison and are ignored here).

The run replays the scenario's structure on the wall clock (optionally
compressed by ``time_scale``): start all nodes, let them warm up, snapshot
counters, fire the scheduled publications, inject any
:class:`RtFault` crash/silence actions — the loopback subset of the fault
subsystem's vocabulary — and after the measurement window collect the same
:class:`~repro.core.base.ProtocolCounters` and per-event
:class:`~repro.metrics.ReliabilityReport` views the sim produces, plus
wire-level truth (datagrams and bytes actually sent through the kernel).
"""

from __future__ import annotations

import asyncio
import time as _wallclock
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core import registry
from repro.core.base import ProtocolCounters
from repro.core.events import Event, EventFactory, EventId
from repro.harness.scenario import (Publication, ScenarioConfig,
                                    make_protocol, select_subscribers)
from repro.metrics import ReliabilityReport, mean_reliability
from repro.rt.host import AsyncioHost, HostDatagramProtocol
from repro.sim import RngRegistry

#: Fault actions the loopback cluster can inject — the subset of the
#: fault subsystem's vocabulary that is meaningful without a radio model
#: (``drain`` needs the energy accountant, which is sim-only).
RT_FAULT_KINDS = ("crash", "recover", "silence", "restore")


@dataclass(frozen=True)
class RtFault:
    """One scheduled fault action against a cluster node.

    ``at`` is in virtual seconds relative to the end of warm-up — the
    same time base the scenario's publications and the fault subsystem's
    plans use.
    """

    at: float
    kind: str
    node: int

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError(f"fault time must be >= 0: {self.at}")
        if self.kind not in RT_FAULT_KINDS:
            raise ValueError(
                f"fault kind must be one of {RT_FAULT_KINDS}: "
                f"{self.kind!r}")
        if self.node < 0:
            raise ValueError(f"fault node must be >= 0: {self.node}")


@dataclass
class RtResult:
    """Outcome of one loopback cluster run.

    Mirrors the metric surface of
    :class:`~repro.harness.scenario.ScenarioResult` where both sides can
    measure the same thing (reliability, protocol counters) and adds the
    wire-level truth only a real network has (datagrams, bytes, rejected
    frames).
    """

    config: ScenarioConfig
    time_scale: float
    published_events: List[Event]
    subscriber_ids: List[int]
    #: ``{event_id: {node_id: virtual delivery time}}`` (first delivery).
    delivery_times: Dict[EventId, Dict[int, float]]
    per_node_counters: List[ProtocolCounters]
    frames_sent: int
    datagrams_sent: int
    wire_bytes_sent: int
    frames_rejected: int
    wallclock_s: float
    faults: Tuple[RtFault, ...] = field(default_factory=tuple)

    def counters(self) -> ProtocolCounters:
        """Summed measurement-window counters across all nodes."""
        return ProtocolCounters.total(self.per_node_counters)

    def per_event_reports(self) -> List[ReliabilityReport]:
        """One in-time delivery report per published event, using the
        sim's rule: delivered in time iff the node's first delivery
        lands at or before the event's validity expiry."""
        reports = []
        for event in self.published_events:
            times = self.delivery_times.get(event.event_id, {})
            in_time = 0
            late = 0
            for node_id in self.subscriber_ids:
                t = times.get(node_id)
                if t is None:
                    continue
                if t <= event.expires_at:
                    in_time += 1
                else:
                    late += 1
            reports.append(ReliabilityReport(
                event_id=event.event_id,
                subscribers=len(self.subscriber_ids),
                delivered_in_time=in_time, delivered_late=late))
        return reports

    def reliability(self) -> float:
        """Mean measured reliability across the run's publications."""
        return mean_reliability(self.per_event_reports())

    def messages_per_node(self) -> float:
        """Mean protocol frames (heartbeats + id lists + batches) each
        node put on the wire during the measurement window — the rt
        counterpart of the sim's per-node overhead metric."""
        if not self.per_node_counters:
            return 0.0
        total = self.counters()
        frames = (total.heartbeats_sent + total.id_lists_sent +
                  total.batches_sent)
        return frames / len(self.per_node_counters)

    def summary(self) -> Dict[str, float]:
        """Headline measured metrics, flat (for rows and reports)."""
        return {
            "reliability": self.reliability(),
            "messages_per_node": self.messages_per_node(),
            "datagrams_sent": float(self.datagrams_sent),
            "wire_bytes_sent": float(self.wire_bytes_sent),
            "frames_rejected": float(self.frames_rejected),
            "wallclock_s": self.wallclock_s,
        }


class LoopbackCluster:
    """Run one scenario over real UDP sockets on the loopback interface.

    Construction validates the config's protocol against the registry
    (unknown names fail fast with the known-protocol list) and the fault
    schedule against the population; :meth:`run` owns its own event loop
    and returns an :class:`RtResult`.
    """

    def __init__(self, config: ScenarioConfig, *, time_scale: float = 1.0,
                 faults: Tuple[RtFault, ...] = ()):
        if time_scale <= 0:
            raise ValueError(f"time_scale must be positive: {time_scale=}")
        # Fail fast — with the full known-protocols list in the message —
        # before any sockets are bound.
        registry.get(config.protocol)
        for fault in faults:
            if fault.node >= config.n_processes:
                raise ValueError(
                    f"fault targets node {fault.node} but the cluster "
                    f"has only {config.n_processes} nodes")
        self.config = config
        self.time_scale = float(time_scale)
        self.faults = tuple(faults)

    def run(self) -> RtResult:
        """Execute the scenario on the cluster (blocking)."""
        return asyncio.run(self._run())

    async def _run(self) -> RtResult:
        """The async body of :meth:`run` (exposed for running loops)."""
        started = _wallclock.perf_counter()
        config = self.config
        scale = self.time_scale
        loop = asyncio.get_running_loop()
        rngs = RngRegistry(config.seed)
        subscriber_ids = select_subscribers(config, rngs)
        subscriber_set = set(subscriber_ids)

        hosts: List[AsyncioHost] = []
        transports: List[asyncio.DatagramTransport] = []
        try:
            for i in range(config.n_processes):
                protocol = make_protocol(config)
                host = AsyncioHost(i, loop, protocol,
                                   rngs.stream("node", i),
                                   time_scale=scale)
                topic = (config.event_topic if i in subscriber_set
                         else config.other_topic)
                protocol.subscribe(topic)
                transport, _ = await loop.create_datagram_endpoint(
                    lambda h=host: HostDatagramProtocol(h),
                    local_addr=("127.0.0.1", 0))
                hosts.append(host)
                transports.append(transport)

            # Wire the full-mesh peer tables only after every socket has
            # bound, so no node ever addresses an unbound peer.
            addrs = [t.get_extra_info("sockname") for t in transports]
            for host, transport, own in zip(hosts, transports, addrs):
                peers = [a for a in addrs if a is not own]
                host.set_network(transport, peers)

            # One shared epoch: all nodes agree what "virtual zero" is.
            epoch = loop.time()
            for host in hosts:
                host.set_epoch(epoch)
                host.start()

            # Warm-up: heartbeats mix, views form; traffic not counted.
            if config.warmup > 0:
                await asyncio.sleep(config.warmup / scale)
            baselines = [ProtocolCounters().add(h.protocol.counters)
                         for h in hosts]

            # Publications and faults are scheduled only now — after the
            # baseline snapshot — so a publish at offset 0 can never race
            # the warm-up accounting.  Offsets already behind the wall
            # clock fire as soon as the loop is idle, which is harmless.
            published: List[Event] = []
            factories: Dict[int, EventFactory] = {}

            def _do_publish(publisher_id: int, pub: Publication) -> None:
                factory = factories.setdefault(publisher_id,
                                               EventFactory(publisher_id))
                event = factory.create(
                    pub.topic or config.event_topic, validity=pub.validity,
                    now=hosts[publisher_id].now,
                    payload_bytes=pub.payload_bytes)
                published.append(event)
                hosts[publisher_id].protocol.publish(event)

            pending: List[asyncio.TimerHandle] = []
            for pub in config.publications:
                idx = pub.publisher if pub.publisher is not None else 0
                publisher_id = subscriber_ids[idx % len(subscriber_ids)]
                pending.append(loop.call_at(
                    epoch + (config.warmup + pub.at) / scale,
                    _do_publish, publisher_id, pub))

            actions = {"crash": lambda h: h.crash,
                       "recover": lambda h: h.recover,
                       "silence": lambda h: h.silence,
                       "restore": lambda h: h.unsilence}
            for fault in self.faults:
                pending.append(loop.call_at(
                    epoch + (config.warmup + fault.at) / scale,
                    actions[fault.kind](hosts[fault.node])))

            # The measurement window.
            end_at = epoch + (config.warmup + config.duration) / scale
            await asyncio.sleep(max(0.0, end_at - loop.time()))

            for handle in pending:
                handle.cancel()
            per_node = [h.protocol.counters.minus(base)
                        for h, base in zip(hosts, baselines)]
            published_ids = {e.event_id for e in published}
            delivery: Dict[EventId, Dict[int, float]] = {
                eid: {} for eid in published_ids}
            for host in hosts:
                for eid, t in host.delivery_times.items():
                    if eid in published_ids:
                        delivery[eid][host.id] = t

            return RtResult(
                config=config, time_scale=scale,
                published_events=published,
                subscriber_ids=subscriber_ids,
                delivery_times=delivery, per_node_counters=per_node,
                frames_sent=sum(h.frames_sent for h in hosts),
                datagrams_sent=sum(h.datagrams_sent for h in hosts),
                wire_bytes_sent=sum(h.wire_bytes_sent for h in hosts),
                frames_rejected=sum(h.frames_rejected for h in hosts),
                wallclock_s=_wallclock.perf_counter() - started,
                faults=self.faults)
        finally:
            for host in hosts:
                host.shutdown()
            for transport in transports:
                transport.close()
            # Give the loop one cycle to flush transport close callbacks.
            await asyncio.sleep(0)
