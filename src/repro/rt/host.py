"""The asyncio :class:`~repro.core.base.Host`: real timers, real UDP.

:class:`AsyncioHost` is the wall-clock twin of the sim's
:class:`~repro.net.node.Node`.  The protocol stack cannot tell them
apart — both satisfy the :class:`~repro.core.base.Host` contract,
including the richer handle guarantees the stack layers rely on
(``.cancel()``/``.active`` on schedule handles, ``.stop()`` /
``.set_period()`` / ``.period`` / ``.running`` on periodic handles) —
but here ``now`` reads the event loop's clock, ``schedule`` arms
``loop.call_later`` and ``send`` encodes the frame and fans it out as
one UDP datagram per peer in a static peer table (unicast fan-out
standing in for the radio's one-hop broadcast).

Time scaling
------------
Protocol configs are written in *virtual* seconds (1 s heartbeats,
multi-second validity windows).  Running those literally would make
every cluster test take minutes of wall clock, so the host maps wall
time to virtual time by a constant ``time_scale`` factor: ``now``
returns ``(loop.time() - epoch) * time_scale`` and a ``schedule(d)``
arms ``call_later(d / time_scale)``.  At ``time_scale=1`` the runtime
runs in real time; the bridge experiment defaults to 10x compression.
The datagrams stay real either way.

Failure semantics mirror the sim node: ``crash`` cancels every timer and
periodic and drops queued sends, ``silence``/``unsilence`` nest and
defer outbound frames until the last window lifts, and callbacks of
armed timers are guarded so they never fire into a crashed protocol.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.base import PubSubProtocol
from repro.core.events import Event, EventId
from repro.net.messages import Message
from repro.rt.codec import CodecError, decode, encode

#: A UDP peer address as returned by ``transport.get_extra_info``.
Address = Tuple[str, int]


class RtTimer:
    """Cancellable wall-clock timer handle (the sim ``Timer`` contract).

    Exposes exactly what the stack layers use on a schedule handle:
    :meth:`cancel` and :attr:`active`.  Cancelling a fired or cancelled
    timer is a harmless no-op, like the kernel's.
    """

    __slots__ = ("_handle", "fired", "cancelled")

    def __init__(self) -> None:
        self._handle: Optional[asyncio.TimerHandle] = None
        self.fired = False
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from firing (no-op if already fired)."""
        self.cancelled = True
        if self._handle is not None:
            self._handle.cancel()

    @property
    def active(self) -> bool:
        """True while the timer is pending (not fired, not cancelled)."""
        return not (self.cancelled or self.fired)


class RtPeriodicTask:
    """Repeating wall-clock task mirroring the sim ``PeriodicTask``.

    Same observable contract: per-tick ``U(0, jitter)`` drawn from the
    host's rng, :meth:`set_period` takes effect from the next re-arm,
    :meth:`stop` cancels the pending tick, :attr:`running` flips only on
    stop.
    """

    def __init__(self, host: "AsyncioHost", period: float,
                 callback: Callable[[], None], jitter: float = 0.0):
        if period <= 0:
            raise ValueError(f"period must be positive: {period=}")
        self._host = host
        self._period = float(period)
        self._callback = callback
        self._jitter = float(jitter)
        self._handle: Optional[asyncio.TimerHandle] = None
        self._stopped = False
        self._arm(self._period)

    def _draw_jitter(self) -> float:
        if self._jitter <= 0.0:
            return 0.0
        return self._host.rng.uniform(0.0, self._jitter)

    def _arm(self, delay: float) -> None:
        self._handle = self._host._call_later(
            max(0.0, delay + self._draw_jitter()), self._tick)

    def _tick(self) -> None:
        if self._stopped:
            return
        self._callback()
        if not self._stopped:
            self._arm(self._period)

    @property
    def period(self) -> float:
        """Current tick period in virtual seconds (jitter excluded)."""
        return self._period

    def set_period(self, period: float) -> None:
        """Update the period; takes effect from the next re-arm."""
        if period <= 0:
            raise ValueError(f"period must be positive: {period=}")
        self._period = float(period)

    @property
    def running(self) -> bool:
        """True until :meth:`stop` is called."""
        return not self._stopped

    def stop(self) -> None:
        """Stop the task and cancel its pending tick."""
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()


class AsyncioHost:
    """One real-network node: a protocol stack over an asyncio loop.

    Satisfies :class:`~repro.core.base.Host`; the cluster harness wires
    the UDP transport and peer table in after every endpoint has bound
    (:meth:`set_network`) and aligns all nodes on one clock epoch
    (:meth:`set_epoch`) before :meth:`start`.
    """

    def __init__(self, node_id: int, loop: asyncio.AbstractEventLoop,
                 protocol: PubSubProtocol, rng, *,
                 time_scale: float = 1.0,
                 static_speed: Optional[float] = None):
        if time_scale <= 0:
            raise ValueError(f"time_scale must be positive: {time_scale=}")
        self.id = node_id
        self.protocol = protocol
        self._loop = loop
        self._rng = rng
        self._time_scale = float(time_scale)
        self._speed = static_speed
        self._epoch = loop.time()
        self._transport: Optional[asyncio.DatagramTransport] = None
        self._peers: List[Address] = []
        self.alive = False
        self._started = False
        self._silence_depth = 0
        self._timers: List[RtTimer] = []
        self._periodics: List[RtPeriodicTask] = []
        self._deferred_sends: List[Message] = []
        self.delivered_events: List[Event] = []
        #: Virtual time of each event's *first* local delivery.
        self.delivery_times: Dict[EventId, float] = {}
        self.frames_sent = 0
        self.datagrams_sent = 0
        self.wire_bytes_sent = 0
        self.frames_received = 0
        self.frames_rejected = 0
        self.on_deliver: Optional[
            Callable[["AsyncioHost", Event], None]] = None
        protocol.attach(self)

    # -- wiring ----------------------------------------------------------------

    def set_network(self, transport: asyncio.DatagramTransport,
                    peers: List[Address]) -> None:
        """Install the bound UDP transport and the static peer table."""
        self._transport = transport
        self._peers = list(peers)

    def set_epoch(self, loop_time: float) -> None:
        """Anchor virtual time zero at ``loop_time`` (cluster-shared)."""
        self._epoch = float(loop_time)

    @property
    def time_scale(self) -> float:
        """Virtual seconds elapsing per wall-clock second."""
        return self._time_scale

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        """Boot the node: mark it alive and start the protocol."""
        if self._started:
            raise RuntimeError(f"node {self.id} already started")
        self._started = True
        self.alive = True
        self.protocol.on_start()

    def crash(self) -> None:
        """Fail-stop: cancel all protocol timers, go deaf and mute."""
        if not self.alive:
            return
        self.alive = False
        self.protocol.on_stop()
        for timer in self._timers:
            timer.cancel()
        self._timers.clear()
        for task in self._periodics:
            task.stop()
        self._periodics.clear()
        self._deferred_sends.clear()

    def recover(self) -> None:
        """Restart the protocol after a crash (volatile state was lost)."""
        if self.alive:
            return
        self.alive = True
        self.protocol.on_start()

    def shutdown(self) -> None:
        """End-of-run stop: like :meth:`crash`, but a no-op when dead."""
        self.crash()

    # -- fault injection (radio silence) -----------------------------------------

    @property
    def silenced(self) -> bool:
        """True while at least one silence window is open (they nest)."""
        return self._silence_depth > 0

    @property
    def listening(self) -> bool:
        """Radio able to receive: booted, alive and not silenced."""
        return self.alive and not self.silenced

    def silence(self) -> None:
        """Open a radio-silence window: deaf and mute, protocol state
        and timers survive, outbound frames queue until
        :meth:`unsilence`.  A no-op on a crashed node."""
        if not self.alive:
            return
        self._silence_depth += 1

    def unsilence(self) -> None:
        """Close one silence window; queued frames flush when the last
        overlapping window has lifted."""
        if self._silence_depth == 0:
            return
        self._silence_depth -= 1
        if self._silence_depth == 0 and self.alive:
            pending, self._deferred_sends = self._deferred_sends, []
            for message in pending:
                self._transmit(message)

    # -- Host interface ----------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time in seconds (scaled wall clock)."""
        return (self._loop.time() - self._epoch) * self._time_scale

    @property
    def rng(self):
        """This node's dedicated deterministic random stream."""
        return self._rng

    def send(self, message: Message) -> None:
        """Encode and fan ``message`` out to every peer (queued while
        silenced, dropped while crashed)."""
        if not self.alive:
            return
        if self.silenced:
            self._deferred_sends.append(message)
            return
        self._transmit(message)

    def _transmit(self, message: Message) -> None:
        data = encode(message)
        for addr in self._peers:
            self._transport.sendto(data, addr)
        self.frames_sent += 1
        self.datagrams_sent += len(self._peers)
        self.wire_bytes_sent += len(data)

    def _call_later(self, virtual_delay: float,
                    callback: Callable[[], None]) -> asyncio.TimerHandle:
        """Arm a raw loop timer ``virtual_delay`` virtual seconds out."""
        return self._loop.call_later(
            max(0.0, virtual_delay) / self._time_scale, callback)

    def schedule(self, delay: float, callback: Callable[..., None],
                 *args) -> RtTimer:
        """Run ``callback(*args)`` in ``delay`` virtual seconds unless
        this node crashes first; returns the cancellable handle."""
        timer = RtTimer()

        def fire() -> None:
            timer.fired = True
            if self.alive:
                callback(*args)

        timer._handle = self._call_later(delay, fire)
        self._timers.append(timer)
        if len(self._timers) > 64:
            self._timers = [t for t in self._timers if t.active]
        return timer

    def periodic(self, period: float, callback: Callable[[], None],
                 jitter: float = 0.0) -> RtPeriodicTask:
        """Start a repeating task every ``period`` virtual seconds (plus
        ``U(0, jitter)`` per tick), stopped automatically on crash."""
        task = RtPeriodicTask(self, period, callback, jitter=jitter)
        self._periodics.append(task)
        return task

    def deliver(self, event: Event) -> None:
        """Hand an event to the application layer (records + notifies)."""
        self.delivered_events.append(event)
        self.delivery_times.setdefault(event.event_id, self.now)
        if self.on_deliver is not None:
            self.on_deliver(self, event)

    def current_speed(self) -> Optional[float]:
        """The configured static speed (``None`` without a tachometer;
        loopback nodes do not move)."""
        return self._speed

    # -- network receive path ------------------------------------------------------

    def datagram_received(self, data: bytes, addr: Address) -> None:
        """Decode and dispatch one datagram; garbage is counted and
        dropped, never allowed to crash the receive loop."""
        try:
            message = decode(data)
        except CodecError:
            self.frames_rejected += 1
            return
        if not self.listening:
            return
        self.frames_received += 1
        self.protocol.on_message(message)

    def __repr__(self) -> str:   # pragma: no cover - debugging aid
        state = "up" if self.alive else "down"
        return (f"<AsyncioHost {self.id} {state} "
                f"{type(self.protocol).__name__}>")


class HostDatagramProtocol(asyncio.DatagramProtocol):
    """Adapter routing an endpoint's datagrams into an AsyncioHost."""

    def __init__(self, host: AsyncioHost):
        self._host = host

    def datagram_received(self, data: bytes, addr: Address) -> None:
        """Forward one received datagram to the host."""
        self._host.datagram_received(data, addr)

    def error_received(self, exc: Exception) -> None:
        """Ignore ICMP-reported send errors (lossy-medium semantics)."""
