"""Baseline (1): simple flooding.

"An event is sent every second by a process to all its neighbors which in
turn, irrespective of their interests, propagates it with the same
technique" (Section 5.2).  Every process stores and re-floods every valid
event it hears, subscribed or not — 100 % reliability by construction, at
maximal bandwidth, duplicate and parasite cost.
"""

from __future__ import annotations

from repro.baselines.base import FloodingProtocol
from repro.core.events import Event


class SimpleFlooding(FloodingProtocol):
    """Flood everything, interests ignored."""

    def _should_store(self, event: Event, subscribed: bool) -> bool:
        return True

    def _should_flood(self, event: Event) -> bool:
        return True
