"""Baseline (3): neighbors'-interests flooding.

"A process propagates an event to its neighbors only if the process itself
and its neighbors are interested in the event" (Section 5.2).  This variant
sends heartbeats (like the frugal protocol's phase 1) to learn neighbour
interests, and on each flood tick only re-floods events for which at least
one *current* neighbour is interested.  Broadcast still reaches
uninterested bystanders — which is why Fig. 20 shows it with a non-zero
parasite count — but a process surrounded by no interested neighbour stays
silent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet

from repro.baselines.base import FloodingProtocol
from repro.core.events import Event
from repro.core.topics import Topic, subscription_matches_event
from repro.net.messages import Heartbeat


@dataclass
class _NeighborInterests:
    subscriptions: FrozenSet[Topic]
    heard_at: float


class NeighborInterestFlooding(FloodingProtocol):
    """Flood subscribed events only while an interested neighbour exists."""

    def __init__(self, flood_period: float = 1.0,
                 flood_jitter: float = 0.05,
                 heartbeat_period: float = 1.0,
                 neighbor_ttl: float = 2.5):
        super().__init__(flood_period=flood_period, flood_jitter=flood_jitter)
        if heartbeat_period <= 0:
            raise ValueError("heartbeat_period must be positive")
        if neighbor_ttl <= 0:
            raise ValueError("neighbor_ttl must be positive")
        self.heartbeat_period = float(heartbeat_period)
        self.neighbor_ttl = float(neighbor_ttl)
        self._neighbors: Dict[int, _NeighborInterests] = {}
        self._hb_task = None
        self.heartbeats_sent = 0

    # -- lifecycle -------------------------------------------------------------

    def on_start(self) -> None:
        super().on_start()
        self._hb_task = self.host.periodic(
            self.heartbeat_period, self._heartbeat_tick,
            jitter=self.flood_jitter)

    def on_stop(self) -> None:
        super().on_stop()
        if self._hb_task is not None:
            self._hb_task.stop()
            self._hb_task = None
        self._neighbors.clear()

    # -- neighbourhood tracking ---------------------------------------------------

    def _heartbeat_tick(self) -> None:
        self.host.send(Heartbeat(sender=self.host.id,
                                 subscriptions=self.subscriptions,
                                 speed=None))
        self.heartbeats_sent += 1

    def _on_heartbeat(self, hb: Heartbeat) -> None:
        self._neighbors[hb.sender] = _NeighborInterests(
            subscriptions=hb.subscriptions, heard_at=self.host.now)

    def _prune_neighbors(self) -> None:
        horizon = self.host.now - self.neighbor_ttl
        stale = [nid for nid, info in self._neighbors.items()
                 if info.heard_at < horizon]
        for nid in stale:
            del self._neighbors[nid]

    def _neighbor_interested(self, event: Event) -> bool:
        return any(
            subscription_matches_event(info.subscriptions, event.topic)
            for info in self._neighbors.values())

    # -- variant hooks ----------------------------------------------------------------

    def _should_store(self, event: Event, subscribed: bool) -> bool:
        return subscribed

    def _should_flood(self, event: Event) -> bool:
        self._prune_neighbors()
        return self._neighbor_interested(event)
