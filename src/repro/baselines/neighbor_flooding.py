"""Baseline (3): neighbors'-interests flooding.

"A process propagates an event to its neighbors only if the process itself
and its neighbors are interested in the event" (Section 5.2).  This variant
adds the stack's :class:`~repro.core.stack.membership.TTLMembership`
layer — fixed-period heartbeats (like the frugal protocol's phase 1) and a
lazily TTL-pruned neighbour view — and on each flood tick only re-floods
events for which at least one *current* neighbour is interested.
Broadcast still reaches uninterested bystanders — which is why Fig. 20
shows it with a non-zero parasite count — but a process surrounded by no
interested neighbour stays silent.
"""

from __future__ import annotations

from repro.baselines.base import FloodingProtocol
from repro.core.events import Event
from repro.core.stack.membership import TTLMembership
from repro.net.messages import Heartbeat


class NeighborInterestFlooding(FloodingProtocol):
    """Flood subscribed events only while an interested neighbour exists."""

    def __init__(self, flood_period: float = 1.0,
                 flood_jitter: float = 0.05,
                 heartbeat_period: float = 1.0,
                 neighbor_ttl: float = 2.5):
        super().__init__(flood_period=flood_period, flood_jitter=flood_jitter)
        self.membership = TTLMembership(
            self.counters, heartbeat_period, neighbor_ttl,
            subscriptions=lambda: self.subscriptions,
            jitter=self.flood_jitter)
        self.heartbeat_period = self.membership.heartbeat_period
        self.neighbor_ttl = self.membership.ttl

    # -- lifecycle -------------------------------------------------------------

    def attach(self, host) -> None:
        """Bind to a host: also wire the membership layer."""
        super().attach(host)
        self.membership.attach(host)

    def detach(self) -> None:
        """Sever the host binding on every layer (stop first)."""
        super().detach()
        self.membership.detach()

    def on_start(self) -> None:
        """Boot: flood task first, then the heartbeat task."""
        super().on_start()
        self.membership.start()

    def on_stop(self) -> None:
        """Crash/shutdown: also stop beaconing, forget neighbours."""
        super().on_stop()
        self.membership.stop()

    # -- variant hooks ----------------------------------------------------------------

    def _should_store(self, event: Event, subscribed: bool) -> bool:
        return subscribed

    def _should_flood(self, event: Event) -> bool:
        self.membership.prune(self.host.now)
        return self.membership.any_interested(event.topic)

    def _on_heartbeat(self, hb: Heartbeat) -> None:
        self.membership.on_heartbeat(hb)
