"""Frozen pre-stack reference implementations, for paired verification.

The stack refactor rewrote :class:`repro.core.protocol.FrugalPubSub` and
the three Section 5.2 flooding baselines as compositions of the
:mod:`repro.core.stack` layers, with a hard contract: **bit-identical
behaviour** — same RNG draw order, same timer ordering, same summaries
to the last float.  This module keeps the original monolithic
implementations verbatim (only the counter fields moved to the unified
:class:`~repro.core.base.ProtocolCounters`, which draws nothing and
schedules nothing) so the contract stays *testable*, the same way PR 3
kept the flat-scan medium behind ``MediumConfig.spatial_index=False``:

* ``tests/test_stack_equivalence.py`` runs every scenario family with
  both implementations and asserts ``==`` on the summaries;
* the entries are registered **hidden** (``legacy-frugal``,
  ``legacy-simple-flooding``, ``legacy-interest-flooding``,
  ``legacy-neighbor-flooding``): any config can name them — including
  in parallel workers, which re-import this module — but protocol
  sweeps such as ``protocol-matrix`` do not pick them up.

Do not evolve these classes; they are a measurement standard, not a
surface for features.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set

from repro.core.base import PubSubProtocol
from repro.core.config import FrugalConfig
from repro.core.events import Event, EventId
from repro.core.gc import make_policy
from repro.core.tables import EventTable, NeighborhoodTable
from repro.core.topics import (Topic, subscription_matches_event,
                               subscriptions_related)
from repro.net.messages import EventBatch, EventIdList, Heartbeat, Message


class ReferenceFrugalPubSub(PubSubProtocol):
    """The pre-stack monolithic frugal protocol, frozen verbatim."""

    def __init__(self, config: Optional[FrugalConfig] = None):
        super().__init__()
        self.config = config or FrugalConfig()
        self._subscriptions: Set[Topic] = set()
        self.neighborhood = NeighborhoodTable(
            capacity=self.config.neighborhood_capacity)
        self.events: Optional[EventTable] = None   # built on attach (needs rng)
        self._running = False
        self._hb_delay = self.config.hb_delay
        self._hb_task = None
        self._ngc_task = None
        self._backoff_timer = None
        self._bo_delay: Optional[float] = None      # the paper's "BODelay"

    # -- lifecycle -----------------------------------------------------------------

    def attach(self, host) -> None:
        """Bind to a host and build the rng-backed event table."""
        super().attach(host)
        self.events = EventTable(
            capacity=self.config.event_table_capacity,
            policy=make_policy(self.config.eviction_policy),
            rng=host.rng)

    def on_start(self) -> None:
        """Boot: reset the heartbeat period and arm the tasks."""
        self._running = True
        self._hb_delay = min(self.config.hb_delay,
                             self.config.hb_upper_bound)
        self._update_tasks()

    def on_stop(self) -> None:
        """Crash/shutdown: stop tasks, lose all volatile state."""
        self._running = False
        self._stop_tasks()
        self._cancel_backoff()
        self.neighborhood = NeighborhoodTable(
            capacity=self.config.neighborhood_capacity)
        if self.host is not None:
            self.events = EventTable(
                capacity=self.config.event_table_capacity,
                policy=make_policy(self.config.eviction_policy),
                rng=self.host.rng)

    # -- application-facing API -------------------------------------------------------

    @property
    def subscriptions(self) -> FrozenSet[Topic]:
        """Current subscription set."""
        return frozenset(self._subscriptions)

    def subscribe(self, topic: Topic | str) -> None:
        """Register interest in ``topic`` and its subtopics (Fig. 5)."""
        self._subscriptions.add(Topic(topic))
        self._update_tasks()

    def unsubscribe(self, topic: Topic | str) -> None:
        """Drop a subscription; tasks stop when nothing is advertised."""
        self._subscriptions.discard(Topic(topic))
        self._update_tasks()

    def publish(self, event: Event) -> None:
        """Inject a locally produced event (Fig. 9, ``publish``)."""
        self._require_frugal_attached()
        now = self.host.now
        interested = self.neighborhood.interested_in(event.topic)
        if interested:
            neighbor_ids = tuple(self.neighborhood.ids())
            self.host.send(EventBatch(sender=self.host.id,
                                      events=(event,),
                                      neighbor_ids=neighbor_ids))
            self.counters.batches_sent += 1
            self.counters.events_forwarded += 1
            for nid in neighbor_ids:
                self.neighborhood.record_known_event(nid, event.event_id)
        row = self.events.store(event, now)
        if interested:
            row.forward_count += 1
        if not row.delivered:
            row.delivered = True
            self.counters.delivered_count += 1
            self.host.deliver(event)
        self._update_tasks()       # a pure publisher starts advertising now

    # -- network-facing API --------------------------------------------------------------

    def on_message(self, message: Message) -> None:
        """Dispatch a received frame by message kind."""
        if not self._running:
            return
        if isinstance(message, Heartbeat):
            self._on_heartbeat(message)
        elif isinstance(message, EventIdList):
            self._on_event_id_list(message)
        elif isinstance(message, EventBatch):
            self._on_event_batch(message)

    # -- phase 1: neighbourhood detection ---------------------------------------------------

    def advertised_topics(self) -> FrozenSet[Topic]:
        """Subscriptions plus the topics of own still-valid publications."""
        topics = set(self._subscriptions)
        if self.events is not None and self.host is not None:
            now = self.host.now
            own = self.host.id
            topics.update(
                row.topic for row in self.events
                if row.event_id.publisher == own and row.is_valid(now))
        return frozenset(topics)

    def _on_heartbeat(self, hb: Heartbeat) -> None:
        mine = self.advertised_topics()
        if mine and subscriptions_related(mine, hb.subscriptions):
            is_new = hb.sender not in self.neighborhood
            self.neighborhood.upsert(hb.sender, hb.subscriptions,
                                     hb.speed, self.host.now)
            if is_new:
                self._on_new_neighbor(hb.sender, hb.subscriptions)
        self._recompute_delays()

    def _on_new_neighbor(self, neighbor_id: int,
                         their_subs: FrozenSet[Topic]) -> None:
        if not self.config.announce_on_new_neighbor:
            self._retrieve_events_to_send()
            return
        ids = self.events.valid_ids_for(their_subs, self.host.now)
        self.host.send(EventIdList(sender=self.host.id,
                                   event_ids=tuple(ids)))
        self.counters.id_lists_sent += 1

    def _on_event_id_list(self, msg: EventIdList) -> None:
        if msg.sender not in self.neighborhood:
            return
        for event_id in msg.event_ids:
            self.neighborhood.record_known_event(msg.sender, event_id,
                                                 now=self.host.now)
        self._retrieve_events_to_send()

    def _recompute_delays(self) -> None:
        avg = self.neighborhood.average_speed(
            own_speed=self.host.current_speed())
        new_hb = self.config.adapted_hb_delay(avg, self._hb_delay)
        if new_hb != self._hb_delay:
            self._hb_delay = new_hb
            if self._hb_task is not None:
                self._hb_task.set_period(new_hb)
        if self._ngc_task is not None:
            self._ngc_task.set_period(self.config.ngc_delay(self._hb_delay))

    def _heartbeat_tick(self) -> None:
        topics = self.advertised_topics()
        if not topics:
            return
        speed = (self.host.current_speed()
                 if self.config.speed_in_heartbeats else None)
        self.host.send(Heartbeat(sender=self.host.id,
                                 subscriptions=topics,
                                 speed=speed))
        self.counters.heartbeats_sent += 1

    def _ngc_tick(self) -> None:
        self.neighborhood.collect(self.host.now,
                                  self.config.ngc_delay(self._hb_delay))

    # -- phase 2: dissemination ------------------------------------------------------------

    def _retrieve_events_to_send(self) -> List[EventId]:
        to_send = self._compute_events_to_send()
        if not to_send:
            return []
        delay = self.config.backoff_delay(self._hb_delay, len(to_send))
        if self._bo_delay is None:
            self._bo_delay = delay
        else:
            self._bo_delay = min(self._bo_delay, delay)
        if not self.config.use_backoff:
            self._on_backoff_expired()
            return to_send
        if self._backoff_timer is None or not self._backoff_timer.active:
            armed = self._bo_delay
            if self.config.backoff_jitter_frac > 0:
                armed *= 1.0 + self.host.rng.uniform(
                    0.0, self.config.backoff_jitter_frac)
            self._backoff_timer = self.host.schedule(
                armed, self._on_backoff_expired)
        return to_send

    def _compute_events_to_send(self) -> List[EventId]:
        now = self.host.now
        needed: Set[EventId] = set()
        valid_rows = self.events.valid_rows(now)
        if not valid_rows:
            return []
        for neighbor in self.neighborhood:
            for row in valid_rows:
                if row.event_id in needed:
                    continue
                if (subscription_matches_event(neighbor.subscriptions,
                                               row.topic)
                        and not neighbor.knows(row.event_id)):
                    needed.add(row.event_id)
        return sorted(needed)

    def _on_backoff_expired(self) -> None:
        self._bo_delay = None
        self._backoff_timer = None
        to_send = self._compute_events_to_send()
        if not to_send:
            return
        events = tuple(self.events.get(eid).event for eid in to_send)
        neighbor_ids = tuple(self.neighborhood.ids())
        self.host.send(EventBatch(sender=self.host.id, events=events,
                                  neighbor_ids=neighbor_ids))
        self.counters.batches_sent += 1
        self.counters.events_forwarded += len(events)
        for nid in neighbor_ids:
            for eid in to_send:
                self.neighborhood.record_known_event(nid, eid)
        for eid in to_send:
            self.events.increment_forward_count(eid)

    def _cancel_backoff(self) -> None:
        if self._backoff_timer is not None:
            self._backoff_timer.cancel()
            self._backoff_timer = None
        self._bo_delay = None

    def _on_event_batch(self, msg: EventBatch) -> None:
        now = self.host.now
        interested = False
        for event in msg.events:
            self.neighborhood.record_known_event(msg.sender, event.event_id)
            for nid in msg.neighbor_ids:
                if nid != self.host.id:
                    self.neighborhood.record_known_event(nid, event.event_id)
            if not subscription_matches_event(self.subscriptions,
                                              event.topic):
                self.counters.parasites_dropped += 1
                continue
            if event.event_id in self.events:
                self.counters.duplicates_dropped += 1
                continue
            if not event.is_valid(now):
                continue   # expired in flight; of no use to anyone
            interested = True
            if self.config.backoff_suppression:
                self._cancel_backoff()
            row = self.events.store(event, now)
            if not row.delivered:
                row.delivered = True
                self.counters.delivered_count += 1
                self.host.deliver(event)
        if interested:
            self._retrieve_events_to_send()

    # -- phase 3: task management -------------------------------------------------------------

    def _update_tasks(self) -> None:
        if not self._running or self.host is None:
            return
        if self.advertised_topics():
            if self._hb_task is None or not self._hb_task.running:
                self._hb_task = self.host.periodic(
                    self._hb_delay, self._heartbeat_tick,
                    jitter=self.config.hb_jitter)
            if self._ngc_task is None or not self._ngc_task.running:
                self._ngc_task = self.host.periodic(
                    self.config.ngc_delay(self._hb_delay), self._ngc_tick)
        else:
            self._stop_tasks()

    def _stop_tasks(self) -> None:
        if self._hb_task is not None:
            self._hb_task.stop()
            self._hb_task = None
        if self._ngc_task is not None:
            self._ngc_task.stop()
            self._ngc_task = None

    # -- misc ---------------------------------------------------------------------------------

    def _require_frugal_attached(self) -> None:
        if self.host is None or self.events is None:
            raise RuntimeError("protocol is not attached to a host")

    @property
    def hb_delay(self) -> float:
        """Current (possibly adapted) heartbeat period [s]."""
        return self._hb_delay

    @property
    def backoff_pending(self) -> bool:
        """Is a back-off currently armed?"""
        return self._backoff_timer is not None and self._backoff_timer.active


class ReferenceFloodingProtocol(PubSubProtocol):
    """The pre-stack monolithic flooding base class, frozen verbatim."""

    #: Rebroadcast period in seconds (the paper's "every one second").
    flood_period: float = 1.0

    def __init__(self, flood_period: float = 1.0,
                 flood_jitter: float = 0.05):
        super().__init__()
        if flood_period <= 0:
            raise ValueError(f"flood_period must be positive: {flood_period}")
        self.flood_period = float(flood_period)
        self.flood_jitter = float(flood_jitter)
        self._subscriptions: Set[Topic] = set()
        self._store: Dict[EventId, Event] = {}
        self._delivered: Set[EventId] = set()
        self._flood_task = None
        self._running = False

    # -- application-facing API ------------------------------------------------

    @property
    def subscriptions(self) -> FrozenSet[Topic]:
        """Current subscription set."""
        return frozenset(self._subscriptions)

    def subscribe(self, topic: Topic | str) -> None:
        """Register interest in ``topic`` and its subtopics."""
        self._subscriptions.add(Topic(topic))

    def unsubscribe(self, topic: Topic | str) -> None:
        """Drop a subscription."""
        self._subscriptions.discard(Topic(topic))

    def publish(self, event: Event) -> None:
        """Store, deliver locally and flood immediately."""
        if self.host is None:
            raise RuntimeError("protocol is not attached to a host")
        self._store[event.event_id] = event
        self._deliver_if_subscribed(event)
        self._flood_now([event])

    # -- lifecycle -----------------------------------------------------------------

    def on_start(self) -> None:
        """Boot: arm the periodic flood task."""
        self._running = True
        self._flood_task = self.host.periodic(
            self.flood_period, self._flood_tick, jitter=self.flood_jitter)

    def on_stop(self) -> None:
        """Crash/shutdown: stop flooding, lose the store."""
        self._running = False
        if self._flood_task is not None:
            self._flood_task.stop()
            self._flood_task = None
        self._store.clear()
        self._delivered.clear()

    # -- network-facing API ------------------------------------------------------------

    def on_message(self, message: Message) -> None:
        """Dispatch a received frame by message kind."""
        if not self._running:
            return
        if isinstance(message, EventBatch):
            self._on_event_batch(message)
        elif isinstance(message, Heartbeat):
            self._on_heartbeat(message)

    def _on_heartbeat(self, hb: Heartbeat) -> None:
        """Only the neighbours'-interests variant listens to heartbeats."""

    def _on_event_batch(self, msg: EventBatch) -> None:
        now = self.host.now
        for event in msg.events:
            subscribed = subscription_matches_event(self._subscriptions,
                                                    event.topic)
            if not subscribed:
                self.counters.parasites_dropped += 1
            if event.event_id in self._store:
                if subscribed:
                    self.counters.duplicates_dropped += 1
                continue
            if not event.is_valid(now):
                continue
            if self._should_store(event, subscribed):
                self._store[event.event_id] = event
            if subscribed:
                self._deliver_if_subscribed(event)

    # -- flooding ------------------------------------------------------------------------

    def _flood_tick(self) -> None:
        now = self.host.now
        expired = [eid for eid, e in self._store.items()
                   if not e.is_valid(now)]
        for eid in expired:
            del self._store[eid]
        outgoing = [e for e in self._store.values() if self._should_flood(e)]
        if outgoing:
            self._flood_now(outgoing)

    def _flood_now(self, events: List[Event]) -> None:
        self.host.send(EventBatch(sender=self.host.id,
                                  events=tuple(events)))
        self.counters.batches_sent += 1
        self.counters.events_forwarded += len(events)

    def _deliver_if_subscribed(self, event: Event) -> None:
        if event.event_id in self._delivered:
            return
        if subscription_matches_event(self._subscriptions, event.topic):
            self._delivered.add(event.event_id)
            self.counters.delivered_count += 1
            self.host.deliver(event)

    # -- variant hooks -----------------------------------------------------------------------

    @abc.abstractmethod
    def _should_store(self, event: Event, subscribed: bool) -> bool:
        """Keep this received event for future re-flooding?"""

    @abc.abstractmethod
    def _should_flood(self, event: Event) -> bool:
        """Include this stored event in the next flood tick?"""


class ReferenceSimpleFlooding(ReferenceFloodingProtocol):
    """Pre-stack baseline (1): flood everything, interests ignored."""

    def _should_store(self, event: Event, subscribed: bool) -> bool:
        return True

    def _should_flood(self, event: Event) -> bool:
        return True


class ReferenceInterestAwareFlooding(ReferenceFloodingProtocol):
    """Pre-stack baseline (2): flood only subscribed events."""

    def _should_store(self, event: Event, subscribed: bool) -> bool:
        return subscribed

    def _should_flood(self, event: Event) -> bool:
        return True   # everything stored passed the interest filter


@dataclass
class _ReferenceNeighborInterests:
    subscriptions: FrozenSet[Topic]
    heard_at: float


class ReferenceNeighborInterestFlooding(ReferenceFloodingProtocol):
    """Pre-stack baseline (3): flood while an interested neighbour exists."""

    def __init__(self, flood_period: float = 1.0,
                 flood_jitter: float = 0.05,
                 heartbeat_period: float = 1.0,
                 neighbor_ttl: float = 2.5):
        super().__init__(flood_period=flood_period, flood_jitter=flood_jitter)
        if heartbeat_period <= 0:
            raise ValueError("heartbeat_period must be positive")
        if neighbor_ttl <= 0:
            raise ValueError("neighbor_ttl must be positive")
        self.heartbeat_period = float(heartbeat_period)
        self.neighbor_ttl = float(neighbor_ttl)
        self._neighbors: Dict[int, _ReferenceNeighborInterests] = {}
        self._hb_task = None

    # -- lifecycle -------------------------------------------------------------

    def on_start(self) -> None:
        """Boot: flood task first, then the heartbeat task."""
        super().on_start()
        self._hb_task = self.host.periodic(
            self.heartbeat_period, self._heartbeat_tick,
            jitter=self.flood_jitter)

    def on_stop(self) -> None:
        """Crash/shutdown: also stop beaconing, forget neighbours."""
        super().on_stop()
        if self._hb_task is not None:
            self._hb_task.stop()
            self._hb_task = None
        self._neighbors.clear()

    # -- neighbourhood tracking ---------------------------------------------------

    def _heartbeat_tick(self) -> None:
        self.host.send(Heartbeat(sender=self.host.id,
                                 subscriptions=self.subscriptions,
                                 speed=None))
        self.counters.heartbeats_sent += 1

    def _on_heartbeat(self, hb: Heartbeat) -> None:
        self._neighbors[hb.sender] = _ReferenceNeighborInterests(
            subscriptions=hb.subscriptions, heard_at=self.host.now)

    def _prune_neighbors(self) -> None:
        horizon = self.host.now - self.neighbor_ttl
        stale = [nid for nid, info in self._neighbors.items()
                 if info.heard_at < horizon]
        for nid in stale:
            del self._neighbors[nid]

    def _neighbor_interested(self, event: Event) -> bool:
        return any(
            subscription_matches_event(info.subscriptions, event.topic)
            for info in self._neighbors.values())

    # -- variant hooks ----------------------------------------------------------------

    def _should_store(self, event: Event, subscribed: bool) -> bool:
        return subscribed

    def _should_flood(self, event: Event) -> bool:
        self._prune_neighbors()
        return self._neighbor_interested(event)
