"""The lpbcast-style gossip baseline: periodic probabilistic rounds over
a bounded digest buffer.

The protocol registry's first genuinely *new* strategy, unlocked by the
stack layers — neither a Section 5.2 flooder nor a one-shot
broadcast-storm scheme:

* like the flooders it is **periodic**, so it exploits validity windows
  (a node met later can still be served), but each round goes out only
  with probability ``forward_probability`` and carries at most
  ``fanout`` events — the lightweight-probabilistic-broadcast idea of
  lpbcast, translated to a broadcast-only medium where the "random
  F peers" of a wired gossip become whoever is currently in radio range;
* like the frugal protocol its **payload storage is bounded**: received
  events enter a digest buffer of ``buffer_capacity`` entries that
  evicts expired events first and then the oldest (lpbcast's buffer
  truncation), reusing the pluggable eviction machinery of
  :mod:`repro.core.gc`.  (The reception-dedup *id* set does grow with
  distinct events heard — 16-byte identifiers, not payloads — exactly
  like the flooders' delivered-set; it resets on crash.);
* unlike the frugal protocol it keeps **no neighbour state at all** —
  no heartbeats, no id exchange; redundancy control is purely
  probabilistic.

Determinism: every coin (the per-round forward decision) is drawn from
the host's node-local rng stream, one of the registry-seeded streams
every scenario derives from its seed — re-running a config replays the
exact coin sequence, so gossip summaries are exactly equal across
reruns (and across the serial/parallel/cached execution paths).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Set

from repro.core.base import PubSubProtocol
from repro.core.events import Event, EventId
from repro.core.stack.delivery import DeliveryLayer
from repro.core.stack.forwarding import GossipForwarding
from repro.core.stack.store import EventStore
from repro.core.topics import Topic
from repro.net.messages import EventBatch, Message


@dataclass(frozen=True)
class GossipConfig:
    """Tunables of the lpbcast-style gossip baseline."""

    period: float = 1.0
    """Length of one gossip round [s]."""

    jitter: float = 0.05
    """Uniform per-round jitter [s] so co-located nodes desynchronise."""

    forward_probability: float = 0.75
    """Probability that a non-empty round actually broadcasts."""

    fanout: int = 8
    """Maximum events per gossip batch (the newest buffered ones)."""

    buffer_capacity: Optional[int] = 32
    """Digest-buffer bound; ``None`` disables it (tests only)."""

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError(f"period must be positive: {self.period}")
        if self.jitter < 0:
            raise ValueError(f"jitter must be >= 0: {self.jitter}")
        if not 0.0 <= self.forward_probability <= 1.0:
            raise ValueError(f"forward_probability must be in [0,1]: "
                             f"{self.forward_probability}")
        if self.fanout < 1:
            raise ValueError(f"fanout must be >= 1: {self.fanout}")
        if self.buffer_capacity is not None and self.buffer_capacity < 1:
            raise ValueError("buffer_capacity must be >= 1 or None")

    def with_changes(self, **changes) -> "GossipConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)


class GossipPubSub(PubSubProtocol):
    """Topic-based pub/sub over lpbcast-style gossip rounds.

    Composition: :class:`~repro.core.stack.delivery.DeliveryLayer` for
    subscription matching and exactly-once hand-off, a bounded
    expired-first/FIFO :class:`~repro.core.stack.store.EventStore` as
    the digest buffer, and
    :class:`~repro.core.stack.forwarding.GossipForwarding` for the
    rounds.  No membership layer: gossip forwards irrespective of who is
    listening (routing-layer, like the broadcast-storm schemes), so
    parasite receptions are its price for statelessness.
    """

    def __init__(self, config: Optional[GossipConfig] = None):
        super().__init__()
        self.config = config or GossipConfig()
        self.delivery = DeliveryLayer(self.counters)
        self.buffer = EventStore.bounded_fifo(self.config.buffer_capacity)
        self.forwarding = GossipForwarding(
            self.counters, self.config.period, self.config.jitter,
            self.config.forward_probability, self.config.fanout)
        self._seen: Set[EventId] = set()
        self._running = False

    # -- lifecycle -----------------------------------------------------------------

    def attach(self, host) -> None:
        """Bind to a host: wire the delivery and forwarding layers."""
        super().attach(host)
        self.delivery.attach(host)
        self.forwarding.attach(host, self.buffer)

    def detach(self) -> None:
        """Sever the host binding on every layer (stop first)."""
        super().detach()
        self.delivery.detach()
        self.forwarding.detach()

    def on_start(self) -> None:
        """Boot: arm the gossip-round task."""
        self._running = True
        self.forwarding.start()

    def on_stop(self) -> None:
        """Crash/shutdown: stop gossiping, lose buffer and history."""
        self._running = False
        self.forwarding.stop()
        self.buffer.clear()
        self.delivery.reset()
        self._seen.clear()

    # -- application-facing API -------------------------------------------------------

    @property
    def subscriptions(self):
        """Current subscription set."""
        return self.delivery.subscriptions

    def subscribe(self, topic: Topic | str) -> None:
        """Register interest in ``topic`` and its subtopics."""
        self.delivery.subscribe(topic)

    def unsubscribe(self, topic: Topic | str) -> None:
        """Drop a subscription."""
        self.delivery.unsubscribe(topic)

    def publish(self, event: Event) -> None:
        """Buffer, deliver locally, and broadcast immediately."""
        host = self._require_attached()
        self._seen.add(event.event_id)
        self.buffer.store(event, host.now)
        self.delivery.deliver_once(event)
        self.forwarding.broadcast((event,))

    # -- network-facing API --------------------------------------------------------------

    def on_message(self, message: Message) -> None:
        """Dispatch a received frame (gossip only speaks event batches)."""
        if not self._running:
            return
        if isinstance(message, EventBatch):
            self._on_event_batch(message)

    def _on_event_batch(self, msg: EventBatch) -> None:
        now = self.host.now
        for event in msg.events:
            subscribed = self.delivery.matches(event.topic)
            if not subscribed:
                self.counters.parasites_dropped += 1
            if event.event_id in self._seen:
                if subscribed:
                    self.counters.duplicates_dropped += 1
                continue
            self._seen.add(event.event_id)
            if not event.is_valid(now):
                continue
            # Buffered irrespective of interests (routing-layer): the
            # bounded buffer, not a subscription filter, is what keeps
            # the memory bill small.
            self.buffer.store(event, now)
            if subscribed:
                self.delivery.deliver_once(event)

    # -- introspection ------------------------------------------------------------------

    @property
    def buffered_event_ids(self) -> Set[EventId]:
        """Ids currently held in the digest buffer."""
        return self.buffer.event_ids()

    def __repr__(self) -> str:   # pragma: no cover - debugging aid
        return (f"<GossipPubSub buffer={len(self.buffer)} "
                f"p={self.config.forward_probability}>")
