"""Broadcast-storm mitigation baselines (paper Section 6, schemes of
Ni et al. [10] / Tseng et al. [19]).

The paper positions its protocol against the classic broadcast-storm
literature: the *probabilistic* scheme (rebroadcast once with probability
``p``) and the *counter-based* scheme (wait a random assessment delay,
count how many copies were overheard, rebroadcast only if fewer than
``C``).  Both are one-shot — each process forwards an event at most once —
so unlike the Section 5.2 flooding baselines they do not re-flood every
second, and their reliability depends on the event racing across the
current connected component before mobility breaks it.

Both deliver to the application exactly like the other baselines (only
subscribed events, duplicates dropped) but forward *irrespective of
interests* — storm schemes are routing-layer, not pub/sub-layer.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Set

from repro.core.base import PubSubProtocol
from repro.core.events import Event, EventId
from repro.core.topics import Topic, subscription_matches_event
from repro.net.messages import EventBatch, Message


class _OneShotRebroadcast(PubSubProtocol):
    """Shared machinery: deliver-once, forward-at-most-once."""

    def __init__(self):
        super().__init__()
        self._subscriptions: Set[Topic] = set()
        self._seen: Set[EventId] = set()
        self._running = False

    # -- application-facing API ----------------------------------------------

    @property
    def subscriptions(self) -> FrozenSet[Topic]:
        return frozenset(self._subscriptions)

    def subscribe(self, topic: Topic | str) -> None:
        self._subscriptions.add(Topic(topic))

    def unsubscribe(self, topic: Topic | str) -> None:
        self._subscriptions.discard(Topic(topic))

    def publish(self, event: Event) -> None:
        if self.host is None:
            raise RuntimeError("protocol is not attached to a host")
        self._seen.add(event.event_id)
        self._deliver_if_subscribed(event)
        self._broadcast(event)

    # -- lifecycle ----------------------------------------------------------------

    def on_start(self) -> None:
        self._running = True

    def on_stop(self) -> None:
        self._running = False
        self._seen.clear()

    # -- reception -------------------------------------------------------------------

    def on_message(self, message: Message) -> None:
        if not self._running or not isinstance(message, EventBatch):
            return
        for event in message.events:
            subscribed = subscription_matches_event(self._subscriptions,
                                                    event.topic)
            if not subscribed:
                self.counters.parasites_dropped += 1
            if event.event_id in self._seen:
                if subscribed:
                    self.counters.duplicates_dropped += 1
                self._on_duplicate(event)
                continue
            self._seen.add(event.event_id)
            if not event.is_valid(self.host.now):
                continue
            if subscribed:
                self._deliver_if_subscribed(event)
            self._on_first_copy(event)

    def _deliver_if_subscribed(self, event: Event) -> None:
        if subscription_matches_event(self._subscriptions, event.topic):
            self.counters.delivered_count += 1
            self.host.deliver(event)

    def _broadcast(self, event: Event) -> None:
        if not event.is_valid(self.host.now):
            return
        self.host.send(EventBatch(sender=self.host.id, events=(event,)))
        self.counters.batches_sent += 1
        self.counters.events_forwarded += 1

    # -- scheme hooks --------------------------------------------------------------------

    def _on_first_copy(self, event: Event) -> None:
        raise NotImplementedError

    def _on_duplicate(self, event: Event) -> None:
        """Counter-based scheme listens to duplicates; others ignore."""


class GossipFlooding(_OneShotRebroadcast):
    """The probabilistic broadcast-storm scheme: forward once w.p. ``p``.

    A short random delay decorrelates the forwarders that received the
    same broadcast (without it every forwarder transmits in the same
    instant and the copies collide).
    """

    def __init__(self, probability: float = 0.6,
                 forward_delay_max: float = 0.1):
        super().__init__()
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0,1]: {probability}")
        if forward_delay_max < 0:
            raise ValueError("forward_delay_max must be >= 0")
        self.probability = float(probability)
        self.forward_delay_max = float(forward_delay_max)

    def _on_first_copy(self, event: Event) -> None:
        if self.host.rng.random() >= self.probability:
            return
        delay = self.host.rng.uniform(0.0, self.forward_delay_max)
        self.host.schedule(delay, self._broadcast, event)


class CounterFlooding(_OneShotRebroadcast):
    """The counter-based broadcast-storm scheme.

    On the first copy, arm a random assessment delay; count further
    copies overheard meanwhile; at expiry rebroadcast only if fewer than
    ``threshold`` copies were heard (the neighbourhood is then presumed
    not yet covered).
    """

    def __init__(self, threshold: int = 3,
                 assessment_delay_max: float = 0.5):
        super().__init__()
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1: {threshold}")
        if assessment_delay_max <= 0:
            raise ValueError("assessment_delay_max must be positive")
        self.threshold = int(threshold)
        self.assessment_delay_max = float(assessment_delay_max)
        self._copies: Dict[EventId, int] = {}

    def on_stop(self) -> None:
        super().on_stop()
        self._copies.clear()

    def _on_first_copy(self, event: Event) -> None:
        self._copies[event.event_id] = 1
        delay = self.host.rng.uniform(0.0, self.assessment_delay_max)
        self.host.schedule(delay, self._assess, event)

    def _on_duplicate(self, event: Event) -> None:
        if event.event_id in self._copies:
            self._copies[event.event_id] += 1

    def _assess(self, event: Event) -> None:
        copies = self._copies.pop(event.event_id, 0)
        if copies < self.threshold:
            self._broadcast(event)
