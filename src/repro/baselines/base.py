"""Shared machinery of the paper's three flooding comparators (Section 5.2).

All three variants rebroadcast events on a fixed period (the paper: "an
event is sent every second"), differing only in *which* events a process
stores and re-floods:

* **simple flooding** — everything, irrespective of interests;
* **interests-aware flooding** — only events the process itself subscribed
  to;
* **neighbors'-interests flooding** — only events the process subscribed to
  *and* at least one current neighbour is interested in (which requires
  heartbeats to learn neighbour interests).

The common behaviour is a composition of the :mod:`repro.core.stack`
layers: an unbounded :class:`~repro.core.stack.store.EventStore` (memory
thrift is precisely what the frugal protocol adds; the paper's comparison
charges the baselines their natural cost), the
:class:`~repro.core.stack.delivery.DeliveryLayer` for app hand-off and
duplicate/parasite accounting, and
:class:`~repro.core.stack.forwarding.PeriodicFloodForwarding` for the
1-second rebroadcast tick.  Subclasses only supply the
:meth:`_should_store` / :meth:`_should_flood` predicates.  Behaviour is
bit-identical to the pre-stack monolith
(:class:`repro.baselines.reference.ReferenceFloodingProtocol`), proven by
``tests/test_stack_equivalence.py``.
"""

from __future__ import annotations

import abc
from typing import FrozenSet, Set

from repro.core.base import PubSubProtocol
from repro.core.events import Event, EventId
from repro.core.stack.delivery import DeliveryLayer
from repro.core.stack.forwarding import PeriodicFloodForwarding
from repro.core.stack.store import EventStore
from repro.core.topics import Topic
from repro.net.messages import EventBatch, Heartbeat, Message


class FloodingProtocol(PubSubProtocol):
    """Base class for the three flooding baselines.

    Subclasses decide, via :meth:`_should_store` and
    :meth:`_should_flood`, what enters the local store and what goes out
    on each tick.
    """

    #: Rebroadcast period in seconds (the paper's "every one second").
    flood_period: float = 1.0

    def __init__(self, flood_period: float = 1.0,
                 flood_jitter: float = 0.05):
        super().__init__()
        if flood_period <= 0:
            raise ValueError(f"flood_period must be positive: {flood_period}")
        self.flood_period = float(flood_period)
        self.flood_jitter = float(flood_jitter)
        self.delivery = DeliveryLayer(self.counters)
        self.store = EventStore.unbounded()
        self.forwarding = PeriodicFloodForwarding(
            self.counters, self.flood_period, self.flood_jitter,
            self._should_flood)
        self._running = False

    # -- application-facing API ------------------------------------------------

    @property
    def subscriptions(self) -> FrozenSet[Topic]:
        """Current subscription set."""
        return self.delivery.subscriptions

    def subscribe(self, topic: Topic | str) -> None:
        """Register interest in ``topic`` and its subtopics."""
        self.delivery.subscribe(topic)

    def unsubscribe(self, topic: Topic | str) -> None:
        """Drop a subscription."""
        self.delivery.unsubscribe(topic)

    def publish(self, event: Event) -> None:
        """Store, deliver locally and flood immediately."""
        host = self._require_attached()
        self.store.store(event, host.now)
        self.delivery.deliver_once(event)
        self.forwarding.flood_now([event])

    # -- lifecycle -----------------------------------------------------------------

    def attach(self, host) -> None:
        """Bind to a host: wire the delivery and forwarding layers."""
        super().attach(host)
        self.delivery.attach(host)
        self.forwarding.attach(host, self.store)

    def detach(self) -> None:
        """Sever the host binding on every layer (stop first)."""
        super().detach()
        self.delivery.detach()
        self.forwarding.detach()

    def on_start(self) -> None:
        """Boot: arm the periodic flood task."""
        self._running = True
        self.forwarding.start()

    def on_stop(self) -> None:
        """Crash/shutdown: stop flooding, lose store and history."""
        self._running = False
        self.forwarding.stop()
        self.store.clear()
        self.delivery.reset()

    # -- network-facing API ------------------------------------------------------------

    def on_message(self, message: Message) -> None:
        """Dispatch a received frame by message kind."""
        if not self._running:
            return
        if isinstance(message, EventBatch):
            self._on_event_batch(message)
        elif isinstance(message, Heartbeat):
            self._on_heartbeat(message)

    def _on_heartbeat(self, hb: Heartbeat) -> None:
        """Only the neighbours'-interests variant listens to heartbeats."""

    def _on_event_batch(self, msg: EventBatch) -> None:
        now = self.host.now
        for event in msg.events:
            subscribed = self.delivery.matches(event.topic)
            if not subscribed:
                self.counters.parasites_dropped += 1
            if event.event_id in self.store:
                if subscribed:
                    self.counters.duplicates_dropped += 1
                continue
            if not event.is_valid(now):
                continue
            if self._should_store(event, subscribed):
                self.store.store(event, now)
            if subscribed:
                self.delivery.deliver_once(event)

    # -- variant hooks -----------------------------------------------------------------------

    @abc.abstractmethod
    def _should_store(self, event: Event, subscribed: bool) -> bool:
        """Keep this received event for future re-flooding?"""

    @abc.abstractmethod
    def _should_flood(self, event: Event) -> bool:
        """Include this stored event in the next flood tick?"""

    # -- introspection ------------------------------------------------------------------------

    @property
    def stored_event_ids(self) -> Set[EventId]:
        """Ids of every currently stored event."""
        return self.store.event_ids()

    def __repr__(self) -> str:   # pragma: no cover - debugging aid
        return (f"<{type(self).__name__} store={len(self.store)} "
                f"sent={self.counters.batches_sent}>")
