"""Shared machinery of the paper's three flooding comparators (Section 5.2).

All three variants rebroadcast events on a fixed period (the paper: "an
event is sent every second"), differing only in *which* events a process
stores and re-floods:

* **simple flooding** — everything, irrespective of interests;
* **interests-aware flooding** — only events the process itself subscribed
  to;
* **neighbors'-interests flooding** — only events the process subscribed to
  *and* at least one current neighbour is interested in (which requires
  heartbeats to learn neighbour interests).

Common behaviour lives here: the periodic flood task, local storage with
validity-based expiry, delivery to the application and duplicate dropping.
Storage is *unbounded by default* — memory thrift is precisely what the
frugal protocol adds; the paper's comparison charges the baselines their
natural cost.
"""

from __future__ import annotations

import abc
from typing import Dict, FrozenSet, List, Optional, Set

from repro.core.base import PubSubProtocol
from repro.core.events import Event, EventId
from repro.core.topics import Topic, subscription_matches_event
from repro.net.messages import EventBatch, Heartbeat, Message


class FloodingProtocol(PubSubProtocol):
    """Base class for the three flooding baselines.

    Subclasses decide, via :meth:`_should_store` and
    :meth:`_should_flood`, what enters the local store and what goes out
    on each tick.
    """

    #: Rebroadcast period in seconds (the paper's "every one second").
    flood_period: float = 1.0

    def __init__(self, flood_period: float = 1.0,
                 flood_jitter: float = 0.05):
        super().__init__()
        if flood_period <= 0:
            raise ValueError(f"flood_period must be positive: {flood_period}")
        self.flood_period = float(flood_period)
        self.flood_jitter = float(flood_jitter)
        self._subscriptions: Set[Topic] = set()
        self._store: Dict[EventId, Event] = {}
        self._delivered: Set[EventId] = set()
        self._flood_task = None
        self._running = False
        # Counters symmetrical with FrugalPubSub's, for reporting.
        self.batches_sent = 0
        self.events_forwarded = 0
        self.delivered_count = 0
        self.duplicates_dropped = 0
        self.parasites_dropped = 0

    # -- application-facing API ------------------------------------------------

    @property
    def subscriptions(self) -> FrozenSet[Topic]:
        return frozenset(self._subscriptions)

    def subscribe(self, topic: Topic | str) -> None:
        self._subscriptions.add(Topic(topic))

    def unsubscribe(self, topic: Topic | str) -> None:
        self._subscriptions.discard(Topic(topic))

    def publish(self, event: Event) -> None:
        if self.host is None:
            raise RuntimeError("protocol is not attached to a host")
        self._store[event.event_id] = event
        self._deliver_if_subscribed(event)
        self._flood_now([event])

    # -- lifecycle -----------------------------------------------------------------

    def on_start(self) -> None:
        self._running = True
        self._flood_task = self.host.periodic(
            self.flood_period, self._flood_tick, jitter=self.flood_jitter)

    def on_stop(self) -> None:
        self._running = False
        if self._flood_task is not None:
            self._flood_task.stop()
            self._flood_task = None
        self._store.clear()
        self._delivered.clear()

    # -- network-facing API ------------------------------------------------------------

    def on_message(self, message: Message) -> None:
        if not self._running:
            return
        if isinstance(message, EventBatch):
            self._on_event_batch(message)
        elif isinstance(message, Heartbeat):
            self._on_heartbeat(message)

    def _on_heartbeat(self, hb: Heartbeat) -> None:
        """Only the neighbours'-interests variant listens to heartbeats."""

    def _on_event_batch(self, msg: EventBatch) -> None:
        now = self.host.now
        for event in msg.events:
            subscribed = subscription_matches_event(self._subscriptions,
                                                    event.topic)
            if not subscribed:
                self.parasites_dropped += 1
            if event.event_id in self._store:
                if subscribed:
                    self.duplicates_dropped += 1
                continue
            if not event.is_valid(now):
                continue
            if self._should_store(event, subscribed):
                self._store[event.event_id] = event
            if subscribed:
                self._deliver_if_subscribed(event)

    # -- flooding ------------------------------------------------------------------------

    def _flood_tick(self) -> None:
        now = self.host.now
        # Expired events leave the store for good (they are of no use).
        expired = [eid for eid, e in self._store.items()
                   if not e.is_valid(now)]
        for eid in expired:
            del self._store[eid]
        outgoing = [e for e in self._store.values() if self._should_flood(e)]
        if outgoing:
            self._flood_now(outgoing)

    def _flood_now(self, events: List[Event]) -> None:
        self.host.send(EventBatch(sender=self.host.id,
                                  events=tuple(events)))
        self.batches_sent += 1
        self.events_forwarded += len(events)

    def _deliver_if_subscribed(self, event: Event) -> None:
        if event.event_id in self._delivered:
            return
        if subscription_matches_event(self._subscriptions, event.topic):
            self._delivered.add(event.event_id)
            self.delivered_count += 1
            self.host.deliver(event)

    # -- variant hooks -----------------------------------------------------------------------

    @abc.abstractmethod
    def _should_store(self, event: Event, subscribed: bool) -> bool:
        """Keep this received event for future re-flooding?"""

    @abc.abstractmethod
    def _should_flood(self, event: Event) -> bool:
        """Include this stored event in the next flood tick?"""

    # -- introspection ------------------------------------------------------------------------

    @property
    def stored_event_ids(self) -> Set[EventId]:
        return set(self._store)

    def __repr__(self) -> str:   # pragma: no cover - debugging aid
        return (f"<{type(self).__name__} store={len(self._store)} "
                f"sent={self.batches_sent}>")
