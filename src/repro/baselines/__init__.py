"""The paper's three flooding comparators (Section 5.2, "Frugality").

The paper quantifies frugality by comparing its protocol against three
flooding variants on identical scenarios: simple flooding (everything,
always), interests-aware flooding (only events the process wants) and
neighbors'-interests flooding (only events the process wants *and* some
neighbour wants).  All three rebroadcast on a 1-second period.
"""

from repro.baselines.base import FloodingProtocol
from repro.baselines.simple_flooding import SimpleFlooding
from repro.baselines.interest_flooding import InterestAwareFlooding
from repro.baselines.neighbor_flooding import NeighborInterestFlooding
from repro.baselines.storm import CounterFlooding, GossipFlooding

__all__ = [
    "FloodingProtocol",
    "SimpleFlooding",
    "InterestAwareFlooding",
    "NeighborInterestFlooding",
    "GossipFlooding",
    "CounterFlooding",
]
