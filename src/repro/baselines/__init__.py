"""The dissemination strategies the frugal protocol is compared against.

The paper quantifies frugality against three flooding variants on
identical scenarios (Section 5.2): simple flooding (everything, always),
interests-aware flooding (only events the process wants) and
neighbors'-interests flooding (only events the process wants *and* some
neighbour wants), all rebroadcasting on a 1-second period.  Section 6
adds the broadcast-storm schemes (probabilistic and counter-based
one-shot forwarding), and the stack refactor contributed an
lpbcast-style gossip baseline (periodic probabilistic rounds over a
bounded digest buffer).

Importing this package registers every baseline in the protocol registry
(:mod:`repro.core.registry`), alongside the frozen pre-stack reference
implementations (hidden entries, used by the paired-equality suite).
"""

from repro.baselines.base import FloodingProtocol
from repro.baselines.simple_flooding import SimpleFlooding
from repro.baselines.interest_flooding import InterestAwareFlooding
from repro.baselines.neighbor_flooding import NeighborInterestFlooding
from repro.baselines.storm import CounterFlooding, GossipFlooding
from repro.baselines.gossip import GossipConfig, GossipPubSub
from repro.baselines import reference
from repro.core import registry

__all__ = [
    "FloodingProtocol",
    "SimpleFlooding",
    "InterestAwareFlooding",
    "NeighborInterestFlooding",
    "GossipFlooding",
    "CounterFlooding",
    "GossipConfig",
    "GossipPubSub",
]


def _register_builtins() -> None:
    """Install the baseline strategies into the default registry.

    Factories receive the full :class:`~repro.harness.scenario
    .ScenarioConfig` (duck-typed) and read only the fields they need, so
    paired sweeps can vary one protocol's knobs without perturbing the
    others.  Idempotent: re-imports re-register identical entries.
    """
    registry.register(
        "simple-flooding",
        lambda c: SimpleFlooding(flood_period=c.flood_period),
        description="flood everything every second, interests ignored",
        replace=True)
    registry.register(
        "interest-flooding",
        lambda c: InterestAwareFlooding(flood_period=c.flood_period),
        description="flood only events the process subscribed to",
        replace=True)
    registry.register(
        "neighbor-flooding",
        lambda c: NeighborInterestFlooding(flood_period=c.flood_period),
        description="flood subscribed events while an interested "
                    "neighbour exists",
        replace=True)
    registry.register(
        "gossip-flooding",
        lambda c: GossipFlooding(probability=c.gossip_probability),
        description="one-shot probabilistic broadcast-storm scheme",
        replace=True)
    registry.register(
        "counter-flooding",
        lambda c: CounterFlooding(threshold=c.counter_threshold),
        description="one-shot counter-based broadcast-storm scheme",
        replace=True)
    registry.register(
        "gossip",
        lambda c: GossipPubSub(c.gossip),
        description="lpbcast-style periodic gossip over a bounded "
                    "digest buffer",
        replace=True)
    # Frozen pre-stack monoliths: valid protocol names (the paired
    # bit-identity suite runs them through the full harness, including
    # parallel workers) but hidden from protocol sweeps.
    registry.register(
        "legacy-frugal",
        lambda c: reference.ReferenceFrugalPubSub(c.frugal),
        description="pre-stack frugal monolith (verification reference)",
        hidden=True, replace=True)
    registry.register(
        "legacy-simple-flooding",
        lambda c: reference.ReferenceSimpleFlooding(
            flood_period=c.flood_period),
        description="pre-stack simple flooder (verification reference)",
        hidden=True, replace=True)
    registry.register(
        "legacy-interest-flooding",
        lambda c: reference.ReferenceInterestAwareFlooding(
            flood_period=c.flood_period),
        description="pre-stack interest flooder (verification reference)",
        hidden=True, replace=True)
    registry.register(
        "legacy-neighbor-flooding",
        lambda c: reference.ReferenceNeighborInterestFlooding(
            flood_period=c.flood_period),
        description="pre-stack neighbour flooder (verification reference)",
        hidden=True, replace=True)


_register_builtins()
