"""Baseline (2): interests-aware flooding.

"The processes, at every one second interval, propagate only the events
they are interested in" (Section 5.2).  A process stores and re-floods an
event only when it subscribed to the event's topic; parasite events are
dropped on reception (but were still transmitted at them — the medium-level
metrics charge that cost).
"""

from __future__ import annotations

from repro.baselines.base import FloodingProtocol
from repro.core.events import Event


class InterestAwareFlooding(FloodingProtocol):
    """Flood only events the process itself subscribed to."""

    def _should_store(self, event: Event, subscribed: bool) -> bool:
        return subscribed

    def _should_flood(self, event: Event) -> bool:
        return True   # everything stored passed the interest filter
