"""Reliability: the probability of event reception (Figs. 11-16).

The paper's reliability of an event is the fraction of processes subscribed
to the event's topic that receive it before its validity period ends
(e.g. "an event with a validity period of 180 seconds is received by 95 %
of the 120 devices", Section 1).  The publisher counts as having received
its own publication — it delivers it locally at publish time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.events import Event, EventId
from repro.metrics.collector import MetricsCollector


@dataclass(frozen=True)
class ReliabilityReport:
    """Delivery outcome of one event across its subscriber population."""

    event_id: EventId
    subscribers: int
    delivered_in_time: int
    delivered_late: int

    @property
    def reliability(self) -> float:
        """Fraction of subscribers that received the event in time."""
        if self.subscribers == 0:
            return 0.0
        return self.delivered_in_time / self.subscribers

    def __str__(self) -> str:
        return (f"{self.event_id}: {self.delivered_in_time}/"
                f"{self.subscribers} = {self.reliability:.1%}")


def event_reliability(collector: MetricsCollector, event: Event,
                      subscriber_ids: Iterable[int]) -> ReliabilityReport:
    """Compute one event's :class:`ReliabilityReport`.

    ``subscriber_ids`` is the population entitled to the event (determined
    by the scenario, which knows who subscribed to what); deliveries after
    the validity expiry are tallied separately as late.
    """
    subscriber_ids = list(subscriber_ids)
    times = collector.deliveries_of(event.event_id)
    in_time = 0
    late = 0
    for node_id in subscriber_ids:
        t = times.get(node_id)
        if t is None:
            continue
        if t <= event.expires_at:
            in_time += 1
        else:
            late += 1
    return ReliabilityReport(event_id=event.event_id,
                             subscribers=len(subscriber_ids),
                             delivered_in_time=in_time,
                             delivered_late=late)


def mean_reliability(reports: Sequence[ReliabilityReport]) -> float:
    """Average reliability over several events (Fig. 17-20 scenarios
    publish up to 20) or several publisher rotations (Figs. 13-16)."""
    if not reports:
        return 0.0
    return sum(r.reliability for r in reports) / len(reports)


def churn_aware_reliability(collector: MetricsCollector,
                            events: Sequence[Event],
                            subscriber_ids: Iterable[int],
                            up_during) -> float:
    """Mean reliability with churn-aware denominators.

    ``up_during(node_id, start, end) -> bool`` reports whether a node was
    available at any point of ``[start, end]`` (e.g.
    ``FaultTimeline.was_up_during``).  A subscriber that was down for an
    event's *entire* validity window could never have received it, so it
    is excluded from that event's denominator — the plain reliability
    metric would otherwise report protocol failures for deliveries that
    were physically impossible.
    """
    subscriber_ids = list(subscriber_ids)
    reports = []
    for event in events:
        eligible = [i for i in subscriber_ids
                    if up_during(i, event.published_at, event.expires_at)]
        reports.append(event_reliability(collector, event, eligible))
    return mean_reliability(reports)


def recovery_latencies(collector: MetricsCollector,
                       events: Sequence[Event],
                       subscriber_ids: Iterable[int],
                       recoveries: Sequence[tuple]) -> List[float]:
    """Catch-up delays after recoveries, one sample per caught-up event.

    ``recoveries`` is a sequence of ``(time, node_id)`` up-transitions
    (e.g. ``FaultTimeline.recoveries``).  A ``(node, event)`` pair
    contributes at most **one** sample: the event must have been
    published before some recovery of that subscriber, still be valid
    then, and its *first* delivery to the node must land after that
    recovery (and before expiry).  The sample is measured from the
    *latest* qualifying recovery — the one that actually performed the
    catch-up — so a flapping node's earlier recoveries neither
    duplicate the sample nor contaminate it with interleaved downtime.
    This is the store-and-forward catch-up latency the paper's validity
    periods exist to bound.
    """
    subscribers = set(subscriber_ids)
    recovery_times: dict = {}
    for recovered_at, node_id in recoveries:
        if node_id in subscribers:
            recovery_times.setdefault(node_id, []).append(recovered_at)
    out: List[float] = []
    for event in events:
        deliveries = collector.deliveries_of(event.event_id)
        for node_id, times in recovery_times.items():
            delivered_at = deliveries.get(node_id)
            if delivered_at is None or delivered_at > event.expires_at:
                continue
            qualifying = [t for t in times
                          if event.published_at <= t <= event.expires_at
                          and t < delivered_at]
            if qualifying:
                out.append(delivered_at - max(qualifying))
    return out


def reliability_spread(reports: Sequence[ReliabilityReport]) -> float:
    """Max-min reliability across reports — the paper's Fig. 15 metric
    ("difference of reliability between the publishers")."""
    if not reports:
        return 0.0
    values = [r.reliability for r in reports]
    return max(values) - min(values)
