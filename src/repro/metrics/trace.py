"""Protocol tracing: a typed, queryable log of everything on the air.

Where :class:`~repro.metrics.collector.MetricsCollector` keeps aggregate
counters, the tracer records *individual* occurrences — every
transmission, reception, drop and delivery — so examples and debugging
sessions can reconstruct exactly how an event travelled through the
network (who seeded whom, where the duplicates came from, which frames
collided).

Tracing every frame costs memory proportional to traffic, so the tracer
is opt-in and never attached by the scenario harness; see
``dissemination_timeline`` for the main analysis entry point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional

from repro.core.events import Event, EventId
from repro.net.medium import WirelessMedium
from repro.net.messages import EventBatch, Message
from repro.net.node import Node


@dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence.

    ``kind`` is one of ``tx``, ``rx``, ``drop`` or ``deliver``;
    ``detail`` carries the message kind for tx/rx, the drop reason for
    drops and the event id for deliveries.
    """

    time: float
    kind: str
    node: int
    detail: str
    size_bytes: int = 0
    event_ids: tuple = ()

    def __str__(self) -> str:
        extra = f" {self.size_bytes}B" if self.size_bytes else ""
        ids = f" [{', '.join(map(str, self.event_ids))}]" \
            if self.event_ids else ""
        return (f"t={self.time:9.4f}  {self.kind:7s} node={self.node:<4d}"
                f" {self.detail}{extra}{ids}")


class ProtocolTracer:
    """Record a full air-interface trace of a simulation.

    Chains onto the medium's observability hooks (preserving any
    already-installed callbacks such as a metrics collector's) and each
    tracked node's delivery callback.
    """

    def __init__(self, medium: WirelessMedium,
                 max_records: Optional[int] = None):
        self.medium = medium
        self.max_records = max_records
        self.records: List[TraceRecord] = []
        self._prev_transmit = medium.on_transmit
        self._prev_receive = medium.on_receive
        self._prev_drop = medium.on_drop
        medium.on_transmit = self._on_transmit
        medium.on_receive = self._on_receive
        medium.on_drop = self._on_drop
        self._prev_deliver: Dict[int, Optional[Callable]] = {}

    def track_node(self, node: Node) -> None:
        self._prev_deliver[node.id] = node.on_deliver
        node.on_deliver = self._on_deliver

    # -- hook chain -----------------------------------------------------------

    def _append(self, record: TraceRecord) -> None:
        if self.max_records is None or len(self.records) < self.max_records:
            self.records.append(record)

    @staticmethod
    def _ids_of(message: Message) -> tuple:
        if isinstance(message, EventBatch):
            return tuple(e.event_id for e in message.events)
        return ()

    def _on_transmit(self, sender: int, message: Message,
                     size: int) -> None:
        self._append(TraceRecord(self.medium.sim.now, "tx", sender,
                                 message.kind, size,
                                 self._ids_of(message)))
        if self._prev_transmit is not None:
            self._prev_transmit(sender, message, size)

    def _on_receive(self, receiver: int, message: Message) -> None:
        self._append(TraceRecord(self.medium.sim.now, "rx", receiver,
                                 message.kind,
                                 event_ids=self._ids_of(message)))
        if self._prev_receive is not None:
            self._prev_receive(receiver, message)

    def _on_drop(self, receiver: int, message: Message,
                 reason: str) -> None:
        self._append(TraceRecord(self.medium.sim.now, "drop", receiver,
                                 f"{message.kind}:{reason}",
                                 event_ids=self._ids_of(message)))
        if self._prev_drop is not None:
            self._prev_drop(receiver, message, reason)

    def _on_deliver(self, node: Node, event: Event) -> None:
        self._append(TraceRecord(node.sim.now, "deliver", node.id,
                                 str(event.topic),
                                 event_ids=(event.event_id,)))
        prev = self._prev_deliver.get(node.id)
        if prev is not None:
            prev(node, event)

    # -- queries ---------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def of_kind(self, kind: str) -> List[TraceRecord]:
        return [r for r in self.records if r.kind == kind]

    def involving(self, event_id: EventId) -> List[TraceRecord]:
        return [r for r in self.records if event_id in r.event_ids]

    def dissemination_timeline(self, event_id: EventId) -> str:
        """Human-readable story of one event's journey."""
        lines = [str(r) for r in self.involving(event_id)]
        if not lines:
            return f"(no trace records involve {event_id})"
        return "\n".join(lines)

    def collisions(self) -> List[TraceRecord]:
        return [r for r in self.records
                if r.kind == "drop" and r.detail.endswith(":collision")]
