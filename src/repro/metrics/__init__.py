"""Measurement layer: the paper's four frugality metrics plus reliability.

Everything is measured at the *medium* level (bytes on air, receptions)
and the *application* level (deliveries), never inside a protocol — so the
frugal protocol and the flooding baselines are scored by the same ruler.
"""

from repro.metrics.collector import MetricsCollector, NodeStats
from repro.metrics.reliability import (ReliabilityReport, event_reliability,
                                       mean_reliability, reliability_spread)
from repro.metrics.trace import ProtocolTracer, TraceRecord

__all__ = [
    "MetricsCollector",
    "NodeStats",
    "ReliabilityReport",
    "event_reliability",
    "mean_reliability",
    "reliability_spread",
    "ProtocolTracer",
    "TraceRecord",
]
