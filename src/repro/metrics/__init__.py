"""Measurement layer: the paper's four frugality metrics plus reliability.

Everything is measured at the *medium* level (bytes on air, receptions)
and the *application* level (deliveries), never inside a protocol — so the
frugal protocol and the flooding baselines are scored by the same ruler.
"""

from repro.metrics.collector import MetricsCollector, NodeStats
from repro.metrics.reliability import (ReliabilityReport,
                                       churn_aware_reliability,
                                       event_reliability, mean_reliability,
                                       recovery_latencies,
                                       reliability_spread)
from repro.metrics.trace import ProtocolTracer, TraceRecord

__all__ = [
    "MetricsCollector",
    "NodeStats",
    "ReliabilityReport",
    "churn_aware_reliability",
    "event_reliability",
    "mean_reliability",
    "recovery_latencies",
    "reliability_spread",
    "ProtocolTracer",
    "TraceRecord",
]
