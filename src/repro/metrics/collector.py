"""Medium-level measurement of the paper's four frugality metrics.

The collector hooks the wireless medium's observability callbacks and the
nodes' delivery callbacks; protocols are never instrumented directly, so
the same collector measures the frugal protocol and the flooding baselines
on exactly equal footing (Section 5.2):

* **bandwidth per process** — bytes transmitted (heartbeats + event-id
  lists + event payloads), Fig. 17;
* **events sent per process** — event payload transmissions, Fig. 18;
* **duplicates received per process** — receptions, by a subscribed
  process, of an event payload it had already received, Fig. 19;
* **parasite events received per process** — receptions of an event
  payload whose topic the receiver did not subscribe to, Fig. 20.

Delivery timestamps (for reliability, Figs. 11-16) are recorded via each
node's ``on_deliver`` hook.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

from repro.core.base import ProtocolCounters
from repro.core.events import Event, EventId
from repro.core.topics import subscription_matches_event
from repro.net.medium import WirelessMedium
from repro.net.messages import EventBatch, EventIdList, Heartbeat, Message
from repro.net.node import Node


@dataclass
class NodeStats:
    """Per-node tallies, all monotonically increasing."""

    bytes_sent: int = 0
    bytes_by_kind: Dict[str, int] = field(
        default_factory=lambda: defaultdict(int))
    frames_sent: int = 0
    events_sent: int = 0
    duplicates_received: int = 0
    parasites_received: int = 0
    useful_receptions: int = 0


class MetricsCollector:
    """Attach to a medium (and its nodes) and tally the paper's metrics."""

    def __init__(self, medium: WirelessMedium):
        self.medium = medium
        self.stats: Dict[int, NodeStats] = defaultdict(NodeStats)
        self.delivery_times: Dict[EventId, Dict[int, float]] = \
            defaultdict(dict)
        self.published: Dict[EventId, Event] = {}
        self._seen_receptions: Set[Tuple[int, EventId]] = set()
        self._frozen = False
        #: Snapshot of the summed per-protocol stack counters, filled by
        #: :meth:`capture_protocol_totals` at run end (picklable, so it
        #: survives the worker->parent transfer and the result cache).
        self.protocol_totals: Optional[ProtocolCounters] = None
        self._protocol_baseline: Optional[ProtocolCounters] = None
        medium.on_transmit = self._on_transmit
        medium.on_receive = self._on_receive

    # -- wiring ---------------------------------------------------------------

    def track_node(self, node: Node) -> None:
        """Subscribe to a node's delivery callback (idempotent)."""
        node.on_deliver = self._on_deliver
        self.stats[node.id]   # materialise the row even if it stays zero

    def record_publication(self, event: Event) -> None:
        """Register an event of interest for reliability accounting."""
        self.published[event.event_id] = event

    def mark_protocol_baseline(self, nodes) -> None:
        """Snapshot the protocol counters at measurement-window start.

        Protocol counters are lifetime-monotonic; recording them when
        warm-up ends lets :meth:`capture_protocol_totals` report the
        measurement window only — the same window every other metric of
        this collector uses (warm-up traffic is frozen out).
        """
        self._protocol_baseline = ProtocolCounters.total(
            node.protocol.counters for node in nodes)

    def capture_protocol_totals(self, nodes) -> ProtocolCounters:
        """Snapshot the sum of the nodes' unified protocol counters.

        Protocol counters are the *protocol-level* view (what each stack
        believes it sent/delivered/dropped), complementary to this
        collector's medium-level tallies; the snapshot is a plain
        dataclass, so it stays readable after the collector detaches
        from the world on pickling.  If :meth:`mark_protocol_baseline`
        ran (as :func:`~repro.harness.scenario.run_scenario` does at
        warm-up end), the totals cover the measurement window only.
        """
        totals = ProtocolCounters.total(
            node.protocol.counters for node in nodes)
        if self._protocol_baseline is not None:
            totals = totals.minus(self._protocol_baseline)
        self.protocol_totals = totals
        return self.protocol_totals

    def freeze(self) -> None:
        """Stop counting (used to exclude post-measurement-window traffic)."""
        self._frozen = True

    def resume(self) -> None:
        self._frozen = False

    # -- medium hooks -----------------------------------------------------------

    def _on_transmit(self, sender_id: int, message: Message,
                     size_bytes: int) -> None:
        if self._frozen:
            return
        row = self.stats[sender_id]
        row.bytes_sent += size_bytes
        row.bytes_by_kind[message.kind] += size_bytes
        row.frames_sent += 1
        if isinstance(message, EventBatch):
            row.events_sent += len(message.events)

    def _on_receive(self, receiver_id: int, message: Message) -> None:
        if self._frozen or not isinstance(message, EventBatch):
            return
        node = self.medium.nodes.get(receiver_id)
        if node is None:
            return
        subscriptions = node.protocol.subscriptions
        row = self.stats[receiver_id]
        for event in message.events:
            if not subscription_matches_event(subscriptions, event.topic):
                row.parasites_received += 1
                continue
            key = (receiver_id, event.event_id)
            if key in self._seen_receptions:
                row.duplicates_received += 1
            else:
                self._seen_receptions.add(key)
                row.useful_receptions += 1

    # -- pickling (parallel execution / result cache) ---------------------------

    def __getstate__(self) -> dict:
        """Pickle the measurements, not the world.

        The collector holds the only path from a
        :class:`~repro.harness.scenario.ScenarioResult` back into the live
        simulation graph (medium -> nodes -> simulator -> pending timers),
        megabytes of state that no post-run consumer needs.  Dropping the
        medium here is what makes results cheap to ship from worker
        processes and to store in the on-disk result cache.  The unpickled
        collector is *detached*: every aggregate/report method works, but
        it can no longer observe a running medium.
        """
        state = dict(self.__dict__)
        state["medium"] = None
        # defaultdicts pickle fine, but plain containers keep the payload
        # schema independent of construction-time factories.
        state["stats"] = dict(self.stats)
        state["delivery_times"] = {k: dict(v) for k, v
                                   in self.delivery_times.items()}
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        stats = defaultdict(NodeStats)
        stats.update(state["stats"])
        self.stats = stats
        times: Dict[EventId, Dict[int, float]] = defaultdict(dict)
        times.update(state["delivery_times"])
        self.delivery_times = times

    def _on_deliver(self, node: Node, event: Event) -> None:
        if self._frozen:
            return   # outside the measurement window (warm-up / post-run)
        times = self.delivery_times[event.event_id]
        times.setdefault(node.id, node.sim.now)

    # -- aggregates ----------------------------------------------------------------

    @property
    def node_count(self) -> int:
        return len(self.stats)

    def total_bytes(self) -> int:
        return sum(s.bytes_sent for s in self.stats.values())

    def bytes_by_kind(self) -> Dict[str, int]:
        out: Dict[str, int] = defaultdict(int)
        for s in self.stats.values():
            for kind, n in s.bytes_by_kind.items():
                out[kind] += n
        return dict(out)

    def _per_process(self, total: float) -> float:
        n = self.node_count
        return total / n if n else 0.0

    def bandwidth_per_process_bytes(self) -> float:
        """Fig. 17's measurement (we report bytes; the paper plots kb)."""
        return self._per_process(self.total_bytes())

    def events_sent_per_process(self) -> float:
        """Fig. 18's measurement."""
        return self._per_process(
            sum(s.events_sent for s in self.stats.values()))

    def duplicates_per_process(self) -> float:
        """Fig. 19's measurement."""
        return self._per_process(
            sum(s.duplicates_received for s in self.stats.values()))

    def parasites_per_process(self) -> float:
        """Fig. 20's measurement."""
        return self._per_process(
            sum(s.parasites_received for s in self.stats.values()))

    def deliveries_of(self, event_id: EventId) -> Dict[int, float]:
        """Node id -> delivery time for one event."""
        return dict(self.delivery_times.get(event_id, {}))

    def __repr__(self) -> str:   # pragma: no cover - debugging aid
        return (f"<MetricsCollector nodes={self.node_count} "
                f"bytes={self.total_bytes()}>")
