"""Events: the unit of dissemination (paper Section 2).

Every event has a globally unique identifier, a topic, and a *validity
period* after which the information it carries is of no use and it may be
garbage collected anywhere in the system.  The protocol additionally
tracks, per stored copy, a *forward counter* — the number of times this
process transmitted the event — used by the Equation 1 eviction policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.core.topics import Topic


@dataclass(frozen=True, slots=True, order=True)
class EventId:
    """Globally unique event identifier ``(publisher id, sequence no)``.

    The paper models ids as opaque 128-bit values; structuring them as
    (publisher, seq) keeps generation coordination-free while preserving
    uniqueness.  The wire-size model still charges the paper's 128 bits.
    """

    publisher: int
    seq: int

    def __str__(self) -> str:
        return f"{self.publisher}:{self.seq}"


@dataclass(frozen=True, slots=True)
class Event:
    """An immutable published event.

    ``validity`` is the *period* in seconds (what the paper calls
    ``val(e)``); ``published_at`` anchors it in simulation time, so the
    absolute expiry instant is :attr:`expires_at`.
    """

    event_id: EventId
    topic: Topic
    validity: float
    published_at: float
    payload_bytes: int = 400           # the paper's default event size
    payload: Any = None                # application data (opaque)

    def __post_init__(self) -> None:
        if self.validity <= 0:
            raise ValueError(f"validity must be positive: {self.validity}")
        if self.payload_bytes < 0:
            raise ValueError("payload_bytes must be >= 0")

    @property
    def expires_at(self) -> float:
        return self.published_at + self.validity

    def is_valid(self, now: float) -> bool:
        """Still within its validity period at time ``now``?"""
        return now < self.expires_at

    def remaining_validity(self, now: float) -> float:
        return max(0.0, self.expires_at - now)

    def __str__(self) -> str:
        return (f"e[{self.event_id}]@{self.topic} "
                f"val={self.validity:g}s")


@dataclass(slots=True)
class StoredEvent:
    """A process-local copy of an event plus its forward counter.

    This is the event-table row of the paper's Fig. 3 (id, validity,
    counter, topic, data).
    """

    event: Event
    stored_at: float
    forward_count: int = 0
    delivered: bool = False

    @property
    def event_id(self) -> EventId:
        return self.event.event_id

    @property
    def topic(self) -> Topic:
        return self.event.topic

    def is_valid(self, now: float) -> bool:
        return self.event.is_valid(now)


class EventFactory:
    """Mint events with process-locally increasing sequence numbers."""

    def __init__(self, publisher_id: int):
        self.publisher_id = publisher_id
        self._next_seq = 0

    def create(self, topic: Topic | str, validity: float, now: float,
               payload_bytes: int = 400,
               payload: Optional[Any] = None) -> Event:
        event = Event(event_id=EventId(self.publisher_id, self._next_seq),
                      topic=Topic(topic), validity=validity,
                      published_at=now, payload_bytes=payload_bytes,
                      payload=payload)
        self._next_seq += 1
        return event
