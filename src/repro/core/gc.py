"""Event-table eviction policies (paper Section 4.4, Equation 1).

When the bounded event table is full and a new event must be stored, the
paper first collects any event whose validity period has expired; when all
stored events are still valid it applies Equation 1 and evicts the event
minimising::

    gc(e) = val(e) / (fwd(e) + val(e))

where ``val(e)`` is the validity *period* (seconds) and ``fwd(e)`` the
number of times this process forwarded the event.  The score decreases with
forwards and increases with validity, so long-lived events that have
already been propagated several times are collected before short-lived
events that were never forwarded — exactly the worked example in the paper
(a 2-minute event forwarded once outlives a 5-minute event forwarded five
times).

Three alternative policies are provided for the `abl-gc` ablation bench:

* :class:`RemainingValidityPolicy` — Equation 1 computed on the *remaining*
  validity instead of the full period (a plausible alternative reading of
  the paper's ``val``),
* :class:`FifoPolicy` — evict the oldest-stored event,
* :class:`RandomPolicy` — evict a uniformly random event.
"""

from __future__ import annotations

import abc
from typing import Iterable, List, Optional

from repro.core.events import StoredEvent


def gc_score(validity: float, forward_count: int) -> float:
    """Equation 1: ``val / (fwd + val)``; smaller means evict sooner."""
    if validity <= 0:
        raise ValueError(f"validity must be positive: {validity}")
    if forward_count < 0:
        raise ValueError(f"forward_count must be >= 0: {forward_count}")
    return validity / (forward_count + validity)


class EvictionPolicy(abc.ABC):
    """Strategy object choosing the victim of a full event table.

    Policies never pick the victim among expired events themselves — the
    table always tries expired events first (the cheap, paper-prescribed
    fast path) and only consults the policy when everything is still valid.
    """

    name: str = "abstract"

    @abc.abstractmethod
    def select_victim(self, stored: Iterable[StoredEvent], now: float,
                      rng=None) -> Optional[StoredEvent]:
        """Return the entry to evict, or ``None`` when ``stored`` is empty."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


class ValidityForwardPolicy(EvictionPolicy):
    """The paper's Equation 1 applied to the full validity period."""

    name = "validity-forward"

    def select_victim(self, stored: Iterable[StoredEvent], now: float,
                      rng=None) -> Optional[StoredEvent]:
        victim: Optional[StoredEvent] = None
        victim_score = float("inf")
        for entry in stored:
            score = gc_score(entry.event.validity, entry.forward_count)
            if score <= victim_score:
                victim = entry
                victim_score = score
        return victim


class RemainingValidityPolicy(EvictionPolicy):
    """Equation 1 on the validity still *remaining* at eviction time.

    Differs from the paper's policy in that a nearly expired event becomes
    a preferred victim even if it was never forwarded.
    """

    name = "remaining-validity"

    def select_victim(self, stored: Iterable[StoredEvent], now: float,
                      rng=None) -> Optional[StoredEvent]:
        victim: Optional[StoredEvent] = None
        victim_score = float("inf")
        for entry in stored:
            remaining = max(entry.event.remaining_validity(now), 1e-9)
            score = gc_score(remaining, entry.forward_count)
            if score <= victim_score:
                victim = entry
                victim_score = score
        return victim


class FifoPolicy(EvictionPolicy):
    """Evict the entry stored the longest ago."""

    name = "fifo"

    def select_victim(self, stored: Iterable[StoredEvent], now: float,
                      rng=None) -> Optional[StoredEvent]:
        victim: Optional[StoredEvent] = None
        for entry in stored:
            if victim is None or entry.stored_at < victim.stored_at:
                victim = entry
        return victim


class RandomPolicy(EvictionPolicy):
    """Evict a uniformly random entry (requires an rng)."""

    name = "random"

    def select_victim(self, stored: Iterable[StoredEvent], now: float,
                      rng=None) -> Optional[StoredEvent]:
        entries: List[StoredEvent] = list(stored)
        if not entries:
            return None
        if rng is None:
            raise ValueError("RandomPolicy requires an rng")
        return entries[rng.randrange(len(entries))]


_POLICIES = {
    ValidityForwardPolicy.name: ValidityForwardPolicy,
    RemainingValidityPolicy.name: RemainingValidityPolicy,
    FifoPolicy.name: FifoPolicy,
    RandomPolicy.name: RandomPolicy,
}


def make_policy(name: str) -> EvictionPolicy:
    """Instantiate an eviction policy by its configuration name."""
    try:
        return _POLICIES[name]()
    except KeyError:
        raise ValueError(f"unknown eviction policy {name!r}; "
                         f"known: {sorted(_POLICIES)}") from None
