"""String-keyed protocol registry: one place to plug in a dissemination
strategy.

The experiment harness historically dispatched on a hard-coded
``if config.protocol == ...`` chain; every new protocol meant editing the
harness.  The registry inverts that: a protocol module registers a
factory under a name, and :class:`~repro.harness.scenario.ScenarioConfig`
validation, ``make_protocol``, the CLI ``--protocol`` surface and the
``protocol-matrix`` experiment all consult the same table.

A factory receives the *full* scenario config (duck-typed — the registry
lives below the harness and never imports it) and returns a fresh
:class:`~repro.core.base.PubSubProtocol`.  Entries flagged ``hidden``
are valid in configs but excluded from "every protocol" sweeps — the
frozen pre-stack reference implementations
(:mod:`repro.baselines.reference`) use this so the paired-equality suite
can run them through the full harness without them showing up in
comparison tables.

Worker processes of the parallel engine resolve names against *their
own* import of the registry, so custom protocols must be registered at
import time of a module the harness pulls in (see
``examples/custom_protocol.py`` for the single-process pattern).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List

from repro.core.base import PubSubProtocol

#: A protocol factory: receives the full scenario config (duck-typed),
#: returns a fresh protocol instance.
ProtocolFactory = Callable[[object], PubSubProtocol]


@dataclass(frozen=True)
class ProtocolEntry:
    """One registered dissemination strategy."""

    name: str
    factory: ProtocolFactory
    description: str = ""
    hidden: bool = False

    def create(self, config) -> PubSubProtocol:
        """Instantiate the protocol for one scenario config."""
        return self.factory(config)


class ProtocolRegistry:
    """A mutable name -> :class:`ProtocolEntry` table."""

    def __init__(self) -> None:
        self._entries: Dict[str, ProtocolEntry] = {}

    # -- mutation ---------------------------------------------------------------

    def register(self, name: str, factory: ProtocolFactory, *,
                 description: str = "", hidden: bool = False,
                 replace: bool = False) -> ProtocolEntry:
        """Add a protocol under ``name``; duplicate names raise unless
        ``replace`` is set (re-imports of the same module are
        idempotent either way)."""
        if not name:
            raise ValueError("protocol name must be non-empty")
        if name in self._entries and not replace:
            raise ValueError(f"protocol {name!r} is already registered; "
                             f"pass replace=True to override")
        entry = ProtocolEntry(name=name, factory=factory,
                              description=description, hidden=hidden)
        self._entries[name] = entry
        return entry

    def unregister(self, name: str) -> None:
        """Remove an entry (unknown names raise)."""
        if name not in self._entries:
            raise ValueError(f"protocol {name!r} is not registered")
        del self._entries[name]

    # -- lookup -----------------------------------------------------------------

    def get(self, name: str) -> ProtocolEntry:
        """The entry for ``name``, or a ValueError naming the known set."""
        try:
            return self._entries[name]
        except KeyError:
            raise ValueError(
                f"unknown protocol {name!r}; known: "
                f"{self.names(include_hidden=True)}") from None

    def create(self, name: str, config) -> PubSubProtocol:
        """Instantiate the protocol registered under ``name``."""
        return self.get(name).create(config)

    def names(self, include_hidden: bool = False) -> List[str]:
        """Registered names, sorted; hidden entries opt-in."""
        return sorted(n for n, e in self._entries.items()
                      if include_hidden or not e.hidden)

    def entries(self, include_hidden: bool = False) -> List[ProtocolEntry]:
        """Registered entries in name order; hidden entries opt-in."""
        return [self._entries[n]
                for n in self.names(include_hidden=include_hidden)]

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[str]:
        return iter(self.names(include_hidden=True))

    def __repr__(self) -> str:   # pragma: no cover - debugging aid
        return f"<ProtocolRegistry {self.names(include_hidden=True)}>"


#: The process-wide default registry every harness surface consults.
REGISTRY = ProtocolRegistry()


def register(name: str, factory: ProtocolFactory, *, description: str = "",
             hidden: bool = False, replace: bool = False) -> ProtocolEntry:
    """Register into the default registry (module-level convenience)."""
    return REGISTRY.register(name, factory, description=description,
                             hidden=hidden, replace=replace)


def unregister(name: str) -> None:
    """Remove from the default registry (module-level convenience)."""
    REGISTRY.unregister(name)


def get(name: str) -> ProtocolEntry:
    """Look up in the default registry (module-level convenience)."""
    return REGISTRY.get(name)


def create(name: str, config) -> PubSubProtocol:
    """Instantiate from the default registry (module-level convenience)."""
    return REGISTRY.create(name, config)


def names(include_hidden: bool = False) -> List[str]:
    """Names in the default registry (module-level convenience)."""
    return REGISTRY.names(include_hidden=include_hidden)


def entries(include_hidden: bool = False) -> List[ProtocolEntry]:
    """Entries in the default registry (module-level convenience)."""
    return REGISTRY.entries(include_hidden=include_hidden)
