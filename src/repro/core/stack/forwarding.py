"""The stack's forwarding layer: when held events go back on the air.

Three policies cover every protocol in the repository:

* :class:`BackoffForwarding` — the frugal protocol's phase 2 (paper
  Figs. 7 and 9): compute what some matching neighbour lacks, arm a
  back-off inversely proportional to how much there is to offer, and on
  expiry *recompute* and broadcast; overhearing an event of interest
  cancels the pending back-off (suppression).
* :class:`PeriodicFloodForwarding` — the Section 5.2 comparators: a
  fixed-period tick that expires stale events and rebroadcasts whatever
  the variant's ``should_flood`` predicate keeps.
* :class:`GossipForwarding` — lpbcast-style rounds for the gossip
  baseline: each period, with a configurable probability, rebroadcast
  the newest events of a bounded digest buffer.

Each policy holds the stack's shared counters and writes
``batches_sent`` / ``events_forwarded``; randomness (back-off jitter,
gossip coins) comes exclusively from the host's node-local rng stream,
which is what keeps every composition seed-deterministic.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Set, Tuple

from repro.core.base import Host, ProtocolCounters
from repro.core.config import FrugalConfig
from repro.core.events import Event, EventId
from repro.core.stack.membership import HeartbeatMembership
from repro.core.stack.store import EventStore
from repro.core.topics import subscription_matches_event
from repro.net.messages import EventBatch


class BackoffForwarding:
    """The frugal contention back-off (paper Figs. 7-9).

    Reads the membership layer's table (who lacks what) and the store
    (what is held and valid); the stack triggers :meth:`retrieve` on id
    exchanges and interesting receptions, and :meth:`cancel` when an
    overheard event makes a pending send redundant.
    """

    def __init__(self, config: FrugalConfig, counters: ProtocolCounters,
                 membership: HeartbeatMembership):
        self.config = config
        self.counters = counters
        self.membership = membership
        self._host: Optional[Host] = None
        self._store: Optional[EventStore] = None
        self._timer = None
        self._bo_delay: Optional[float] = None      # the paper's "BODelay"

    # -- wiring ---------------------------------------------------------------

    def attach(self, host: Host, store: EventStore) -> None:
        """Bind the layer to the hosting node and the stack's store."""
        self._host = host
        self._store = store

    def detach(self) -> None:
        """Drop the host/store bindings (stack detach; cancel first)."""
        self._host = None
        self._store = None

    # -- the back-off ----------------------------------------------------------------

    def retrieve(self) -> List[EventId]:
        """Fig. 7: compute what some neighbour needs; arm the back-off.

        Returns the computed id list (the send itself happens at
        back-off expiry on a *recomputed* list, per the paper's prose).
        """
        to_send = self.compute_events_to_send()
        if not to_send:
            return []
        delay = self.config.backoff_delay(self.membership.hb_delay,
                                          len(to_send))
        if self._bo_delay is None:
            self._bo_delay = delay
        else:
            self._bo_delay = min(self._bo_delay, delay)
        if not self.config.use_backoff:
            self._on_backoff_expired()
            return to_send
        if self._timer is None or not self._timer.active:
            armed = self._bo_delay
            if self.config.backoff_jitter_frac > 0:
                armed *= 1.0 + self._host.rng.uniform(
                    0.0, self.config.backoff_jitter_frac)
            self._timer = self._host.schedule(
                armed, self._on_backoff_expired)
        return to_send

    def compute_events_to_send(self) -> List[EventId]:
        """Ids of held, valid events some matching neighbour lacks."""
        now = self._host.now
        needed: Set[EventId] = set()
        valid_rows = self._store.valid_rows(now)
        if not valid_rows:
            return []
        for neighbor in self.membership.table:
            for row in valid_rows:
                if row.event_id in needed:
                    continue
                if (subscription_matches_event(neighbor.subscriptions,
                                               row.topic)
                        and not neighbor.knows(row.event_id)):
                    needed.add(row.event_id)
        return sorted(needed)

    def _on_backoff_expired(self) -> None:
        """Fig. 9 lines 2-14: recompute, send, account."""
        self._bo_delay = None
        self._timer = None
        to_send = self.compute_events_to_send()
        if not to_send:
            return
        events = tuple(self._store.get(eid).event for eid in to_send)
        self.send_batch(events)
        for eid in to_send:
            self._store.increment_forward_count(eid)

    def send_batch(self, events: Tuple[Event, ...]) -> Tuple[int, ...]:
        """Broadcast ``events`` with the interested-neighbour id list.

        Every attached neighbour id is recorded as now knowing every
        carried event (the overhearing-based view update of Fig. 9);
        returns the id list so callers can do their own bookkeeping.
        """
        neighbor_ids = tuple(self.membership.table.ids())
        self._host.send(EventBatch(sender=self._host.id, events=events,
                                   neighbor_ids=neighbor_ids))
        self.counters.batches_sent += 1
        self.counters.events_forwarded += len(events)
        for nid in neighbor_ids:
            for event in events:
                self.membership.table.record_known_event(nid,
                                                         event.event_id)
        return neighbor_ids

    def cancel(self) -> None:
        """Suppress the pending send (overheard, or crashing)."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        self._bo_delay = None

    # -- introspection ---------------------------------------------------------------

    @property
    def pending(self) -> bool:
        """Is a back-off currently armed?"""
        return self._timer is not None and self._timer.active

    @property
    def timer(self):
        """The armed back-off timer handle, or ``None``."""
        return self._timer


class PeriodicFloodForwarding:
    """Fixed-period rebroadcast (the Section 5.2 flooding comparators).

    Each tick expires stale events from the store for good, then floods
    whatever the variant's ``should_flood`` predicate keeps.
    """

    def __init__(self, counters: ProtocolCounters, period: float,
                 jitter: float, should_flood: Callable[[Event], bool]):
        if period <= 0:
            raise ValueError(f"flood_period must be positive: {period}")
        self.counters = counters
        self.period = float(period)
        self.jitter = float(jitter)
        self._should_flood = should_flood
        self._host: Optional[Host] = None
        self._store: Optional[EventStore] = None
        self._task = None

    # -- wiring ---------------------------------------------------------------

    def attach(self, host: Host, store: EventStore) -> None:
        """Bind the layer to the hosting node and the stack's store."""
        self._host = host
        self._store = store

    def detach(self) -> None:
        """Drop the host/store bindings (stack detach; stop first)."""
        self._host = None
        self._store = None

    # -- lifecycle ----------------------------------------------------------------

    def start(self) -> None:
        """Arm the periodic flood task."""
        self._task = self._host.periodic(
            self.period, self._tick, jitter=self.jitter)

    def stop(self) -> None:
        """Stop the periodic flood task."""
        if self._task is not None:
            self._task.stop()
            self._task = None

    # -- flooding -------------------------------------------------------------------

    def _tick(self) -> None:
        now = self._host.now
        # Expired events leave the store for good (they are of no use).
        self._store.purge_expired(now)
        outgoing = [row.event for row in self._store
                    if self._should_flood(row.event)]
        if outgoing:
            self.flood_now(outgoing)

    def flood_now(self, events: Sequence[Event]) -> None:
        """Broadcast ``events`` as one batch (no neighbour id list)."""
        self._host.send(EventBatch(sender=self._host.id,
                                   events=tuple(events)))
        self.counters.batches_sent += 1
        self.counters.events_forwarded += len(events)


class GossipForwarding:
    """lpbcast-style gossip rounds over a bounded digest buffer.

    Each period the layer expires stale buffer entries, then — with
    probability ``forward_probability``, drawn from the host's rng —
    rebroadcasts the *newest* ``fanout`` buffered events.  The newest
    entries are the ones the neighbourhood is least likely to have
    heard, which is what lpbcast's buffer truncation optimises for too.
    """

    def __init__(self, counters: ProtocolCounters, period: float,
                 jitter: float, forward_probability: float, fanout: int):
        if period <= 0:
            raise ValueError(f"gossip period must be positive: {period}")
        if not 0.0 <= forward_probability <= 1.0:
            raise ValueError(f"forward_probability must be in [0,1]: "
                             f"{forward_probability}")
        if fanout < 1:
            raise ValueError(f"fanout must be >= 1: {fanout}")
        self.counters = counters
        self.period = float(period)
        self.jitter = float(jitter)
        self.forward_probability = float(forward_probability)
        self.fanout = int(fanout)
        self._host: Optional[Host] = None
        self._store: Optional[EventStore] = None
        self._task = None

    # -- wiring ---------------------------------------------------------------

    def attach(self, host: Host, store: EventStore) -> None:
        """Bind the layer to the hosting node and the digest buffer."""
        self._host = host
        self._store = store

    def detach(self) -> None:
        """Drop the host/store bindings (stack detach; stop first)."""
        self._host = None
        self._store = None

    # -- lifecycle ----------------------------------------------------------------

    def start(self) -> None:
        """Arm the periodic gossip-round task."""
        self._task = self._host.periodic(
            self.period, self._tick, jitter=self.jitter)

    def stop(self) -> None:
        """Stop the periodic gossip-round task."""
        if self._task is not None:
            self._task.stop()
            self._task = None

    # -- gossip rounds ----------------------------------------------------------------

    def _tick(self) -> None:
        now = self._host.now
        self._store.purge_expired(now)
        rows = list(self._store)
        if not rows:
            return
        # One coin per non-empty round, from the node's dedicated
        # stream: reruns of the same seed replay the exact coin
        # sequence, which is what makes gossip results reproducible.
        if self._host.rng.random() >= self.forward_probability:
            return
        newest = rows[-self.fanout:]
        self.broadcast(tuple(row.event for row in newest))

    def broadcast(self, events: Tuple[Event, ...]) -> None:
        """Broadcast ``events`` as one batch and account for it."""
        self._host.send(EventBatch(sender=self._host.id, events=events))
        self.counters.batches_sent += 1
        self.counters.events_forwarded += len(events)
