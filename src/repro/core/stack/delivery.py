"""The stack's delivery layer: what reaches the application.

Owns the subscription set and the exactly-once hand-off to the host's
application layer, and accounts the two reception pathologies the paper
measures: *duplicates* (a copy of an event the process already handled)
and *parasites* (an event of no subscribed topic that reached the radio
anyway).  All tallies go into the stack's shared
:class:`~repro.core.base.ProtocolCounters`.

Two hand-off flavours exist because the protocols track "already
delivered" differently:

* :meth:`DeliveryLayer.hand_off` — unconditional count-and-deliver, for
  stacks whose store rows carry their own ``delivered`` flag (the frugal
  protocol: an event evicted and later re-received is delivered again,
  by design);
* :meth:`DeliveryLayer.deliver_once` — set-based exactly-once hand-off,
  for stacks without per-row flags (the flooding and gossip baselines).
"""

from __future__ import annotations

from typing import FrozenSet, Optional, Set

from repro.core.base import Host, ProtocolCounters
from repro.core.events import Event, EventId
from repro.core.topics import Topic, subscription_matches_event


class DeliveryLayer:
    """Subscription matching, dedup/parasite accounting, app hand-off."""

    def __init__(self, counters: ProtocolCounters):
        self.counters = counters
        self._subscriptions: Set[Topic] = set()
        self._delivered: Set[EventId] = set()
        self._host: Optional[Host] = None

    # -- wiring ---------------------------------------------------------------

    def attach(self, host: Host) -> None:
        """Bind the layer to the hosting node."""
        self._host = host

    def detach(self) -> None:
        """Drop the host binding (stack detach)."""
        self._host = None

    def reset(self) -> None:
        """Forget delivery history (crash semantics); counters survive."""
        self._delivered.clear()

    # -- subscriptions ----------------------------------------------------------

    @property
    def subscriptions(self) -> FrozenSet[Topic]:
        """The current subscription set (frozen view)."""
        return frozenset(self._subscriptions)

    def subscribe(self, topic: Topic | str) -> None:
        """Register interest in ``topic`` and its subtopics."""
        self._subscriptions.add(Topic(topic))

    def unsubscribe(self, topic: Topic | str) -> None:
        """Drop a subscription (unknown topics are ignored)."""
        self._subscriptions.discard(Topic(topic))

    def matches(self, topic: Topic) -> bool:
        """Is the process entitled to events on ``topic``?"""
        return subscription_matches_event(self._subscriptions, topic)

    # -- hand-off ------------------------------------------------------------------

    def hand_off(self, event: Event) -> None:
        """Count and deliver unconditionally (caller did the dedup)."""
        self.counters.delivered_count += 1
        self._host.deliver(event)

    def deliver_once(self, event: Event) -> bool:
        """Deliver if subscribed and not yet delivered; report success."""
        if event.event_id in self._delivered:
            return False
        if not self.matches(event.topic):
            return False
        self._delivered.add(event.event_id)
        self.hand_off(event)
        return True

    def __repr__(self) -> str:   # pragma: no cover - debugging aid
        subs = ",".join(sorted(str(t) for t in self._subscriptions))
        return f"<DeliveryLayer subs=[{subs}]>"
