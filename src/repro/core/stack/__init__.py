"""Composable protocol-stack layers.

Every dissemination protocol in this repository — the paper's frugal
protocol, the Section 5.2 flooding comparators and the lpbcast-style
gossip baseline — is assembled from four layers, each written against the
minimal :class:`repro.core.base.Host` interface:

* **membership** (:mod:`repro.core.stack.membership`) — who is around and
  what do they want: heartbeat beaconing, a neighbour table, timeout GC.
  Two implementations: the frugal protocol's adaptive
  :class:`HeartbeatMembership` (``computeHBDelay``/``computeNGCDelay``,
  paper Fig. 8) and the flooder's flat :class:`TTLMembership`.
* **store** (:mod:`repro.core.stack.store`) — which events a process
  holds: a bounded or unbounded event table with validity expiry and
  pluggable eviction from :mod:`repro.core.gc`.
* **delivery** (:mod:`repro.core.stack.delivery`) — what reaches the
  application: subscription matching, exactly-once hand-off, duplicate
  and parasite accounting.
* **forwarding** (:mod:`repro.core.stack.forwarding`) — when held events
  go back on the air: the frugal back-off/suppression contention
  (:class:`BackoffForwarding`), the flooders' fixed-period rebroadcast
  (:class:`PeriodicFloodForwarding`) and the gossip rounds of the
  lpbcast-style baseline (:class:`GossipForwarding`).

All layers share one :class:`repro.core.base.ProtocolCounters` instance
per stack, and a protocol class is little more than the composition
root wiring them together (see ``examples/custom_protocol.py`` for a
from-scratch composition, and :mod:`repro.core.registry` for plugging
the result into the experiment harness).
"""

from repro.core.base import ProtocolCounters
from repro.core.stack.delivery import DeliveryLayer
from repro.core.stack.forwarding import (BackoffForwarding,
                                         GossipForwarding,
                                         PeriodicFloodForwarding)
from repro.core.stack.membership import HeartbeatMembership, TTLMembership
from repro.core.stack.store import EventStore

__all__ = [
    "ProtocolCounters",
    "DeliveryLayer",
    "EventStore",
    "HeartbeatMembership",
    "TTLMembership",
    "BackoffForwarding",
    "PeriodicFloodForwarding",
    "GossipForwarding",
]
