"""The stack's membership layer: who is around, and what do they want.

Two implementations share the heartbeat-beacon idea but differ in how
much machinery rides on it:

* :class:`HeartbeatMembership` — the frugal protocol's phase 1 (paper
  Figs. 6, 8 and 10): periodic heartbeats advertising a topic set, a
  *matching-neighbour* :class:`~repro.core.tables.NeighborhoodTable`,
  a periodic timeout GC, and the adaptive ``computeHBDelay`` /
  ``computeNGCDelay`` rules that speed the beacons up as the observed
  neighbourhood speeds up.
* :class:`TTLMembership` — the neighbours'-interests flooder's flat
  view: fixed-period heartbeats, a ``{id: (subscriptions, heard_at)}``
  dict, and lazy TTL pruning on use (no GC task, no adaptation).

Both are driven purely through the :class:`~repro.core.base.Host`
interface, so a scripted fake host can exercise them in isolation
(``tests/test_stack.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Optional

from repro.core.base import Host, ProtocolCounters
from repro.core.config import FrugalConfig
from repro.core.tables import NeighborhoodTable
from repro.core.topics import (Topic, subscription_matches_event,
                               subscriptions_related)
from repro.net.messages import Heartbeat


class HeartbeatMembership:
    """Adaptive heartbeats + matching-neighbour table + timeout GC.

    The layer owns the neighbourhood table and the two periodic tasks
    (heartbeat, neighbourhood GC).  Tasks run while the layer is started
    *and* the stack advertises at least one topic — the ``advertised``
    callable crosses into the delivery/store layers (subscriptions plus
    own still-valid publications), and ``on_new_neighbor`` lets the
    stack react to a first detection (the frugal protocol announces its
    held event ids there, Fig. 6 lines 19-23).
    """

    def __init__(self, config: FrugalConfig, counters: ProtocolCounters,
                 advertised: Callable[[], FrozenSet[Topic]],
                 on_new_neighbor: Optional[
                     Callable[[int, FrozenSet[Topic]], None]] = None):
        self.config = config
        self.counters = counters
        self.table = NeighborhoodTable(
            capacity=config.neighborhood_capacity)
        self._advertised = advertised
        self._on_new_neighbor = on_new_neighbor
        self._host: Optional[Host] = None
        self._started = False
        self._hb_delay = config.hb_delay
        self._hb_task = None
        self._ngc_task = None

    # -- wiring ---------------------------------------------------------------

    def attach(self, host: Host) -> None:
        """Bind the layer to the hosting node."""
        self._host = host

    def detach(self) -> None:
        """Drop the host binding (stack detach; stop first)."""
        self._host = None

    # -- lifecycle ----------------------------------------------------------------

    def start(self) -> None:
        """Begin beaconing (Fig. 5): reset the period, arm the tasks."""
        self._started = True
        self._hb_delay = min(self.config.hb_delay,
                             self.config.hb_upper_bound)
        self.update_tasks()

    def stop(self) -> None:
        """Stop both periodic tasks; the table is left to :meth:`reset`."""
        self._started = False
        self._stop_tasks()

    def reset(self) -> None:
        """Forget every neighbour (volatile state is lost on crash)."""
        self.table.clear()

    def update_tasks(self) -> None:
        """Start/stop the heartbeat and neighbourhood-GC tasks (Fig. 5).

        Tasks run while the layer is started and the stack advertises at
        least one topic (a subscription, or an own still-valid
        publication).

        Both tasks are armed through ``host.periodic``, so in a wheeled
        world (``ScenarioConfig.coalesced_timers``) the whole
        population's heartbeat/NGC ticks coalesce onto one shared
        :class:`~repro.sim.kernel.TimerWheel` — one kernel service
        event per instant instead of one timer per node — with exactly
        the firing times and tie-order of dedicated timers.
        """
        if not self._started or self._host is None:
            return
        if self._advertised():
            if self._hb_task is None or not self._hb_task.running:
                self._hb_task = self._host.periodic(
                    self._hb_delay, self._heartbeat_tick,
                    jitter=self.config.hb_jitter)
            if self._ngc_task is None or not self._ngc_task.running:
                self._ngc_task = self._host.periodic(
                    self.config.ngc_delay(self._hb_delay), self._ngc_tick)
        else:
            self._stop_tasks()

    def _stop_tasks(self) -> None:
        if self._hb_task is not None:
            self._hb_task.stop()
            self._hb_task = None
        if self._ngc_task is not None:
            self._ngc_task.stop()
            self._ngc_task = None

    # -- beaconing -------------------------------------------------------------------

    def _heartbeat_tick(self) -> None:
        topics = self._advertised()
        if not topics:
            return
        speed = (self._host.current_speed()
                 if self.config.speed_in_heartbeats else None)
        self._host.send(Heartbeat(sender=self._host.id,
                                  subscriptions=topics,
                                  speed=speed))
        self.counters.heartbeats_sent += 1

    def _ngc_tick(self) -> None:
        """Fig. 10 lines 2-8: drop stale neighbourhood rows."""
        self.table.collect(self._host.now,
                           self.config.ngc_delay(self._hb_delay))

    # -- reception ------------------------------------------------------------------

    def on_heartbeat(self, hb: Heartbeat) -> None:
        """Store/refresh a *matching* sender; adapt the delays (Fig. 8).

        A first detection fires the ``on_new_neighbor`` callback after
        the row is stored, exactly as the monolithic protocol did.
        """
        mine = self._advertised()
        if mine and subscriptions_related(mine, hb.subscriptions):
            is_new = hb.sender not in self.table
            self.table.upsert(hb.sender, hb.subscriptions,
                              hb.speed, self._host.now)
            if is_new and self._on_new_neighbor is not None:
                self._on_new_neighbor(hb.sender, hb.subscriptions)
        self.recompute_delays()

    def recompute_delays(self) -> None:
        """Fig. 8: adapt heartbeat and neighbourhood-GC periods."""
        avg = self.table.average_speed(
            own_speed=self._host.current_speed())
        new_hb = self.config.adapted_hb_delay(avg, self._hb_delay)
        if new_hb != self._hb_delay:
            self._hb_delay = new_hb
            if self._hb_task is not None:
                self._hb_task.set_period(new_hb)
        # NGCDelay follows HBDelay (Fig. 8 line 12).
        if self._ngc_task is not None:
            self._ngc_task.set_period(self.config.ngc_delay(self._hb_delay))

    # -- introspection ---------------------------------------------------------------

    @property
    def hb_delay(self) -> float:
        """Current (possibly adapted) heartbeat period [s]."""
        return self._hb_delay

    def __repr__(self) -> str:   # pragma: no cover - debugging aid
        return (f"<HeartbeatMembership neighbors={len(self.table)} "
                f"hb={self._hb_delay:.3g}s>")


@dataclass
class _NeighborInterests:
    """One row of the flat TTL neighbour view."""

    subscriptions: FrozenSet[Topic]
    heard_at: float


class TTLMembership:
    """Fixed-period heartbeats + a lazily TTL-pruned neighbour view.

    The neighbours'-interests flooder's membership: beacons carry the
    stack's current subscription set (via the ``subscriptions``
    callable), receptions are stored unconditionally, and rows older
    than ``ttl`` are pruned whenever a query needs a fresh view — no GC
    task, no adaptation.
    """

    def __init__(self, counters: ProtocolCounters,
                 heartbeat_period: float, ttl: float,
                 subscriptions: Callable[[], FrozenSet[Topic]],
                 jitter: float = 0.0):
        if heartbeat_period <= 0:
            raise ValueError("heartbeat_period must be positive")
        if ttl <= 0:
            raise ValueError("neighbor_ttl must be positive")
        self.counters = counters
        self.heartbeat_period = float(heartbeat_period)
        self.ttl = float(ttl)
        self.jitter = float(jitter)
        self._subscriptions = subscriptions
        self._neighbors: Dict[int, _NeighborInterests] = {}
        self._host: Optional[Host] = None
        self._hb_task = None

    # -- wiring ---------------------------------------------------------------

    def attach(self, host: Host) -> None:
        """Bind the layer to the hosting node."""
        self._host = host

    def detach(self) -> None:
        """Drop the host binding (stack detach; stop first)."""
        self._host = None

    # -- lifecycle ----------------------------------------------------------------

    def start(self) -> None:
        """Arm the fixed-period heartbeat task.

        With zero jitter every node's ticks land on the same instants,
        which is the best case for the shared timer wheel behind
        ``host.periodic``: the fleet's heartbeats collapse into one
        kernel service event per period.
        """
        self._hb_task = self._host.periodic(
            self.heartbeat_period, self._heartbeat_tick,
            jitter=self.jitter)

    def stop(self) -> None:
        """Stop beaconing and forget every neighbour."""
        if self._hb_task is not None:
            self._hb_task.stop()
            self._hb_task = None
        self._neighbors.clear()

    # -- beaconing / reception -------------------------------------------------------

    def _heartbeat_tick(self) -> None:
        self._host.send(Heartbeat(sender=self._host.id,
                                  subscriptions=self._subscriptions(),
                                  speed=None))
        self.counters.heartbeats_sent += 1

    def on_heartbeat(self, hb: Heartbeat) -> None:
        """Store/refresh the sender's interests, unconditionally."""
        self._neighbors[hb.sender] = _NeighborInterests(
            subscriptions=hb.subscriptions, heard_at=self._host.now)

    # -- queries ---------------------------------------------------------------------

    def prune(self, now: float) -> None:
        """Drop rows not refreshed within the TTL."""
        horizon = now - self.ttl
        stale = [nid for nid, info in self._neighbors.items()
                 if info.heard_at < horizon]
        for nid in stale:
            del self._neighbors[nid]

    def any_interested(self, topic: Topic) -> bool:
        """Is at least one (unpruned) neighbour entitled to ``topic``?"""
        return any(
            subscription_matches_event(info.subscriptions, topic)
            for info in self._neighbors.values())

    def __len__(self) -> int:
        return len(self._neighbors)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._neighbors

    def __repr__(self) -> str:   # pragma: no cover - debugging aid
        return f"<TTLMembership neighbors={len(self._neighbors)}>"
