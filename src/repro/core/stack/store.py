"""The stack's store layer: what a process holds, and for how long.

A thin composition-facing veneer over :class:`repro.core.tables.EventTable`
(the paper's Fig. 3 bounded store).  The base table already implements
validity expiry, expired-first eviction and the pluggable Equation 1 /
FIFO / random policies of :mod:`repro.core.gc`; this layer adds the named
constructors each protocol stack uses:

* :meth:`EventStore.from_config` — the frugal protocol's bounded table
  (capacity and eviction policy from a :class:`FrugalConfig`),
* :meth:`EventStore.unbounded` — the flooding baselines' natural-cost
  store (memory thrift is precisely what the frugal protocol adds),
* :meth:`EventStore.bounded_fifo` — the gossip baseline's bounded digest
  buffer (expired events leave first, then the oldest entry).
"""

from __future__ import annotations

from typing import Optional, Set

from repro.core.config import FrugalConfig
from repro.core.events import EventId
from repro.core.gc import FifoPolicy, make_policy
from repro.core.tables import EventTable


class EventStore(EventTable):
    """An :class:`EventTable` with stack-composition constructors."""

    @classmethod
    def from_config(cls, config: FrugalConfig, rng) -> "EventStore":
        """The frugal protocol's store: bounded, policy-evicted.

        ``rng`` is the host's node-local stream (only the ``random``
        eviction policy draws from it).
        """
        return cls(capacity=config.event_table_capacity,
                   policy=make_policy(config.eviction_policy),
                   rng=rng)

    @classmethod
    def unbounded(cls) -> "EventStore":
        """A flooder's store: unbounded, expiry is the only exit."""
        return cls(capacity=None)

    @classmethod
    def bounded_fifo(cls, capacity: Optional[int]) -> "EventStore":
        """A bounded digest buffer: expired-first, then oldest-first."""
        return cls(capacity=capacity, policy=FifoPolicy())

    def event_ids(self) -> Set[EventId]:
        """The ids of every stored event (valid or not)."""
        return set(self._rows)
