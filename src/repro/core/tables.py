"""The two memory-bounded data structures of Section 4.1.

* :class:`NeighborhoodTable` — one row per *matching* one-hop neighbour
  (Fig. 2): identifier, subscriptions, the event ids the neighbour is
  presumed to hold, its advertised speed and the row's store time (used by
  the periodic neighbourhood GC).
* :class:`EventTable` — the bounded store of received/published events
  (Fig. 3): each row is a :class:`~repro.core.events.StoredEvent` carrying
  the validity period and the forward counter.  When full, eviction first
  removes any expired event, then defers to the configured
  :class:`~repro.core.gc.EvictionPolicy` (Equation 1 by default).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set

from repro.core.events import Event, EventId, StoredEvent
from repro.core.gc import EvictionPolicy, ValidityForwardPolicy
from repro.core.topics import Topic, subscription_matches_event


class EventTableFull(RuntimeError):
    """Raised when an event cannot be stored even after eviction.

    Only possible with a capacity of zero usable slots, which configuration
    validation prevents; surfacing it keeps the invariant explicit.
    """


@dataclass
class NeighborEntry:
    """One row of the neighbourhood table (paper Fig. 2)."""

    node_id: int
    subscriptions: FrozenSet[Topic]
    speed: Optional[float]
    store_time: float
    known_event_ids: Set[EventId] = field(default_factory=set)

    def knows(self, event_id: EventId) -> bool:
        """Is the neighbour presumed to already hold this event?"""
        return event_id in self.known_event_ids

    def is_stale(self, now: float, ngc_delay: float) -> bool:
        """GC predicate (Fig. 10 line 4): entry older than ``ngc_delay``."""
        return now - ngc_delay > self.store_time


class NeighborhoodTable:
    """Dynamic one-hop neighbourhood view, restricted to matching neighbours.

    The table is updated on every received heartbeat, event-id list and
    event batch, and periodically garbage collected.  Its size is naturally
    bounded by the number of simultaneous radio neighbours; ``capacity``
    additionally enforces the paper's footnote-5 hard bound ("the maximum
    number of neighbors a process can handle") by evicting the stalest row
    when a new neighbour arrives at a full table.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None: {capacity}")
        self.capacity = capacity
        self._entries: Dict[int, NeighborEntry] = {}

    # -- container protocol ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._entries

    def __iter__(self) -> Iterator[NeighborEntry]:
        return iter(self._entries.values())

    def get(self, node_id: int) -> Optional[NeighborEntry]:
        return self._entries.get(node_id)

    def ids(self) -> List[int]:
        return sorted(self._entries)

    # -- updates (paper's updateNeighborInfo / updateNeighborEventInfo) --------

    def upsert(self, node_id: int, subscriptions: Iterable[Topic],
               speed: Optional[float], now: float) -> NeighborEntry:
        """Insert a new neighbour or refresh an existing row.

        Refreshing preserves the accumulated ``known_event_ids`` — losing
        them on every heartbeat would reintroduce the duplicate sends the
        id-exchange exists to avoid.
        """
        subs = frozenset(subscriptions)
        entry = self._entries.get(node_id)
        if entry is None:
            if (self.capacity is not None
                    and len(self._entries) >= self.capacity):
                self._evict_stalest()
            entry = NeighborEntry(node_id=node_id, subscriptions=subs,
                                  speed=speed, store_time=now)
            self._entries[node_id] = entry
        else:
            entry.subscriptions = subs
            entry.speed = speed
            entry.store_time = now
        return entry

    def record_known_event(self, node_id: int, event_id: EventId,
                           now: Optional[float] = None) -> None:
        """Mark that ``node_id`` is presumed to hold ``event_id``.

        Unknown neighbours are ignored (the paper only tracks matching
        neighbours; an id heard from a non-matching process carries no
        actionable information).
        """
        entry = self._entries.get(node_id)
        if entry is None:
            return
        entry.known_event_ids.add(event_id)
        if now is not None:
            entry.store_time = now

    def remove(self, node_id: int) -> None:
        self._entries.pop(node_id, None)

    def clear(self) -> None:
        """Drop every row (crash semantics: the view is volatile state).

        In-place so long-lived references — the stack layers hold the
        table across crash/recover cycles — stay valid; the configured
        ``capacity`` is preserved.
        """
        self._entries.clear()

    def _evict_stalest(self) -> None:
        """Make room for a fresh neighbour: the least recently heard row
        is the least likely to still be in radio range."""
        stalest = min(self._entries.values(), key=lambda e: e.store_time)
        del self._entries[stalest.node_id]

    # -- queries ------------------------------------------------------------------

    def average_speed(self, own_speed: Optional[float] = None
                      ) -> Optional[float]:
        """Mean advertised speed of the neighbourhood (plus ``own_speed``).

        Returns ``None`` when no process contributed a speed — the
        adaptive-heartbeat rule then leaves the period unchanged.
        """
        speeds = [e.speed for e in self._entries.values()
                  if e.speed is not None]
        if own_speed is not None:
            speeds.append(own_speed)
        if not speeds:
            return None
        return sum(speeds) / len(speeds)

    def interested_in(self, topic: Topic) -> List[NeighborEntry]:
        """Neighbours whose subscriptions entitle them to ``topic``."""
        return [e for e in self._entries.values()
                if subscription_matches_event(e.subscriptions, topic)]

    # -- garbage collection ----------------------------------------------------------

    def collect(self, now: float, ngc_delay: float) -> List[int]:
        """Drop stale rows; returns the removed neighbour ids (Fig. 10)."""
        stale = [nid for nid, e in self._entries.items()
                 if e.is_stale(now, ngc_delay)]
        for nid in stale:
            del self._entries[nid]
        return stale


class EventTable:
    """Bounded per-process event store (paper Fig. 3).

    Rows are kept per event id; the table never stores two copies of the
    same event.  ``capacity=None`` disables the bound (handy in tests).
    """

    def __init__(self, capacity: Optional[int] = None,
                 policy: Optional[EvictionPolicy] = None,
                 rng=None):
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None: {capacity}")
        self.capacity = capacity
        self.policy = policy or ValidityForwardPolicy()
        self._rng = rng
        self._rows: Dict[EventId, StoredEvent] = {}
        self.evictions_expired = 0
        self.evictions_policy = 0

    # -- container protocol ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, event_id: EventId) -> bool:
        return event_id in self._rows

    def __iter__(self) -> Iterator[StoredEvent]:
        return iter(self._rows.values())

    def get(self, event_id: EventId) -> Optional[StoredEvent]:
        return self._rows.get(event_id)

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and len(self._rows) >= self.capacity

    # -- storing --------------------------------------------------------------------

    def store(self, event: Event, now: float) -> StoredEvent:
        """Store ``event``, evicting per Section 4.4 when full.

        Storing an already present event returns the existing row
        unchanged (the protocol checks membership first; this keeps the
        operation idempotent anyway).
        """
        existing = self._rows.get(event.event_id)
        if existing is not None:
            return existing
        if self.is_full:
            self._evict_one(now)
        if self.is_full:                      # pragma: no cover - defensive
            raise EventTableFull(
                f"cannot store {event.event_id}: table stuck at capacity "
                f"{self.capacity}")
        row = StoredEvent(event=event, stored_at=now)
        self._rows[event.event_id] = row
        return row

    def _evict_one(self, now: float) -> None:
        """Prefer any expired event; else ask the policy (Equation 1)."""
        for event_id, row in self._rows.items():
            if not row.is_valid(now):
                del self._rows[event_id]
                self.evictions_expired += 1
                return
        victim = self.policy.select_victim(self._rows.values(), now,
                                           rng=self._rng)
        if victim is not None:
            del self._rows[victim.event_id]
            self.evictions_policy += 1

    def remove(self, event_id: EventId) -> None:
        self._rows.pop(event_id, None)

    def clear(self) -> None:
        """Drop every row and zero the eviction tallies (crash semantics).

        Equivalent to building a fresh table with the same capacity,
        policy and rng — which is exactly what the pre-stack protocol did
        on ``on_stop`` — but in place, so stack layers can keep their
        reference across crash/recover cycles.
        """
        self._rows.clear()
        self.evictions_expired = 0
        self.evictions_policy = 0

    # -- queries ----------------------------------------------------------------------

    def valid_rows(self, now: float) -> List[StoredEvent]:
        """All rows whose event is still within its validity period."""
        return [row for row in self._rows.values() if row.is_valid(now)]

    def valid_ids_for(self, subscriptions: Iterable[Topic],
                      now: float) -> List[EventId]:
        """The paper's ``getEventsIDs``: ids of still-valid held events
        whose topic is related to any of ``subscriptions``.

        The relation is symmetric (ancestor in either direction) so that
        the Fig. 1 exchange works in both directions: p2 (subscribed to the
        subtopic) announces its events to p1 (subscribed to the
        super-topic) *and* vice versa.
        """
        subs = tuple(subscriptions)
        out = [row.event_id for row in self._rows.values()
               if row.is_valid(now)
               and any(s.related_to(row.topic) for s in subs)]
        out.sort()
        return out

    def purge_expired(self, now: float) -> List[EventId]:
        """Eagerly drop expired rows; returns the removed ids.

        The paper's *frugal* protocol only collects lazily (on insertion
        into a full table) and never calls this.  The periodic
        forwarding layers (flooding tick, gossip round — see
        :mod:`repro.core.stack.forwarding`) do call it every period:
        their store semantics have always been expire-on-tick.
        """
        dead = [eid for eid, row in self._rows.items()
                if not row.is_valid(now)]
        for eid in dead:
            del self._rows[eid]
        return dead

    def increment_forward_count(self, event_id: EventId) -> None:
        row = self._rows.get(event_id)
        if row is not None:
            row.forward_count += 1
