"""The frugal event-dissemination protocol (paper Sections 3-4).

Three phases, composed from the :mod:`repro.core.stack` layers:

1. **Neighbourhood detection** — :class:`HeartbeatMembership`: a periodic
   heartbeat task broadcasts ``(id, subscriptions, [speed])``.  Receivers
   with *matching* subscriptions store the sender in their neighbourhood
   table and, on first detection, this class broadcasts the identifiers
   of the still-valid events it holds for the shared topics.  Heartbeat
   reception also re-derives the adaptive delays
   (``computeHBDelay``/``computeNGCDelay``, Fig. 8).
2. **Dissemination** — :class:`BackoffForwarding`: knowing which events
   each matching neighbour holds, a process computes the events some
   neighbour is entitled to but lacks (``retrieveEventsToSend``, Fig. 7),
   arms a back-off inversely proportional to how much it has to offer,
   and on expiry *recomputes* and broadcasts the still-needed events
   together with its neighbour-id list.  Overhearers use that list to
   update their own view, suppressing redundant retransmissions;
   receiving an event of interest cancels a pending back-off outright.
3. **Garbage collection** — the membership layer's periodic task drops
   stale neighbourhood rows; the bounded :class:`EventStore` evicts
   expired events first, then applies Equation 1 (see
   :mod:`repro.core.gc`).

This class is the *composition root*: it owns one instance of each layer
plus the shared counters, and keeps only the cross-layer glue (publish,
batch reception, the id-announcement on a new neighbour).  The behaviour
is bit-identical to the pre-stack monolith — same RNG draw order, same
timer ordering — which ``tests/test_stack_equivalence.py`` proves
against the frozen copy in :mod:`repro.baselines.reference`.

Fidelity deviations (documented in DESIGN.md, "Pseudocode fidelity notes"):

* ``retrieveEventsToSend`` sends *still-valid* events (the paper's
  ``val(e) < currentTime`` comparison is an evident typo);
* eviction prefers *expired* events (the prose contradicts Fig. 10's
  comparison direction; we follow the prose);
* **pure publishers**: the paper starts heartbeats only on ``SUBSCRIBE``,
  which would make a publisher with no subscriptions invisible (nobody
  stores it, its id announcements are dropped, nothing disseminates).  We
  complete the obvious intent: a process *advertises* the union of its
  subscriptions and the topics of its own still-valid publications, and
  runs heartbeats while that advertised set is non-empty.  For processes
  that subscribe to what they publish — every scenario in the paper — the
  behaviour is identical to the pseudocode.
"""

from __future__ import annotations

from typing import FrozenSet, Optional

from repro.core import registry
from repro.core.base import PubSubProtocol
from repro.core.config import FrugalConfig
from repro.core.events import Event
from repro.core.stack.delivery import DeliveryLayer
from repro.core.stack.forwarding import BackoffForwarding
from repro.core.stack.membership import HeartbeatMembership
from repro.core.stack.store import EventStore
from repro.core.topics import Topic
from repro.net.messages import EventBatch, EventIdList, Heartbeat, Message


class FrugalPubSub(PubSubProtocol):
    """The paper's frugal topic-based publish/subscribe protocol."""

    def __init__(self, config: Optional[FrugalConfig] = None):
        super().__init__()
        self.config = config or FrugalConfig()
        self.delivery = DeliveryLayer(self.counters)
        self.membership = HeartbeatMembership(
            self.config, self.counters,
            advertised=self.advertised_topics,
            on_new_neighbor=self._on_new_neighbor)
        self.forwarding = BackoffForwarding(self.config, self.counters,
                                            self.membership)
        self.events: Optional[EventStore] = None   # built on attach (needs rng)
        self._running = False

    # -- lifecycle -----------------------------------------------------------------

    def attach(self, host) -> None:
        """Bind to a host: wire every layer, build the rng-backed store."""
        super().attach(host)
        self.events = EventStore.from_config(self.config, host.rng)
        self.delivery.attach(host)
        self.membership.attach(host)
        self.forwarding.attach(host, self.events)

    def detach(self) -> None:
        """Sever the host binding on every layer (stop first)."""
        super().detach()
        self.delivery.detach()
        self.membership.detach()
        self.forwarding.detach()

    def on_start(self) -> None:
        """Boot: reset the heartbeat period and arm the tasks."""
        self._running = True
        self.membership.start()

    def on_stop(self) -> None:
        """Crash/shutdown: stop tasks, lose all volatile state.

        Volatile state is lost on crash: a recovered process rebuilds
        its view from scratch (Section 2 allows crash/recover at any
        time).  The lifetime counters survive.
        """
        self._running = False
        self.membership.stop()
        self.forwarding.cancel()
        self.membership.reset()
        if self.events is not None:
            self.events.clear()
        self.delivery.reset()

    # -- application-facing API -------------------------------------------------------

    @property
    def subscriptions(self) -> FrozenSet[Topic]:
        """Current subscription set."""
        return self.delivery.subscriptions

    def subscribe(self, topic: Topic | str) -> None:
        """Register interest in ``topic`` and its subtopics (Fig. 5)."""
        self.delivery.subscribe(topic)
        self.membership.update_tasks()

    def unsubscribe(self, topic: Topic | str) -> None:
        """Drop a subscription; tasks stop when nothing is advertised."""
        self.delivery.unsubscribe(topic)
        self.membership.update_tasks()

    def publish(self, event: Event) -> None:
        """Inject a locally produced event (Fig. 9, ``publish``).

        The event is stored and delivered locally, then broadcast
        immediately if some matching neighbour is entitled to it; either
        way it remains available for dissemination at future encounters
        until its validity period ends.
        """
        self._require_frugal_attached()
        now = self.host.now
        interested = self.neighborhood.interested_in(event.topic)
        if interested:
            self.forwarding.send_batch((event,))
        row = self.events.store(event, now)
        if interested:
            row.forward_count += 1
        if not row.delivered:
            row.delivered = True
            self.delivery.hand_off(event)
        self.membership.update_tasks()   # a pure publisher advertises now

    # -- network-facing API --------------------------------------------------------------

    def on_message(self, message: Message) -> None:
        """Dispatch a received frame to the layer that handles its kind."""
        if not self._running:
            return
        if isinstance(message, Heartbeat):
            self.membership.on_heartbeat(message)
        elif isinstance(message, EventIdList):
            self._on_event_id_list(message)
        elif isinstance(message, EventBatch):
            self._on_event_batch(message)
        # Unknown message kinds are ignored: the medium is shared with
        # whatever other protocols the simulation mixes in.

    # -- phase 1 glue: id announcements -----------------------------------------------------

    def advertised_topics(self) -> FrozenSet[Topic]:
        """Subscriptions plus the topics of own still-valid publications."""
        topics = set(self.delivery.subscriptions)
        if self.events is not None and self.host is not None:
            now = self.host.now
            own = self.host.id
            topics.update(
                row.topic for row in self.events
                if row.event_id.publisher == own and row.is_valid(now))
        return frozenset(topics)

    def _on_new_neighbor(self, neighbor_id: int,
                         their_subs: FrozenSet[Topic]) -> None:
        """Fig. 6 lines 19-23: announce held event ids for shared topics.

        With announcements disabled (the `abl-ids` ablation) the retrieve
        step must fire here instead: the id exchange is what normally
        triggers it, and without any trigger a holder meeting a fresh
        neighbour would never offer anything.
        """
        if not self.config.announce_on_new_neighbor:
            self.forwarding.retrieve()
            return
        ids = self.events.valid_ids_for(their_subs, self.host.now)
        self.host.send(EventIdList(sender=self.host.id,
                                   event_ids=tuple(ids)))
        self.counters.id_lists_sent += 1

    def _on_event_id_list(self, msg: EventIdList) -> None:
        """Fig. 6 lines 25-32: learn what a neighbour holds, then offer."""
        if msg.sender not in self.neighborhood:
            return
        for event_id in msg.event_ids:
            self.neighborhood.record_known_event(msg.sender, event_id,
                                                 now=self.host.now)
        self.forwarding.retrieve()

    # -- phase 2 glue: batch reception -------------------------------------------------------

    def _on_event_batch(self, msg: EventBatch) -> None:
        """Fig. 9 lines 16-32: receive events, deliver, update the view."""
        now = self.host.now
        interested = False
        for event in msg.events:
            # The sender holds the event; the attached neighbour ids are
            # about to receive it — all of them are presumed to know it.
            self.neighborhood.record_known_event(msg.sender, event.event_id)
            for nid in msg.neighbor_ids:
                if nid != self.host.id:
                    self.neighborhood.record_known_event(nid, event.event_id)
            if not self.delivery.matches(event.topic):
                self.counters.parasites_dropped += 1
                continue
            if event.event_id in self.events:
                self.counters.duplicates_dropped += 1
                continue
            if not event.is_valid(now):
                continue   # expired in flight; of no use to anyone
            interested = True
            if self.config.backoff_suppression:
                self.forwarding.cancel()
            row = self.events.store(event, now)
            if not row.delivered:
                row.delivered = True
                self.delivery.hand_off(event)
        if interested:
            self.forwarding.retrieve()

    # -- misc ---------------------------------------------------------------------------------

    def _require_frugal_attached(self) -> None:
        if self.host is None or self.events is None:
            raise RuntimeError("protocol is not attached to a host")

    @property
    def neighborhood(self):
        """The membership layer's matching-neighbour table (Fig. 2)."""
        return self.membership.table

    @property
    def hb_delay(self) -> float:
        """Current (possibly adapted) heartbeat period [s]."""
        return self.membership.hb_delay

    @property
    def backoff_pending(self) -> bool:
        """Is a dissemination back-off currently armed?"""
        return self.forwarding.pending

    @property
    def _backoff_timer(self):
        """The armed back-off timer handle (tests peek at it)."""
        return self.forwarding.timer

    def __repr__(self) -> str:   # pragma: no cover - debugging aid
        subs = ",".join(sorted(str(t) for t in self.delivery.subscriptions))
        return (f"<FrugalPubSub subs=[{subs}] "
                f"events={len(self.events) if self.events else 0}>")


registry.register(
    "frugal",
    lambda config: FrugalPubSub(config.frugal),
    description="the paper's frugal store-and-forward protocol",
    replace=True)   # module re-imports re-register identically
