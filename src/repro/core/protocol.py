"""The frugal event-dissemination protocol (paper Sections 3-4).

Three phases, all implemented here:

1. **Neighbourhood detection** — a periodic heartbeat task broadcasts
   ``(id, subscriptions, [speed])``.  Receivers with *matching*
   subscriptions store the sender in their neighbourhood table and, on
   first detection, broadcast the identifiers of the still-valid events
   they hold for the shared topics.  Heartbeat reception also re-derives
   the adaptive delays (``computeHBDelay``/``computeNGCDelay``, Fig. 8).
2. **Dissemination** — knowing which events each matching neighbour holds,
   a process computes the events some neighbour is entitled to but lacks
   (``retrieveEventsToSend``, Fig. 7), arms a back-off inversely
   proportional to how much it has to offer, and on expiry *recomputes*
   and broadcasts the still-needed events together with its neighbour-id
   list.  Overhearers use that list to update their own view, suppressing
   redundant retransmissions; receiving an event of interest cancels a
   pending back-off outright.
3. **Garbage collection** — a periodic task drops stale neighbourhood rows;
   the bounded event table evicts expired events first, then applies
   Equation 1 (see :mod:`repro.core.gc`).

Fidelity deviations (documented in DESIGN.md, "Pseudocode fidelity notes"):

* ``retrieveEventsToSend`` sends *still-valid* events (the paper's
  ``val(e) < currentTime`` comparison is an evident typo);
* eviction prefers *expired* events (the prose contradicts Fig. 10's
  comparison direction; we follow the prose);
* **pure publishers**: the paper starts heartbeats only on ``SUBSCRIBE``,
  which would make a publisher with no subscriptions invisible (nobody
  stores it, its id announcements are dropped, nothing disseminates).  We
  complete the obvious intent: a process *advertises* the union of its
  subscriptions and the topics of its own still-valid publications, and
  runs heartbeats while that advertised set is non-empty.  For processes
  that subscribe to what they publish — every scenario in the paper — the
  behaviour is identical to the pseudocode.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Set

from repro.core.base import PubSubProtocol
from repro.core.config import FrugalConfig
from repro.core.events import Event, EventId
from repro.core.gc import make_policy
from repro.core.tables import EventTable, NeighborhoodTable
from repro.core.topics import (Topic, subscription_matches_event,
                               subscriptions_related)
from repro.net.messages import EventBatch, EventIdList, Heartbeat, Message


class FrugalPubSub(PubSubProtocol):
    """The paper's frugal topic-based publish/subscribe protocol."""

    def __init__(self, config: Optional[FrugalConfig] = None):
        super().__init__()
        self.config = config or FrugalConfig()
        self._subscriptions: Set[Topic] = set()
        self.neighborhood = NeighborhoodTable(
            capacity=self.config.neighborhood_capacity)
        self.events: Optional[EventTable] = None   # built on attach (needs rng)
        self._running = False
        self._hb_delay = self.config.hb_delay
        self._hb_task = None
        self._ngc_task = None
        self._backoff_timer = None
        self._bo_delay: Optional[float] = None      # the paper's "BODelay"
        # Observability counters (protocol-level; the metrics collector
        # counts independently at the medium level).
        self.heartbeats_sent = 0
        self.id_lists_sent = 0
        self.batches_sent = 0
        self.events_forwarded = 0
        self.delivered_count = 0
        self.duplicates_dropped = 0
        self.parasites_dropped = 0

    # -- lifecycle -----------------------------------------------------------------

    def attach(self, host) -> None:
        super().attach(host)
        self.events = EventTable(
            capacity=self.config.event_table_capacity,
            policy=make_policy(self.config.eviction_policy),
            rng=host.rng)

    def on_start(self) -> None:
        self._running = True
        self._hb_delay = min(self.config.hb_delay,
                             self.config.hb_upper_bound)
        self._update_tasks()

    def on_stop(self) -> None:
        self._running = False
        self._stop_tasks()
        self._cancel_backoff()
        # Volatile state is lost on crash: a recovered process rebuilds its
        # view from scratch (Section 2 allows crash/recover at any time).
        self.neighborhood = NeighborhoodTable(
            capacity=self.config.neighborhood_capacity)
        if self.host is not None:
            self.events = EventTable(
                capacity=self.config.event_table_capacity,
                policy=make_policy(self.config.eviction_policy),
                rng=self.host.rng)

    # -- application-facing API -------------------------------------------------------

    @property
    def subscriptions(self) -> FrozenSet[Topic]:
        return frozenset(self._subscriptions)

    def subscribe(self, topic: Topic | str) -> None:
        """Register interest in ``topic`` and its subtopics (Fig. 5)."""
        self._subscriptions.add(Topic(topic))
        self._update_tasks()

    def unsubscribe(self, topic: Topic | str) -> None:
        """Drop a subscription; tasks stop when nothing is advertised."""
        self._subscriptions.discard(Topic(topic))
        self._update_tasks()

    def publish(self, event: Event) -> None:
        """Inject a locally produced event (Fig. 9, ``publish``).

        The event is stored and delivered locally, then broadcast
        immediately if some matching neighbour is entitled to it; either
        way it remains available for dissemination at future encounters
        until its validity period ends.
        """
        self._require_attached()
        now = self.host.now
        interested = self.neighborhood.interested_in(event.topic)
        if interested:
            neighbor_ids = tuple(self.neighborhood.ids())
            self.host.send(EventBatch(sender=self.host.id,
                                      events=(event,),
                                      neighbor_ids=neighbor_ids))
            self.batches_sent += 1
            self.events_forwarded += 1
            for nid in neighbor_ids:
                self.neighborhood.record_known_event(nid, event.event_id)
        row = self.events.store(event, now)
        if interested:
            row.forward_count += 1
        if not row.delivered:
            row.delivered = True
            self.delivered_count += 1
            self.host.deliver(event)
        self._update_tasks()       # a pure publisher starts advertising now

    # -- network-facing API --------------------------------------------------------------

    def on_message(self, message: Message) -> None:
        if not self._running:
            return
        if isinstance(message, Heartbeat):
            self._on_heartbeat(message)
        elif isinstance(message, EventIdList):
            self._on_event_id_list(message)
        elif isinstance(message, EventBatch):
            self._on_event_batch(message)
        # Unknown message kinds are ignored: the medium is shared with
        # whatever other protocols the simulation mixes in.

    # -- phase 1: neighbourhood detection ---------------------------------------------------

    def advertised_topics(self) -> FrozenSet[Topic]:
        """Subscriptions plus the topics of own still-valid publications."""
        topics = set(self._subscriptions)
        if self.events is not None and self.host is not None:
            now = self.host.now
            own = self.host.id
            topics.update(
                row.topic for row in self.events
                if row.event_id.publisher == own and row.is_valid(now))
        return frozenset(topics)

    def _on_heartbeat(self, hb: Heartbeat) -> None:
        mine = self.advertised_topics()
        if mine and subscriptions_related(mine, hb.subscriptions):
            is_new = hb.sender not in self.neighborhood
            self.neighborhood.upsert(hb.sender, hb.subscriptions,
                                     hb.speed, self.host.now)
            if is_new:
                self._on_new_neighbor(hb.sender, hb.subscriptions)
        self._recompute_delays()

    def _on_new_neighbor(self, neighbor_id: int,
                         their_subs: FrozenSet[Topic]) -> None:
        """Fig. 6 lines 19-23: announce held event ids for shared topics.

        With announcements disabled (the `abl-ids` ablation) the retrieve
        step must fire here instead: the id exchange is what normally
        triggers it, and without any trigger a holder meeting a fresh
        neighbour would never offer anything.
        """
        if not self.config.announce_on_new_neighbor:
            self._retrieve_events_to_send()
            return
        ids = self.events.valid_ids_for(their_subs, self.host.now)
        self.host.send(EventIdList(sender=self.host.id,
                                   event_ids=tuple(ids)))
        self.id_lists_sent += 1

    def _on_event_id_list(self, msg: EventIdList) -> None:
        """Fig. 6 lines 25-32: learn what a neighbour holds, then offer."""
        if msg.sender not in self.neighborhood:
            return
        for event_id in msg.event_ids:
            self.neighborhood.record_known_event(msg.sender, event_id,
                                                 now=self.host.now)
        self._retrieve_events_to_send()

    def _recompute_delays(self) -> None:
        """Fig. 8: adapt heartbeat and neighbourhood-GC periods."""
        avg = self.neighborhood.average_speed(
            own_speed=self.host.current_speed())
        new_hb = self.config.adapted_hb_delay(avg, self._hb_delay)
        if new_hb != self._hb_delay:
            self._hb_delay = new_hb
            if self._hb_task is not None:
                self._hb_task.set_period(new_hb)
        # NGCDelay follows HBDelay (Fig. 8 line 12).
        if self._ngc_task is not None:
            self._ngc_task.set_period(self.config.ngc_delay(self._hb_delay))

    def _heartbeat_tick(self) -> None:
        topics = self.advertised_topics()
        if not topics:
            return
        speed = (self.host.current_speed()
                 if self.config.speed_in_heartbeats else None)
        self.host.send(Heartbeat(sender=self.host.id,
                                 subscriptions=topics,
                                 speed=speed))
        self.heartbeats_sent += 1

    def _ngc_tick(self) -> None:
        """Fig. 10 lines 2-8: drop stale neighbourhood rows."""
        self.neighborhood.collect(self.host.now,
                                  self.config.ngc_delay(self._hb_delay))

    # -- phase 2: dissemination ------------------------------------------------------------

    def _retrieve_events_to_send(self) -> List[EventId]:
        """Fig. 7: compute what some neighbour needs; arm the back-off.

        Returns the computed id list (the send itself happens at back-off
        expiry on a *recomputed* list, per the paper's prose).
        """
        to_send = self._compute_events_to_send()
        if not to_send:
            return []
        delay = self.config.backoff_delay(self._hb_delay, len(to_send))
        if self._bo_delay is None:
            self._bo_delay = delay
        else:
            self._bo_delay = min(self._bo_delay, delay)
        if not self.config.use_backoff:
            self._on_backoff_expired()
            return to_send
        if self._backoff_timer is None or not self._backoff_timer.active:
            armed = self._bo_delay
            if self.config.backoff_jitter_frac > 0:
                armed *= 1.0 + self.host.rng.uniform(
                    0.0, self.config.backoff_jitter_frac)
            self._backoff_timer = self.host.schedule(
                armed, self._on_backoff_expired)
        return to_send

    def _compute_events_to_send(self) -> List[EventId]:
        """Ids of held, valid events some matching neighbour lacks."""
        now = self.host.now
        needed: Set[EventId] = set()
        valid_rows = self.events.valid_rows(now)
        if not valid_rows:
            return []
        for neighbor in self.neighborhood:
            for row in valid_rows:
                if row.event_id in needed:
                    continue
                if (subscription_matches_event(neighbor.subscriptions,
                                               row.topic)
                        and not neighbor.knows(row.event_id)):
                    needed.add(row.event_id)
        return sorted(needed)

    def _on_backoff_expired(self) -> None:
        """Fig. 9 lines 2-14: recompute, send, account."""
        self._bo_delay = None
        self._backoff_timer = None
        to_send = self._compute_events_to_send()
        if not to_send:
            return
        events = tuple(self.events.get(eid).event for eid in to_send)
        neighbor_ids = tuple(self.neighborhood.ids())
        self.host.send(EventBatch(sender=self.host.id, events=events,
                                  neighbor_ids=neighbor_ids))
        self.batches_sent += 1
        self.events_forwarded += len(events)
        for nid in neighbor_ids:
            for eid in to_send:
                self.neighborhood.record_known_event(nid, eid)
        for eid in to_send:
            self.events.increment_forward_count(eid)

    def _cancel_backoff(self) -> None:
        if self._backoff_timer is not None:
            self._backoff_timer.cancel()
            self._backoff_timer = None
        self._bo_delay = None

    def _on_event_batch(self, msg: EventBatch) -> None:
        """Fig. 9 lines 16-32: receive events, deliver, update the view."""
        now = self.host.now
        interested = False
        for event in msg.events:
            # The sender holds the event; the attached neighbour ids are
            # about to receive it — all of them are presumed to know it.
            self.neighborhood.record_known_event(msg.sender, event.event_id)
            for nid in msg.neighbor_ids:
                if nid != self.host.id:
                    self.neighborhood.record_known_event(nid, event.event_id)
            if not subscription_matches_event(self.subscriptions,
                                              event.topic):
                self.parasites_dropped += 1
                continue
            if event.event_id in self.events:
                self.duplicates_dropped += 1
                continue
            if not event.is_valid(now):
                continue   # expired in flight; of no use to anyone
            interested = True
            if self.config.backoff_suppression:
                self._cancel_backoff()
            row = self.events.store(event, now)
            if not row.delivered:
                row.delivered = True
                self.delivered_count += 1
                self.host.deliver(event)
        if interested:
            self._retrieve_events_to_send()

    # -- phase 3: task management -------------------------------------------------------------

    def _update_tasks(self) -> None:
        """Start/stop the heartbeat and neighbourhood-GC tasks (Fig. 5).

        Tasks run while the process is up and advertises at least one
        topic (a subscription, or an own still-valid publication).
        """
        if not self._running or self.host is None:
            return
        if self.advertised_topics():
            if self._hb_task is None or not self._hb_task.running:
                self._hb_task = self.host.periodic(
                    self._hb_delay, self._heartbeat_tick,
                    jitter=self.config.hb_jitter)
            if self._ngc_task is None or not self._ngc_task.running:
                self._ngc_task = self.host.periodic(
                    self.config.ngc_delay(self._hb_delay), self._ngc_tick)
        else:
            self._stop_tasks()

    def _stop_tasks(self) -> None:
        if self._hb_task is not None:
            self._hb_task.stop()
            self._hb_task = None
        if self._ngc_task is not None:
            self._ngc_task.stop()
            self._ngc_task = None

    # -- misc ---------------------------------------------------------------------------------

    def _require_attached(self) -> None:
        if self.host is None or self.events is None:
            raise RuntimeError("protocol is not attached to a host")

    @property
    def hb_delay(self) -> float:
        """Current (possibly adapted) heartbeat period [s]."""
        return self._hb_delay

    @property
    def backoff_pending(self) -> bool:
        return self._backoff_timer is not None and self._backoff_timer.active

    def __repr__(self) -> str:   # pragma: no cover - debugging aid
        subs = ",".join(sorted(str(t) for t in self._subscriptions))
        return (f"<FrugalPubSub subs=[{subs}] "
                f"events={len(self.events) if self.events else 0}>")
