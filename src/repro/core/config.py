"""Protocol tunables (paper Figures 4 and 8, Section 5.1).

All durations are in **seconds** (the paper's Fig. 4 gives the default
heartbeat delay in milliseconds — 15000 ms — which we convert).

The adaptive heartbeat machinery works as follows (Fig. 8):

* ``HBDelay`` starts at :attr:`FrugalConfig.hb_delay`,
* whenever a heartbeat is received, the process recomputes
  ``HBDelay = x / averageSpeed`` from the average speed of its (matching)
  neighbourhood plus itself, clamped to
  ``[hb_lower_bound, hb_upper_bound]``,
* the neighbourhood-GC period follows as ``NGCDelay = HBDelay * HB2NGC``,
* the back-off delay is ``HBDelay / (HB2BO * len(eventsToSend))`` — the
  more events a process has to offer, the *shorter* its back-off, so the
  best-provisioned neighbour wins the contention and the others suppress
  their (now redundant) transmissions.

Section 5.1 fixes ``x = 40``, ``HB2BO = 2`` and ``HB2NGC = 2.5`` for every
experiment, an explicit "trade-off between the overall number of messages
sent and the reliability of the dissemination".
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional


@dataclass(frozen=True)
class FrugalConfig:
    """All knobs of the frugal dissemination protocol.

    Instances are immutable; use :meth:`with_changes` (a thin
    :func:`dataclasses.replace` wrapper) to derive variants in ablations.
    """

    # -- heartbeat (phase 1) -------------------------------------------------
    hb_delay: float = 15.0
    """Initial heartbeat period [s] before any adaptation (paper: 15000 ms)."""

    x: float = 40.0
    """Numerator of the adaptive heartbeat rule ``HBDelay = x / avgSpeed``.

    The paper suggests the radio propagation radius as a natural choice;
    its experiments use 40."""

    hb_upper_bound: float = 1.0
    """Maximum heartbeat period [s] (the paper's "heartbeat upper bound",
    swept 1-5 s in Fig. 13; 1 s in every random-waypoint experiment)."""

    hb_lower_bound: float = 0.1
    """Minimum heartbeat period [s]; prevents a fast neighbourhood from
    demanding an unbounded beacon rate."""

    adaptive_heartbeat: bool = True
    """When False (ablation), the heartbeat period stays pinned to
    ``hb_upper_bound`` regardless of observed speeds."""

    hb_jitter: float = 0.05
    """Uniform per-tick jitter [s] added to heartbeats so co-located nodes
    do not beacon in lock-step (a real MAC would desynchronise them)."""

    # -- derived-delay factors (Fig. 4 / Fig. 8) ------------------------------
    hb2ngc: float = 2.5
    """``NGCDelay = HBDelay * HB2NGC`` — neighbourhood entries older than
    this are garbage collected."""

    hb2bo: float = 2.0
    """``BODelay = HBDelay / (HB2BO * len(eventsToSend))``."""

    # -- dissemination (phase 2) ----------------------------------------------
    announce_on_new_neighbor: bool = True
    """Exchange event-id lists when a matching neighbour appears (Fig. 6
    line 19-23).  Disabling this is the `abl-ids` ablation: events are then
    offered blindly, as a flooding protocol would."""

    use_backoff: bool = True
    """Apply the contention back-off before sending events.  Disabling it
    (ablation) sends immediately and loses duplicate suppression."""

    backoff_suppression: bool = True
    """Stop a pending back-off when an event of interest arrives, then
    recompute what is still missing (Fig. 9 line 22)."""

    backoff_jitter_frac: float = 0.5
    """Multiplicative back-off randomisation: the armed delay is
    ``BODelay * (1 + U(0, backoff_jitter_frac))``.  The paper's formula is
    deterministic, but competing forwarders are triggered by the *same*
    broadcast and would otherwise expire at the same instant, defeating
    the overhearing-based suppression that real 802.11 contention would
    provide.  Keeps the paper's ordering (more events => earlier send)."""

    # -- memory (phase 3) ------------------------------------------------------
    event_table_capacity: Optional[int] = 256
    """Maximum number of stored events; ``None`` means unbounded (useful in
    unit tests).  When full, the eviction policy picks a victim."""

    eviction_policy: str = "validity-forward"
    """Victim selection when the event table is full.  One of
    ``validity-forward`` (the paper's Equation 1), ``remaining-validity``,
    ``fifo``, ``random`` (the latter three are ablation baselines)."""

    neighborhood_capacity: Optional[int] = None
    """Hard bound on neighbourhood-table rows (paper footnote 5: "the
    maximum number of neighbors a process can handle").  ``None`` leaves
    the table bounded only by radio density; when set, a new neighbour
    arriving at a full table evicts the stalest row."""

    # -- misc -------------------------------------------------------------------
    speed_in_heartbeats: bool = True
    """Include the optional speed field in heartbeats (Section 3 calls it an
    optimisation; disabling it forces the static heartbeat period)."""

    def __post_init__(self) -> None:
        if self.hb_delay <= 0:
            raise ValueError(f"hb_delay must be positive: {self.hb_delay}")
        if self.x <= 0:
            raise ValueError(f"x must be positive: {self.x}")
        if self.hb_lower_bound <= 0:
            raise ValueError("hb_lower_bound must be positive")
        if self.hb_upper_bound < self.hb_lower_bound:
            raise ValueError(
                f"hb_upper_bound ({self.hb_upper_bound}) must be >= "
                f"hb_lower_bound ({self.hb_lower_bound})")
        if self.hb2ngc <= 0:
            raise ValueError(f"hb2ngc must be positive: {self.hb2ngc}")
        if self.hb2bo <= 0:
            raise ValueError(f"hb2bo must be positive: {self.hb2bo}")
        if self.hb_jitter < 0:
            raise ValueError(f"hb_jitter must be >= 0: {self.hb_jitter}")
        if self.backoff_jitter_frac < 0:
            raise ValueError(f"backoff_jitter_frac must be >= 0: "
                             f"{self.backoff_jitter_frac}")
        if (self.event_table_capacity is not None
                and self.event_table_capacity < 1):
            raise ValueError("event_table_capacity must be >= 1 or None")
        if (self.neighborhood_capacity is not None
                and self.neighborhood_capacity < 1):
            raise ValueError("neighborhood_capacity must be >= 1 or None")
        valid_policies = {"validity-forward", "remaining-validity",
                          "fifo", "random"}
        if self.eviction_policy not in valid_policies:
            raise ValueError(
                f"eviction_policy must be one of {sorted(valid_policies)}: "
                f"{self.eviction_policy!r}")

    # -- derived quantities -----------------------------------------------------

    def ngc_delay(self, hb_delay: float) -> float:
        """Neighbourhood-GC period for the current heartbeat period."""
        return hb_delay * self.hb2ngc

    def backoff_delay(self, hb_delay: float, n_events_to_send: int) -> float:
        """Back-off before sending ``n_events_to_send`` events (Fig. 8)."""
        if n_events_to_send <= 0:
            raise ValueError("back-off is only defined when there is "
                             "something to send")
        return hb_delay / (self.hb2bo * n_events_to_send)

    def adapted_hb_delay(self, average_speed: Optional[float],
                         current: float) -> float:
        """The Fig. 8 ``computeHBDelay`` rule.

        ``average_speed`` is the mean speed of the process and its matching
        neighbours, or ``None`` when no speed information is available.
        The clamp to ``[hb_lower_bound, hb_upper_bound]`` applies in every
        case (Fig. 8 lines 7-8 sit outside the conditional), so even a
        fully static network converges to the upper bound.
        """
        if not self.adaptive_heartbeat:
            return self.hb_upper_bound
        hb = current
        if average_speed is not None and average_speed > 0.0:
            hb = self.x / average_speed
        hb = min(hb, self.hb_upper_bound)
        hb = max(hb, self.hb_lower_bound)
        return hb

    def with_changes(self, **changes) -> "FrugalConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    @classmethod
    def paper_random_waypoint(cls) -> "FrugalConfig":
        """Section 5.1 settings for the random-waypoint experiments."""
        return cls(x=40.0, hb2bo=2.0, hb2ngc=2.5, hb_upper_bound=1.0)

    @classmethod
    def paper_city_section(cls, hb_upper_bound: float = 1.0) -> "FrugalConfig":
        """Section 5.1 city settings; Fig. 13 sweeps ``hb_upper_bound``."""
        return cls(x=40.0, hb2bo=2.0, hb2ngc=2.5,
                   hb_upper_bound=hb_upper_bound)
