"""Hierarchical topics and subscription matching (paper Section 2).

Topics form a tree rooted at ``.`` and are written as dot-separated paths,
e.g. ``.grenoble.conferences.middleware``.  A subscriber of a topic
receives events published on that topic *and all its subtopics*; an event
of a topic a process has not subscribed to is a *parasite* event for it.

Two relations drive the protocol:

* :func:`covers` — ``covers(sub, topic)`` is true when a subscription to
  ``sub`` entitles the subscriber to events of ``topic`` (``sub`` is an
  ancestor-or-equal of ``topic``).
* :func:`related` — true when two topics lie on one root-to-leaf path in
  either direction.  Heartbeat "subscription matching" uses this symmetric
  relation: in the paper's Fig. 1, p1 (subscribed to T1) and p2 (subscribed
  to subtopic T2) do exchange event identifiers, which only the symmetric
  reading permits (see DESIGN.md, fidelity notes).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable, Tuple


class TopicError(ValueError):
    """Raised for malformed topic strings."""


class Topic:
    """An immutable, interned node of the topic hierarchy.

    ``Topic(".a.b")`` and ``Topic(".a.b")`` compare equal and hash equally;
    the root topic is ``Topic.root()`` (written ``.``).
    """

    __slots__ = ("_parts", "_string", "__weakref__")

    def __init__(self, path: str | "Topic"):
        if isinstance(path, Topic):
            self._parts = path._parts
            self._string = path._string
            return
        self._parts = _parse(path)
        self._string = "." + ".".join(self._parts) if self._parts else "."

    # -- constructors -----------------------------------------------------------

    @staticmethod
    def root() -> "Topic":
        return Topic(".")

    @staticmethod
    def from_parts(parts: Iterable[str]) -> "Topic":
        return Topic("." + ".".join(parts))

    # -- structure ---------------------------------------------------------------

    @property
    def parts(self) -> Tuple[str, ...]:
        return self._parts

    @property
    def depth(self) -> int:
        """Number of segments below the root (root has depth 0)."""
        return len(self._parts)

    @property
    def is_root(self) -> bool:
        return not self._parts

    @property
    def parent(self) -> "Topic":
        """Immediate super-topic; the root is its own parent."""
        if self.is_root:
            return self
        return Topic.from_parts(self._parts[:-1])

    def child(self, segment: str) -> "Topic":
        """The direct subtopic named ``segment``."""
        checked = _parse("." + segment)
        if len(checked) != 1:
            raise TopicError(f"child segment must be a single name: "
                             f"{segment!r}")
        return Topic.from_parts(self._parts + checked)

    def ancestors(self) -> Iterable["Topic"]:
        """All strict super-topics, nearest first, ending at the root."""
        t = self
        while not t.is_root:
            t = t.parent
            yield t

    # -- relations ----------------------------------------------------------------

    def is_ancestor_of(self, other: "Topic") -> bool:
        """Strict ancestor test (a topic is not its own ancestor)."""
        return (len(self._parts) < len(other._parts)
                and other._parts[:len(self._parts)] == self._parts)

    def covers(self, other: "Topic") -> bool:
        """Ancestor-or-equal: a subscription to self matches ``other``."""
        return (len(self._parts) <= len(other._parts)
                and other._parts[:len(self._parts)] == self._parts)

    def related_to(self, other: "Topic") -> bool:
        """True when either topic covers the other."""
        return self.covers(other) or other.covers(self)

    # -- dunder -------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Topic) and self._parts == other._parts

    def __hash__(self) -> int:
        return hash(self._parts)

    def __lt__(self, other: "Topic") -> bool:
        return self._parts < other._parts

    def __str__(self) -> str:
        return self._string

    def __repr__(self) -> str:
        return f"Topic({self._string!r})"


@lru_cache(maxsize=4096)
def _parse(path: str) -> Tuple[str, ...]:
    if not isinstance(path, str):
        raise TopicError(f"topic must be a string: {path!r}")
    if not path.startswith("."):
        raise TopicError(f"topics are absolute and start with '.': {path!r}")
    if path == ".":
        return ()
    body = path[1:]
    if body.endswith("."):
        raise TopicError(f"topic must not end with '.': {path!r}")
    parts = tuple(body.split("."))
    for part in parts:
        if not part:
            raise TopicError(f"empty topic segment in {path!r}")
        if any(ch.isspace() for ch in part):
            raise TopicError(f"whitespace in topic segment {part!r}")
    return parts


def covers(subscription: Topic | str, topic: Topic | str) -> bool:
    """Module-level convenience for :meth:`Topic.covers`."""
    return Topic(subscription).covers(Topic(topic))


def related(a: Topic | str, b: Topic | str) -> bool:
    """Module-level convenience for :meth:`Topic.related_to`."""
    return Topic(a).related_to(Topic(b))


def subscription_matches_event(subscriptions: Iterable[Topic],
                               event_topic: Topic) -> bool:
    """Does any subscription entitle the holder to ``event_topic``?"""
    return any(sub.covers(event_topic) for sub in subscriptions)


def subscriptions_related(mine: Iterable[Topic],
                          theirs: Iterable[Topic]) -> bool:
    """The heartbeat matching rule: any cross-pair related in either way."""
    theirs = tuple(theirs)
    return any(a.related_to(b) for a in mine for b in theirs)
