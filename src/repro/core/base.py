"""Interfaces shared by the frugal protocol and the flooding baselines.

The protocol logic is written against the minimal :class:`Host` interface
rather than against the simulator directly.  That keeps the algorithm
portable (the paper stresses its algorithm is "inherently portable") and —
practically — lets unit tests drive a protocol instance with a scripted
fake host, no radio or mobility involved.
"""

from __future__ import annotations

import abc
from typing import (TYPE_CHECKING, Callable, Iterable, Optional, Protocol,
                    runtime_checkable)

from repro.core.events import Event
from repro.core.topics import Topic

if TYPE_CHECKING:  # pragma: no cover - import cycle breaker (net -> core)
    from repro.net.messages import Message


@runtime_checkable
class Host(Protocol):
    """Services a protocol instance receives from its hosting node."""

    id: int

    @property
    def now(self) -> float:
        """Current time in seconds."""

    def send(self, message: Message) -> None:
        """One-hop broadcast to whoever is in range (paper's only primitive)."""

    def schedule(self, delay: float, callback: Callable[..., None],
                 *args) -> object:
        """Arm a cancellable timer; returns a handle with ``.cancel()``."""

    def periodic(self, period: float, callback: Callable[[], None],
                 jitter: float = 0.0) -> object:
        """Start a periodic task; returns a handle with ``.stop()``,
        ``.set_period()`` and ``.period``."""

    def deliver(self, event: Event) -> None:
        """Hand an event to the application layer."""

    def current_speed(self) -> Optional[float]:
        """Own speed in m/s, or ``None`` if no tachometer is available."""

    @property
    def rng(self):
        """Node-local random stream (protocol jitter decisions)."""


class PubSubProtocol(abc.ABC):
    """Topic-based pub/sub protocol driver interface.

    Lifecycle: ``attach(host)`` -> ``on_start()`` -> (subscribe/publish/
    on_message)* -> ``on_stop()``.
    """

    def __init__(self) -> None:
        self.host: Optional[Host] = None

    # -- lifecycle ------------------------------------------------------------

    def attach(self, host: Host) -> None:
        if self.host is not None:
            raise RuntimeError("protocol already attached to a host")
        self.host = host

    def on_start(self) -> None:
        """Called once when the node boots."""

    def on_stop(self) -> None:
        """Called when the node shuts down or crashes."""

    # -- application-facing API --------------------------------------------------

    @abc.abstractmethod
    def subscribe(self, topic: Topic | str) -> None:
        """Register interest in ``topic`` and all its subtopics."""

    @abc.abstractmethod
    def unsubscribe(self, topic: Topic | str) -> None:
        """Drop interest in ``topic``."""

    @abc.abstractmethod
    def publish(self, event: Event) -> None:
        """Inject a locally produced event into the dissemination."""

    @property
    @abc.abstractmethod
    def subscriptions(self) -> frozenset[Topic]:
        """Current subscription set."""

    # -- network-facing API ---------------------------------------------------------

    @abc.abstractmethod
    def on_message(self, message: Message) -> None:
        """Handle a frame received from the broadcast medium."""
