"""Interfaces shared by the frugal protocol and the flooding baselines.

The protocol logic is written against the minimal :class:`Host` interface
rather than against the simulator directly.  That keeps the algorithm
portable (the paper stresses its algorithm is "inherently portable") and —
practically — lets unit tests drive a protocol instance with a scripted
fake host, no radio or mobility involved.

Every protocol also carries one :class:`ProtocolCounters` instance — the
unified per-layer observability counters.  Historically each protocol
duplicated its own counter fields; the stack layers
(:mod:`repro.core.stack`) all write into the single shared dataclass, and
:class:`PubSubProtocol` exposes the historical flat attribute names
(``delivered_count`` & co.) as read-only properties over it.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, fields
from typing import (TYPE_CHECKING, Callable, Dict, Iterable, Optional,
                    Protocol, runtime_checkable)

from repro.core.events import Event
from repro.core.topics import Topic

if TYPE_CHECKING:  # pragma: no cover - import cycle breaker (net -> core)
    from repro.net.messages import Message


@runtime_checkable
class Host(Protocol):
    """Services a protocol instance receives from its hosting node."""

    id: int

    @property
    def now(self) -> float:
        """Current time in seconds."""

    def send(self, message: Message) -> None:
        """One-hop broadcast to whoever is in range (paper's only primitive)."""

    def schedule(self, delay: float, callback: Callable[..., None],
                 *args) -> object:
        """Arm a cancellable timer; returns a handle with ``.cancel()``
        and an ``.active`` property (pending: not fired, not
        cancelled).  Both sides of the contract are load-bearing — the
        forwarding layer polls ``.active`` to dedupe its backoff timer —
        so every Host implementation (sim ``Timer``, rt ``RtTimer``)
        must provide them."""

    def periodic(self, period: float, callback: Callable[[], None],
                 jitter: float = 0.0) -> object:
        """Start a periodic task; returns a handle with ``.stop()``,
        ``.set_period()``, ``.period`` and a ``.running`` property
        (true until stopped).  The membership layer reads ``.running``
        and re-tunes via ``.set_period()`` (effective from the next
        re-arm), so every Host implementation must honour all four."""

    def deliver(self, event: Event) -> None:
        """Hand an event to the application layer."""

    def current_speed(self) -> Optional[float]:
        """Own speed in m/s, or ``None`` if no tachometer is available."""

    @property
    def rng(self):
        """Node-local random stream (protocol jitter decisions)."""


@dataclass
class ProtocolCounters:
    """Unified protocol-level observability counters.

    One instance per protocol stack; every layer (membership, delivery,
    forwarding) increments the same object, so the historical duplicated
    counter fields collapse into a single picklable dataclass that
    results and metrics can snapshot (``MetricsCollector``
    ``capture_protocol_totals``).  All counts are monotonically
    increasing and survive ``on_stop`` (a crashed process keeps its
    lifetime tallies, matching the pre-stack behaviour).
    """

    heartbeats_sent: int = 0
    id_lists_sent: int = 0
    batches_sent: int = 0
    events_forwarded: int = 0
    delivered_count: int = 0
    duplicates_dropped: int = 0
    parasites_dropped: int = 0

    def add(self, other: "ProtocolCounters") -> "ProtocolCounters":
        """Accumulate ``other`` into this instance (returns ``self``)."""
        for f in fields(self):
            setattr(self, f.name,
                    getattr(self, f.name) + getattr(other, f.name))
        return self

    def minus(self, other: "ProtocolCounters") -> "ProtocolCounters":
        """A fresh instance holding ``self - other`` per field.

        Used to window monotonically increasing counters: snapshot at
        window start, subtract from the end-of-window totals.
        """
        out = ProtocolCounters()
        for f in fields(self):
            setattr(out, f.name,
                    getattr(self, f.name) - getattr(other, f.name))
        return out

    @classmethod
    def total(cls, counters: Iterable["ProtocolCounters"]
              ) -> "ProtocolCounters":
        """Sum a collection of counter sets into a fresh instance."""
        out = cls()
        for c in counters:
            out.add(c)
        return out

    def as_dict(self) -> Dict[str, int]:
        """Flat ``{field: value}`` view (stable field order)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


class PubSubProtocol(abc.ABC):
    """Topic-based pub/sub protocol driver interface.

    Lifecycle: ``attach(host)`` -> ``on_start()`` -> (subscribe/publish/
    on_message)* -> ``on_stop()`` -> [``detach()`` -> ``attach(...)``].
    Attach/detach are symmetric: attaching twice raises, detaching an
    unattached protocol raises, and a detached protocol raises on any
    use that needs a host — but it may be re-attached (the clean path
    for moving a protocol instance between hosts across crash/recover
    cycles).
    """

    def __init__(self) -> None:
        self.host: Optional[Host] = None
        self.counters = ProtocolCounters()

    # -- lifecycle ------------------------------------------------------------

    def attach(self, host: Host) -> None:
        """Bind this protocol to ``host``; raises if already attached."""
        if self.host is not None:
            raise RuntimeError("protocol already attached to a host")
        self.host = host

    def detach(self) -> None:
        """Sever the host binding; raises if not attached or running.

        The symmetric inverse of :meth:`attach`: after a detach the
        protocol holds no reference to its old host and may be attached
        to a new one.  A *running* protocol must :meth:`on_stop` first —
        its periodic tasks and timers are registered with the old host's
        scheduler and would fire into a dead binding otherwise — and a
        detached protocol errors on any host-needing use.
        """
        if self.host is None:
            raise RuntimeError("protocol is not attached to a host")
        if getattr(self, "_running", False):
            raise RuntimeError("stop the protocol (on_stop) before "
                               "detaching it")
        self.host = None

    def _require_attached(self) -> Host:
        """The current host, or a clean error for use-after-detach."""
        if self.host is None:
            raise RuntimeError("protocol is not attached to a host")
        return self.host

    def on_start(self) -> None:
        """Called once when the node boots."""

    def on_stop(self) -> None:
        """Called when the node shuts down or crashes."""

    # -- unified counters (historical flat attribute names) -----------------------

    @property
    def heartbeats_sent(self) -> int:
        """Heartbeat beacons put on the air."""
        return self.counters.heartbeats_sent

    @property
    def id_lists_sent(self) -> int:
        """Event-identifier announcements sent to new neighbours."""
        return self.counters.id_lists_sent

    @property
    def batches_sent(self) -> int:
        """Event batches put on the air."""
        return self.counters.batches_sent

    @property
    def events_forwarded(self) -> int:
        """Events carried by those batches (one batch may carry many)."""
        return self.counters.events_forwarded

    @property
    def delivered_count(self) -> int:
        """Events handed to the application layer."""
        return self.counters.delivered_count

    @property
    def duplicates_dropped(self) -> int:
        """Received copies of already-held events, dropped."""
        return self.counters.duplicates_dropped

    @property
    def parasites_dropped(self) -> int:
        """Received events of no subscribed topic, dropped."""
        return self.counters.parasites_dropped

    # -- application-facing API --------------------------------------------------

    @abc.abstractmethod
    def subscribe(self, topic: Topic | str) -> None:
        """Register interest in ``topic`` and all its subtopics."""

    @abc.abstractmethod
    def unsubscribe(self, topic: Topic | str) -> None:
        """Drop interest in ``topic``."""

    @abc.abstractmethod
    def publish(self, event: Event) -> None:
        """Inject a locally produced event into the dissemination."""

    @property
    @abc.abstractmethod
    def subscriptions(self) -> frozenset[Topic]:
        """Current subscription set."""

    # -- network-facing API ---------------------------------------------------------

    @abc.abstractmethod
    def on_message(self, message: Message) -> None:
        """Handle a frame received from the broadcast medium."""
