"""The paper's primary contribution: the frugal topic-based pub/sub protocol.

Layout:

* :mod:`repro.core.topics` — hierarchical dot-separated topics and
  subscription matching,
* :mod:`repro.core.events` — events with identifiers, validity periods and
  forward counters,
* :mod:`repro.core.tables` — the two memory-bounded data structures of
  Section 4.1 (neighborhood table, event table) plus the events-to-send
  buffer,
* :mod:`repro.core.gc` — event-table eviction policies, including the
  paper's Equation 1,
* :mod:`repro.core.config` — protocol tunables (HBDelay, x, HB2BO, HB2NGC
  and friends, Section 4/5.1),
* :mod:`repro.core.base` — the protocol/host interfaces shared with the
  flooding baselines, plus the unified per-stack counters,
* :mod:`repro.core.stack` — the composable membership / store /
  delivery / forwarding layers every protocol is assembled from,
* :mod:`repro.core.registry` — the string-keyed protocol registry the
  harness dispatches through,
* :mod:`repro.core.protocol` — the three-phase frugal dissemination
  algorithm itself (Sections 4.2-4.4), composed from the stack layers.
"""

from repro.core.topics import Topic, TopicError, covers, related
from repro.core.events import Event, EventId
from repro.core.config import FrugalConfig
from repro.core.tables import (NeighborhoodTable, NeighborEntry, EventTable,
                               EventTableFull)
from repro.core.gc import (EvictionPolicy, ValidityForwardPolicy, FifoPolicy,
                           RandomPolicy, RemainingValidityPolicy, gc_score)
from repro.core.base import PubSubProtocol, Host, ProtocolCounters
from repro.core.registry import ProtocolEntry, ProtocolRegistry, REGISTRY
from repro.core.protocol import FrugalPubSub

__all__ = [
    "Topic",
    "TopicError",
    "covers",
    "related",
    "Event",
    "EventId",
    "FrugalConfig",
    "NeighborhoodTable",
    "NeighborEntry",
    "EventTable",
    "EventTableFull",
    "EvictionPolicy",
    "ValidityForwardPolicy",
    "FifoPolicy",
    "RandomPolicy",
    "RemainingValidityPolicy",
    "gc_score",
    "PubSubProtocol",
    "Host",
    "ProtocolCounters",
    "ProtocolEntry",
    "ProtocolRegistry",
    "REGISTRY",
    "FrugalPubSub",
]
