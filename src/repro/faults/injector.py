"""The per-world fault driver and the availability record it produces.

The :class:`FaultInjector` is the fault twin of the
:class:`~repro.metrics.collector.MetricsCollector` and the
:class:`~repro.energy.collector.EnergyAccountant`: one per simulated
world, wired by ``build_world`` when the scenario carries a
:class:`FaultConfig`.  At arm time it schedules every declarative
:class:`~repro.faults.plan.FaultEvent`, starts the per-node churn
renewal processes, books the regional outages and installs the link-loss
model on the medium — all as ordinary kernel timers, so serial, parallel
and cached runs replay the identical fault trace.

Every availability transition the injector causes is recorded in a
:class:`FaultTimeline` — plain picklable data that travels with the
:class:`~repro.harness.scenario.ScenarioResult` and feeds the
churn-aware metrics (availability, delivery-under-churn denominators,
recovery latency).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.faults.churn import ChurnConfig
from repro.faults.loss import LinkLossConfig, LinkLossProcess
from repro.faults.outage import RegionalOutage
from repro.faults.plan import FaultEvent, FaultPlan
from repro.net.medium import WirelessMedium
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.space import Vec2

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import Node


@dataclass(frozen=True)
class FaultConfig:
    """Everything the harness needs to fault-instrument a scenario.

    All four components default to "off"; an *empty* ``FaultConfig()``
    is a strict no-op whose results are bit-identical to ``faults=None``
    (asserted by the paired-verification tests), which is what lets
    experiments add the availability columns to every row of a sweep
    that only churns some cells.
    """

    plan: FaultPlan = field(default_factory=FaultPlan)
    churn: Optional[ChurnConfig] = None
    outages: Tuple[RegionalOutage, ...] = ()
    loss: Optional[LinkLossConfig] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "outages", tuple(self.outages))

    def validate(self, duration: float, n_processes: int) -> None:
        """Cross-check the config against one scenario's window/population."""
        self.plan.validate(duration, n_processes)
        if self.churn is not None and self.churn.start_at >= duration:
            raise ValueError(
                f"churn start_at {self.churn.start_at}s falls outside "
                f"the measurement window [0, {duration})")
        for outage in self.outages:
            outage.validate(duration)


@dataclass
class FaultTimeline:
    """What the injector actually did: per-node down intervals.

    Times are absolute simulation seconds; ``window`` is the measurement
    window ``(start, end)``.  Intervals record *fault-induced*
    unavailability (crash, silence, drain, churn, outage) — duty-cycle
    sleep and battery deaths caused by the energy subsystem are not
    faults and are not recorded here.
    """

    window: Tuple[float, float]
    n_nodes: int
    down_intervals: Dict[int, List[Tuple[float, float]]] = \
        field(default_factory=dict)
    recoveries: List[Tuple[float, int]] = field(default_factory=list)
    down_transitions: int = 0
    outages: List[Tuple[float, int]] = field(default_factory=list)

    def _clipped(self, interval: Tuple[float, float]) -> float:
        start, end = self.window
        s, e = interval
        return max(0.0, min(e, end) - max(s, start))

    def downtime_s(self, node_id: int) -> float:
        """Seconds of the window this node spent fault-downed."""
        return sum(self._clipped(iv)
                   for iv in self.down_intervals.get(node_id, ()))

    def total_downtime_s(self) -> float:
        """Node-seconds of downtime across the whole population."""
        return sum(self.downtime_s(i) for i in self.down_intervals)

    def mean_downtime_s(self) -> float:
        """Mean per-node downtime over the window, seconds."""
        if self.n_nodes == 0:
            return 0.0
        return self.total_downtime_s() / self.n_nodes

    def availability(self) -> float:
        """Mean fraction of the window the population was up."""
        start, end = self.window
        span = end - start
        if span <= 0 or self.n_nodes == 0:
            return 1.0
        return 1.0 - self.total_downtime_s() / (self.n_nodes * span)

    def was_up_during(self, node_id: int, start: float,
                      end: float) -> bool:
        """Was the node up at any point of ``[start, end]``?

        This is the churn-aware *denominator* predicate: a subscriber
        that was down for an event's entire validity window could never
        have received it and is excluded from that event's reliability
        denominator.
        """
        if end <= start:
            return False
        covered = 0.0
        for s, e in self.down_intervals.get(node_id, ()):
            covered += max(0.0, min(e, end) - max(s, start))
        return covered < (end - start) - 1e-9

    def down_count_at(self, t: float) -> int:
        """How many nodes were fault-downed at instant ``t``."""
        return sum(1 for intervals in self.down_intervals.values()
                   if any(s <= t < e for s, e in intervals))


class FaultInjector:
    """Drive one world's fault schedule off the simulation clock.

    Parameters
    ----------
    sim, medium, nodes:
        The world being faulted (as built by ``build_world``).
    rngs:
        The scenario's :class:`RngRegistry`; the injector only ever
        touches ``("faults", ...)`` streams, so arming it never perturbs
        mobility, protocol or medium draws.
    config:
        The declarative :class:`FaultConfig`.
    start, horizon:
        Absolute simulation times bounding the measurement window; all
        fault times are offsets from ``start``.
    population:
        The *global* node-id population fault fractions are resolved
        against.  Defaults to the ids of ``nodes``; the sharded engine
        passes the whole world's ids so every shard samples identical
        targets from the shared ``("faults", ...)`` streams and then
        applies only the locally resident ones.
    per_receiver_loss_rng:
        Optional per-receiver reception-stream factory forwarded to
        :class:`LinkLossProcess` (see its docstring); ``None`` keeps the
        classic single shared stream.
    """

    def __init__(self, sim: Simulator, medium: WirelessMedium,
                 nodes: Sequence["Node"], rngs: RngRegistry,
                 config: FaultConfig, start: float, horizon: float,
                 population: Optional[Sequence[int]] = None,
                 per_receiver_loss_rng=None):
        self.sim = sim
        self.medium = medium
        self.config = config
        self.start = start
        self.horizon = horizon
        self._rngs = rngs
        self._nodes: Dict[int, "Node"] = {n.id: n for n in nodes}
        self._population: List[int] = (
            sorted(self._nodes) if population is None
            else sorted(population))
        self._per_receiver_loss_rng = per_receiver_loss_rng
        self._down_since: Dict[int, float] = {}
        self._armed = False
        self.timeline = FaultTimeline(window=(start, horizon),
                                      n_nodes=len(self._nodes))
        self.loss_process: Optional[LinkLossProcess] = None

    # -- arming ---------------------------------------------------------------

    def arm(self) -> None:
        """Schedule the whole fault programme (idempotence guarded)."""
        if self._armed:
            raise RuntimeError("fault injector already armed")
        self._armed = True
        self._arm_plan()
        if self.config.churn is not None:
            self._arm_churn(self.config.churn)
        for outage in self.config.outages:
            self.sim.call_at(self.start + outage.at,
                             self._begin_outage, outage)
        if self.config.loss is not None and self.config.loss.enabled:
            self.loss_process = LinkLossProcess(
                self.sim, self.config.loss,
                reception_rng=self._rngs.stream("faults", "loss"),
                burst_rng=self._rngs.stream("faults", "burst"),
                root_seed=self._rngs.root_seed,
                per_receiver_rng=self._per_receiver_loss_rng)
            self.loss_process.arm(self.start, self.horizon)
            self.medium.extra_loss = self.loss_process

    def _arm_plan(self) -> None:
        for event in self.config.plan.events:
            ids = self._resolve_targets(event)
            self.sim.call_at(self.start + event.at,
                             self._fire, event.kind, ids)
            if event.duration is not None:
                self.sim.call_at(self.start + event.at + event.duration,
                                 self._fire, event.undo_kind, ids)

    def _resolve_targets(self, event: FaultEvent) -> List[int]:
        """Targets of one plan event, resolved deterministically at arm
        time (fractions draw from the ``("faults", "targets")`` stream
        in plan order)."""
        if event.nodes:
            return sorted(event.nodes)
        population = self._population
        count = max(1, round(event.fraction * len(population)))
        rng = self._rngs.stream("faults", "targets")
        return sorted(rng.sample(population, count))

    # -- plan execution -------------------------------------------------------

    def _fire(self, kind: str, ids: Sequence[int]) -> None:
        for node_id in ids:
            node = self._nodes.get(node_id)
            if node is not None:
                self._apply(kind, node)

    def _apply(self, kind: str, node: "Node") -> None:
        if kind == "crash":
            node.crash()
        elif kind == "recover":
            node.recover()
        elif kind == "silence":
            node.silence()
        elif kind == "restore":
            node.unsilence()
        elif kind == "drain":
            node.power_down()
        else:  # pragma: no cover - kinds validated at construction
            raise ValueError(f"unknown fault kind {kind!r}")
        self._note_state(node)

    def _note_state(self, node: "Node") -> None:
        """Record an availability transition, if this action caused one."""
        now = self.sim.now
        available = node.alive and not node.silenced
        since = self._down_since.get(node.id)
        if available and since is not None:
            self.timeline.down_intervals.setdefault(
                node.id, []).append((since, now))
            del self._down_since[node.id]
            self.timeline.recoveries.append((now, node.id))
        elif not available and since is None:
            self._down_since[node.id] = now
            self.timeline.down_transitions += 1

    # -- churn ----------------------------------------------------------------

    def _arm_churn(self, churn: ChurnConfig) -> None:
        population = self._population
        if churn.fraction < 1.0:
            count = max(1, round(churn.fraction * len(population)))
            rng = self._rngs.stream("faults", "churn-members")
            population = sorted(rng.sample(population, count))
        for node_id in population:
            if node_id not in self._nodes:
                # Sharded worlds: the membership draw covers the global
                # population, but a shard only drives its own residents.
                # Skipping is draw-safe — session/rest times come from
                # this node's private ("faults", "churn", id) stream.
                continue
            stream = self._rngs.stream("faults", "churn", node_id)
            first = (self.start + churn.start_at
                     + churn.draw(stream, churn.mean_session_s))
            if first <= self.horizon:
                self.sim.call_at(first, self._churn_leave, node_id)

    def _churn_leave(self, node_id: int) -> None:
        churn = self.config.churn
        node = self._nodes.get(node_id)
        if node is not None and not node.depleted:
            self._apply("crash", node)
        stream = self._rngs.stream("faults", "churn", node_id)
        back = self.sim.now + churn.draw(stream, churn.mean_rest_s)
        if back <= self.horizon:
            self.sim.call_at(back, self._churn_rejoin, node_id)

    def _churn_rejoin(self, node_id: int) -> None:
        churn = self.config.churn
        node = self._nodes.get(node_id)
        if node is not None and not node.depleted:
            self._apply("recover", node)
        stream = self._rngs.stream("faults", "churn", node_id)
        nxt = self.sim.now + churn.draw(stream, churn.mean_session_s)
        if nxt <= self.horizon:
            self.sim.call_at(nxt, self._churn_leave, node_id)

    # -- regional outages -----------------------------------------------------

    def _begin_outage(self, outage: RegionalOutage) -> None:
        center = Vec2(outage.center[0], outage.center[1])
        members = self.medium.nodes_within(center, outage.radius_m)
        kind = "crash" if outage.kind == "crash" else "silence"
        hit: List[int] = []
        for node in members:
            # A node the outage actually touched gets the matching undo
            # at window end.  Both kinds only act on live processes
            # (crashing a crashed node is a no-op, a dead radio cannot
            # be jammed), so nodes already downed by *another* mechanism
            # — churn, a plan crash — are left for that mechanism's own
            # recovery.  A silenced-but-alive node IS touched: a crash
            # outage kills and later restarts it (its silence window
            # keeps the radio off until its own restore), and silence
            # windows nest via Node._silence_depth.
            was_alive = node.alive
            self._apply(kind, node)
            if was_alive:
                hit.append(node.id)
        self.timeline.outages.append((self.sim.now, len(hit)))
        undo = "recover" if kind == "crash" else "restore"
        self.sim.schedule(outage.duration, self._fire, undo, hit)

    # -- lifecycle ------------------------------------------------------------

    def finalize(self) -> None:
        """Close every still-open down interval at the current instant
        (end of run); nodes that never came back count as down through
        the window end."""
        now = self.sim.now
        for node_id, since in sorted(self._down_since.items()):
            self.timeline.down_intervals.setdefault(
                node_id, []).append((since, now))
        self._down_since.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<FaultInjector nodes={len(self._nodes)} "
                f"transitions={self.timeline.down_transitions}>")
