"""Message-loss models layered on the wireless medium.

The medium's own ``frame_loss_probability`` is a single uniform knob.
Real degraded channels are lumpier, in two ways this module models:

* **per-link loss** — every directed ``(sender, receiver)`` link gets its
  own loss probability, drawn once per run from
  ``U(link_loss_min, link_loss_max)`` with a seed derived from the link's
  endpoints (``derive_seed``), so the draw is stable across processes and
  independent of reception order;
* **loss bursts** — network-wide interference bursts arrive as a Poisson
  process (``burst_rate_per_s``) with exponential durations; while a
  burst is active every reception is additionally dropped with
  ``burst_loss_probability``.

The model is installed as the medium's ``extra_loss`` hook by the
:class:`~repro.faults.injector.FaultInjector`; with no fault config the
hook stays ``None`` and the delivery path is byte-identical to before.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.sim.kernel import Simulator
from repro.sim.rng import derive_seed


@dataclass(frozen=True)
class LinkLossConfig:
    """Per-link and burst loss knobs (all off by default)."""

    link_loss_min: float = 0.0
    link_loss_max: float = 0.0
    burst_rate_per_s: float = 0.0
    burst_mean_duration_s: float = 0.0
    burst_loss_probability: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.link_loss_min <= self.link_loss_max <= 1.0:
            raise ValueError("need 0 <= link_loss_min <= link_loss_max "
                             "<= 1")
        if self.burst_rate_per_s < 0:
            raise ValueError("burst_rate_per_s must be >= 0")
        if self.burst_rate_per_s > 0 and self.burst_mean_duration_s <= 0:
            raise ValueError("bursts need a positive "
                             "burst_mean_duration_s")
        if not 0.0 <= self.burst_loss_probability <= 1.0:
            raise ValueError("burst_loss_probability must be in [0, 1]")

    @property
    def enabled(self) -> bool:
        """True when any loss mechanism is configured."""
        return self.link_loss_max > 0.0 or self.burst_rate_per_s > 0.0


class LinkLossProcess:
    """Runtime state of a :class:`LinkLossConfig` on one simulation.

    Callable as ``process(sender_id, receiver_id) -> bool`` (True =
    drop), which is exactly the medium's ``extra_loss`` hook signature.
    Reception-time Bernoulli draws come from the dedicated
    ``("faults", "loss")`` stream; burst arrivals from
    ``("faults", "burst")``; per-link probabilities from per-link derived
    seeds — three independent streams, so none perturbs the others.

    ``per_receiver_rng`` (optional) replaces the single shared reception
    stream with one stream *per receiver*: each draw then depends only on
    that receiver's own reception history, never on interleaving with
    other receivers' draws.  The sharded-execution engine needs this —
    reception order across shards is a merge artefact, so a shared
    stream would make verdicts depend on the shard count.
    """

    def __init__(self, sim: Simulator, config: LinkLossConfig,
                 reception_rng, burst_rng, root_seed: int,
                 per_receiver_rng: Optional[
                     Callable[[int], random.Random]] = None):
        self.sim = sim
        self.config = config
        self._rng = reception_rng
        self._burst_rng = burst_rng
        self._per_receiver = per_receiver_rng
        self._root_seed = root_seed
        self._link_p: Dict[Tuple[int, int], float] = {}
        self._burst_until = -math.inf
        self.bursts_started = 0

    def arm(self, start: float, horizon: float) -> None:
        """Schedule the burst arrival process over ``[start, horizon]``."""
        self._horizon = horizon
        if self.config.burst_rate_per_s > 0.0:
            first = start + self._burst_rng.expovariate(
                self.config.burst_rate_per_s)
            if first <= horizon:
                self.sim.call_at(first, self._begin_burst)

    def _begin_burst(self) -> None:
        now = self.sim.now
        length = self._burst_rng.expovariate(
            1.0 / self.config.burst_mean_duration_s)
        self._burst_until = max(self._burst_until, now + length)
        self.bursts_started += 1
        nxt = now + self._burst_rng.expovariate(
            self.config.burst_rate_per_s)
        if nxt <= self._horizon:
            self.sim.call_at(nxt, self._begin_burst)

    def link_probability(self, sender_id: int, receiver_id: int) -> float:
        """This directed link's per-reception loss probability."""
        lo, hi = self.config.link_loss_min, self.config.link_loss_max
        if lo == hi:
            return lo
        key = (sender_id, receiver_id)
        p = self._link_p.get(key)
        if p is None:
            p = random.Random(derive_seed(
                self._root_seed, "faults", "link",
                sender_id, receiver_id)).uniform(lo, hi)
            self._link_p[key] = p
        return p

    @property
    def in_burst(self) -> bool:
        """True while an interference burst is active."""
        return self.sim.now < self._burst_until

    def __call__(self, sender_id: int, receiver_id: int) -> bool:
        """Decide one reception: True drops the frame."""
        rng = (self._rng if self._per_receiver is None
               else self._per_receiver(receiver_id))
        p = self.link_probability(sender_id, receiver_id)
        if p > 0.0 and rng.random() < p:
            return True
        if self.in_burst and \
                rng.random() < self.config.burst_loss_probability:
            return True
        return False
