"""Population churn: processes leave and rejoin the network stochastically.

Each churned node runs an alternating renewal process on the simulation
clock: up for a *session*, fail-stopped for a *rest*, repeating until the
measurement window ends.  Every node draws its session/rest lengths from
its **own** named RNG stream (``("faults", "churn", node_id)``), so

* the same seed reproduces the same join/leave trace bit-for-bit,
* adding or removing one churned node never shifts another node's draws,
  and
* serial and parallel sweeps agree exactly (the draws are independent of
  kernel event interleaving).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Supported session/rest length distributions.
CHURN_DISTRIBUTIONS = ("exponential", "fixed")


@dataclass(frozen=True)
class ChurnConfig:
    """Stochastic join/leave behaviour for (a fraction of) the population.

    With the default ``exponential`` distribution, leaves form a Poisson
    process of rate ``1 / mean_session_s`` per up node, and rejoins one of
    rate ``1 / mean_rest_s`` per down node — the classic churn model.
    ``fixed`` substitutes deterministic session/rest lengths (useful for
    reproducible unit tests and worst-case synchronised churn).
    """

    mean_session_s: float
    mean_rest_s: float
    fraction: float = 1.0
    start_at: float = 0.0
    distribution: str = "exponential"

    def __post_init__(self) -> None:
        if self.mean_session_s <= 0:
            raise ValueError("mean_session_s must be positive")
        if self.mean_rest_s <= 0:
            raise ValueError("mean_rest_s must be positive")
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1]: {self.fraction}")
        if self.start_at < 0:
            raise ValueError("start_at must be >= 0")
        if self.distribution not in CHURN_DISTRIBUTIONS:
            raise ValueError(f"distribution must be one of "
                             f"{CHURN_DISTRIBUTIONS}: {self.distribution!r}")

    def draw(self, rng, mean_s: float) -> float:
        """One session or rest length in seconds from ``rng``."""
        if self.distribution == "exponential":
            return rng.expovariate(1.0 / mean_s)
        return mean_s                       # "fixed"

    @property
    def leave_rate_per_min(self) -> float:
        """Expected leaves per churned node per minute (rate view)."""
        return 60.0 / self.mean_session_s
