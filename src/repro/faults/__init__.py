"""Fault and churn injection: availability as a first-class scenario axis.

The paper's system model lets processes "crash (or recover) at any time"
over a collision-prone medium (Section 2).  This subpackage turns that
sentence into a seed-deterministic subsystem driven entirely off the
simulation clock, so any scenario — and therefore any experiment or
figure — can run under failures:

* :mod:`repro.faults.plan` — declarative :class:`FaultPlan` /
  :class:`FaultEvent` schedules (crash, recover, silence, restore,
  drain) targeting explicit node ids or population fractions,
* :mod:`repro.faults.churn` — stochastic population churn: alternating
  session/rest renewal processes per node, each drawing from its own
  :class:`~repro.sim.rng.RngRegistry` stream so results are
  bit-reproducible and cache-keyable,
* :mod:`repro.faults.outage` — regional outages/jamming: every node
  inside a spatial region (resolved through the medium's
  :class:`~repro.sim.space.SpatialGrid`) loses its radio for a window,
* :mod:`repro.faults.loss` — per-link and burst message-loss models
  layered on the :class:`~repro.net.medium.WirelessMedium`,
* :mod:`repro.faults.injector` — the per-world driver
  (:class:`FaultInjector`) that schedules all of the above and records
  the :class:`FaultTimeline` the availability metrics are computed from.

A scenario opts in via ``ScenarioConfig.faults``; with ``faults=None``
nothing here is imported into the run path and every result is
bit-identical to a fault-free build (the paired-verification tests in
``tests/test_faults.py`` assert exactly that for the *empty*
:class:`FaultConfig` too).
"""

from repro.faults.churn import ChurnConfig
from repro.faults.injector import FaultConfig, FaultInjector, FaultTimeline
from repro.faults.loss import LinkLossConfig, LinkLossProcess
from repro.faults.outage import RegionalOutage
from repro.faults.plan import FAULT_KINDS, FaultEvent, FaultPlan

__all__ = [
    "FAULT_KINDS",
    "ChurnConfig",
    "FaultConfig",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultTimeline",
    "LinkLossConfig",
    "LinkLossProcess",
    "RegionalOutage",
]
