"""Regional outages: a spatial area loses its radios for a window.

Models localised disruptions — a jammed conference hall, a powered-down
city block, a tunnel — as a circular region whose member nodes all fail
at the same instant and come back ``duration`` seconds later.  Membership
is resolved *at outage start* against the nodes' exact positions (via the
medium's :class:`~repro.sim.space.SpatialGrid` when the spatial index is
active), so a node that drives into the region mid-outage is unaffected
and a member that drives out stays down until the outage lifts — the
radio was hit, not the coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

#: How a regional outage takes its members down.
#:
#: ``silence`` — radios jammed: deaf and mute, protocol state survives,
#:              queued frames flush when the outage lifts.
#: ``crash``   — fail-stop: members lose all volatile state and restart
#:              empty when the outage lifts (a regional power cut).
OUTAGE_KINDS = ("silence", "crash")


@dataclass(frozen=True)
class RegionalOutage:
    """One circular outage window.

    ``at`` is seconds after the start of the measurement window;
    ``center`` is in world coordinates (metres), matching the mobility
    area.  Every node whose exact position lies within ``radius_m`` of
    ``center`` at outage start is taken down for ``duration`` seconds.
    """

    at: float
    duration: float
    center: Tuple[float, float]
    radius_m: float
    kind: str = "silence"

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError(f"outage at {self.at}s precedes the "
                             f"measurement window")
        if self.duration <= 0:
            raise ValueError("outage duration must be positive")
        if self.radius_m <= 0:
            raise ValueError("outage radius_m must be positive")
        if len(self.center) != 2:
            raise ValueError(f"center must be (x, y): {self.center!r}")
        if self.kind not in OUTAGE_KINDS:
            raise ValueError(f"kind must be one of {OUTAGE_KINDS}: "
                             f"{self.kind!r}")

    def validate(self, duration: float) -> None:
        """Check the outage starts inside the measurement window."""
        if self.at >= duration:
            raise ValueError(
                f"outage at {self.at}s falls outside the measurement "
                f"window [0, {duration})")
