"""Declarative fault schedules: who fails how, and when.

A :class:`FaultPlan` is a tuple of :class:`FaultEvent` entries, each
firing at a fixed offset from the start of the measurement window (the
same time base as :class:`~repro.harness.scenario.Publication`).  Plans
are frozen dataclasses: they pickle, hash into the result-cache key via
``harness.cache.canonical`` and compare by value, so two configs with
different plans can never collide in the cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

#: The supported fault kinds.
#:
#: ``crash``    — fail-stop: the process loses all volatile state, its
#:               radio goes deaf and mute (paper Section 2).
#: ``recover``  — restart a crashed process with empty state.
#: ``silence``  — the radio goes down but the process survives: deaf and
#:               mute, outbound frames queue until ``restore`` (jamming /
#:               radio-off semantics, distinct from a crash).
#: ``restore``  — bring a silenced radio back up, flushing queued frames.
#: ``drain``    — battery death: permanent fail-stop, the node leaves the
#:               medium and cannot recover (``Node.power_down``).
FAULT_KINDS = ("crash", "recover", "silence", "restore", "drain")

#: Kinds that accept a ``duration`` (the matching undo is scheduled
#: automatically: crash -> recover, silence -> restore).
_UNDOABLE = {"crash": "recover", "silence": "restore"}


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    ``at`` is seconds after the start of the measurement window.  Targets
    are either explicit ``nodes`` ids or a population ``fraction`` drawn
    deterministically from the dedicated ``("faults", "targets")`` RNG
    stream (exactly one of the two must be given).  For ``crash`` and
    ``silence``, an optional ``duration`` schedules the matching
    ``recover``/``restore`` automatically.
    """

    at: float
    kind: str
    nodes: Tuple[int, ...] = ()
    fraction: Optional[float] = None
    duration: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"kind must be one of {FAULT_KINDS}: "
                             f"{self.kind!r}")
        if self.at < 0:
            raise ValueError(f"fault at {self.at}s precedes the "
                             f"measurement window")
        has_nodes = len(self.nodes) > 0
        has_fraction = self.fraction is not None
        if has_nodes == has_fraction:
            raise ValueError("target exactly one of nodes=... or "
                             "fraction=...")
        if has_nodes and any(n < 0 for n in self.nodes):
            raise ValueError(f"node ids must be >= 0: {self.nodes}")
        if has_fraction and not 0.0 < self.fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1]: {self.fraction}")
        if self.duration is not None:
            if self.kind not in _UNDOABLE:
                raise ValueError(f"{self.kind!r} events cannot carry a "
                                 f"duration (nothing to undo)")
            if self.duration <= 0:
                raise ValueError(f"duration must be positive: "
                                 f"{self.duration}")

    @property
    def undo_kind(self) -> Optional[str]:
        """The kind that reverses this event, or ``None``."""
        return _UNDOABLE.get(self.kind)


@dataclass(frozen=True)
class FaultPlan:
    """An ordered schedule of :class:`FaultEvent` entries.

    Events firing at the same instant apply in tuple order (the kernel's
    FIFO tie-breaking), so a plan is fully deterministic.
    """

    events: Tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))

    def __len__(self) -> int:
        return len(self.events)

    def validate(self, duration: float, n_processes: int) -> None:
        """Check every event fits the scenario's window and population."""
        for event in self.events:
            if event.at >= duration:
                raise ValueError(
                    f"fault at {event.at}s falls outside the measurement "
                    f"window [0, {duration})")
            for node_id in event.nodes:
                if node_id >= n_processes:
                    raise ValueError(
                        f"fault targets node {node_id} but the scenario "
                        f"has only {n_processes} processes")
