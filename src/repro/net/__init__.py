"""Wireless network substrate.

The paper runs its protocol directly on an 802.11b broadcast MAC inside
Qualnet.  This subpackage is our from-scratch equivalent:

* :mod:`repro.net.radio` — transmit power / receiver sensitivity / path
  loss math that derives communication radii (the paper's 442 m RWP and
  44 m city-section ranges are presets),
* :mod:`repro.net.messages` — the three protocol messages (heartbeat,
  event-id list, event batch) with an explicit wire-size model so
  bandwidth accounting matches the paper's byte counts (50 B heartbeats,
  128-bit event ids, 400 B events),
* :mod:`repro.net.medium` — a shared broadcast medium with carrier sense,
  finite transmission durations and receiver-side collisions (no capture),
* :mod:`repro.net.node` — binds a protocol + mobility model + metrics to
  the medium and exposes the small host interface protocols program to.

It also surfaces :class:`~repro.core.base.ProtocolCounters`, the unified
picklable per-stack counter dataclass every protocol layer writes into
(defined next to the host interface to keep the import graph acyclic;
the network layer is where the counts become observable, via
``MetricsCollector.capture_protocol_totals``).
"""

from repro.core.base import ProtocolCounters
from repro.net.radio import (PathLossModel, RadioConfig, dbm_to_mw,
                             mw_to_dbm, free_space_path_loss_db,
                             two_ray_path_loss_db)
from repro.net.messages import (Heartbeat, EventIdList, EventBatch,
                                Message, SizeModel)
from repro.net.medium import WirelessMedium, MediumConfig, Transmission
from repro.net.node import Node

__all__ = [
    "PathLossModel",
    "RadioConfig",
    "dbm_to_mw",
    "mw_to_dbm",
    "free_space_path_loss_db",
    "two_ray_path_loss_db",
    "Heartbeat",
    "EventIdList",
    "EventBatch",
    "Message",
    "SizeModel",
    "WirelessMedium",
    "MediumConfig",
    "Transmission",
    "Node",
    "ProtocolCounters",
]
