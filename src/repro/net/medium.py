"""The shared broadcast wireless medium.

This is the substrate standing in for Qualnet's 802.11b PHY/MAC.  It models
exactly the phenomena the paper's results depend on:

* **broadcast locality** — a frame reaches every node within the sender's
  communication radius, and nobody else (one-hop sends only, Section 2);
* **finite airtime** — a frame occupies the channel for
  ``preamble + bits/rate`` seconds;
* **carrier sense** — a node that senses an audible ongoing transmission
  defers with a random back-off before retrying (CSMA), bounded by
  ``max_csma_retries`` after which the frame is sent anyway (matching
  802.11 behaviour of eventually seizing a busy channel);
* **collisions** — a reception fails when two transmissions audible at the
  *receiver* overlap in time (no capture effect), and while the receiver is
  itself transmitting (half-duplex).  Fig. 13's non-monotonic heartbeat
  result is explicitly attributed to collisions, so this is load-bearing;
* **optional uniform frame loss** — fading/interference hook for failure-
  injection tests.

Positions are sampled from each node's mobility model at transmission
start; at pedestrian/vehicular speeds and millisecond airtimes the
displacement within a frame is negligible.

Spatial indexing
----------------
With ``MediumConfig.spatial_index`` on (the default) the medium resolves
"who can hear this frame?" through a :class:`~repro.sim.space.SpatialGrid`
instead of scanning every registered node:

* each node's mobility model *pushes* position anchors into the grid
  (``MobilityModel.on_move``), re-anchoring at leg boundaries and every
  ``anchor slack`` metres along a leg, so an anchor is never more than the
  slack distance away from the node's true position;
* receiver resolution queries the grid with ``range + slack`` and then
  re-filters the candidates against their *exact* interpolated positions,
  so the result set — and therefore every delivery, collision and CSMA
  back-off draw — is bit-identical to the O(N) full scan;
* candidate iteration is in deterministic ascending-id order
  (:meth:`SpatialGrid.query_radius` sorts), the same order the full scan
  uses, so event sequences match exactly;
* recent transmissions live in a second grid (:class:`_TransmissionIndex`)
  so carrier sense and collision checks only examine frames whose sender
  was geometrically close enough to matter.

``spatial_index=False`` keeps the flat O(N) scan.  Both modes iterate
receivers in ascending-id order — the flat scan historically used dict
insertion order, which only differs after a mid-run re-registration
(``Node.repower``); sharing the sorted order is what makes the two modes
produce exactly equal results in every lifecycle
(``tests/test_spatial_medium.py`` and ``benchmarks/bench_scale.py``
assert float equality of per-seed summaries).

Batch frame resolution
----------------------
With ``MediumConfig.vectorized`` on (the default, when numpy is
importable) the grid still prunes candidates, but the exact re-filter,
carrier sense and collision resolution run through the numpy engine of
:mod:`repro.sim.batch`:

* nodes push *leg states* (:meth:`MobilityModel.leg_state`) into a
  :class:`~repro.sim.batch.LegTable`, so one array expression
  interpolates every candidate's exact position at once instead of one
  Python ``position()`` call per candidate;
* recent transmissions live in a :class:`~repro.sim.batch.TxLog`;
  carrier sense and per-receiver collision verdicts are array queries;
* the K per-receiver delivery events of one frame collapse into a
  *single* kernel event (:meth:`WirelessMedium._deliver_batch`).  This
  is exactly order-equivalent to K consecutive events: the scalar path
  schedules them back-to-back with consecutive sequence numbers at the
  same instant, and a frame's overlap set is final at its end time (the
  overlap predicate is strict, so a transmission *starting* at the
  delivery instant never overlaps), hence no event can observably
  interleave between the per-receiver deliveries;
* every distance predicate uses the band-prefilter + exact
  ``math.hypot`` confirmation of :mod:`repro.sim.batch`, so verdicts
  are bit-identical to the scalar engine, not merely close
  (``tests/test_vectorized_medium.py`` asserts exact summary equality
  across every scenario family).

``vectorized=False`` (or an import-less numpy) selects the scalar
engine; ``spatial_index=False`` implies it.
"""

from __future__ import annotations

import bisect
import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.net.messages import Message, SizeModel
from repro.net.radio import RadioConfig
from repro.sim import batch
from repro.sim.kernel import Simulator
from repro.sim.space import SpatialGrid, Vec2

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import Node


@dataclass(frozen=True)
class MediumConfig:
    """Medium/MAC behaviour knobs.

    Attributes
    ----------
    csma_enabled:
        Whether senders carrier-sense and back off before transmitting.
    max_csma_retries:
        Back-off attempts before the frame is sent regardless (802.11
        eventually seizes a busy channel).
    csma_backoff_min_s / csma_backoff_max_s:
        Uniform back-off window bounds, seconds.
    frame_loss_probability:
        Per-reception uniform loss probability in [0, 1] (fading hook).
    model_collisions:
        Whether overlapping audible frames corrupt each other.
    spatial_index:
        Resolve receivers/collisions through the spatial grid (default).
        ``False`` falls back to the flat O(N) scan; results are exactly
        equal either way.
    vectorized:
        Run the exact re-filter, carrier sense and collision resolution
        through the numpy batch engine (:mod:`repro.sim.batch`) and
        coalesce each frame's per-receiver deliveries into one kernel
        event.  Requires ``spatial_index`` (the grid provides the
        candidate pruning) and numpy; otherwise the scalar engine is
        used silently.  Results are bit-identical either way.
    anchor_slack_m:
        Maximum distance (metres) a node's true position may drift from
        its indexed anchor before the mobility model re-anchors it.
        ``None`` derives ``communication_range / 8``.  Smaller values mean
        tighter range queries but more re-anchor events.
    history_horizon_s:
        Seconds a finished transmission stays available for collision
        checks.  Must exceed the longest frame airtime (milliseconds);
        the default of 1 s is three orders of magnitude above it.
    """

    csma_enabled: bool = True
    max_csma_retries: int = 6
    csma_backoff_min_s: float = 0.5e-3
    csma_backoff_max_s: float = 4e-3
    frame_loss_probability: float = 0.0
    model_collisions: bool = True
    spatial_index: bool = True
    vectorized: bool = True
    anchor_slack_m: Optional[float] = None
    history_horizon_s: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.frame_loss_probability <= 1.0:
            raise ValueError("frame_loss_probability must be in [0,1]")
        if self.csma_backoff_min_s < 0 or \
                self.csma_backoff_max_s < self.csma_backoff_min_s:
            raise ValueError("need 0 <= backoff_min <= backoff_max")
        if self.anchor_slack_m is not None and self.anchor_slack_m <= 0:
            raise ValueError("anchor_slack_m must be positive")
        if self.history_horizon_s <= 0:
            raise ValueError("history_horizon_s must be positive")


@dataclass
class Transmission:
    """One frame on the air."""

    sender: int
    sender_pos: Vec2
    range_m: float
    start: float
    end: float
    message: Message

    def overlaps(self, other: "Transmission") -> bool:
        """True when the two frames were on the air at the same time."""
        return self.start < other.end and other.start < self.end

    def audible_at(self, pos: Vec2) -> bool:
        """True when ``pos`` lies within this frame's communication range."""
        return self.sender_pos.distance_to(pos) <= self.range_m


class _TransmissionIndex:
    """Range-pruned store of recent transmissions.

    Replaces the medium's flat ``_active``/``_history`` lists: frames are
    indexed by their (immutable) sender position in a
    :class:`SpatialGrid`, so carrier sense and collision resolution only
    examine transmissions whose sender was close enough to be audible,
    instead of every frame of the last second.  Entries older than the
    horizon are pruned on insertion, oldest first.

    A per-sender side table serves the half-duplex check ("was the
    receiver itself transmitting?"), which the flat scan resolves by
    sender id rather than by geometry and must therefore never depend on
    a range query.
    """

    def __init__(self, cell_size: float, horizon_s: float):
        self._grid = SpatialGrid(cell_size)
        self._horizon_s = horizon_s
        self._txs: Dict[int, Transmission] = {}          # insertion-ordered
        self._by_sender: Dict[int, Dict[int, Transmission]] = {}
        self._ids = itertools.count()

    def __len__(self) -> int:
        return len(self._txs)

    def add(self, tx: Transmission, now: float) -> None:
        """Insert a new frame and prune everything beyond the horizon."""
        tx_id = next(self._ids)
        self._txs[tx_id] = tx
        self._grid.insert(tx_id, tx.sender_pos)
        self._by_sender.setdefault(tx.sender, {})[tx_id] = tx
        self._prune(now)

    def _prune(self, now: float) -> None:
        horizon = now - self._horizon_s
        while self._txs:
            tx_id = next(iter(self._txs))
            tx = self._txs[tx_id]
            if tx.end >= horizon:
                break
            del self._txs[tx_id]
            self._grid.remove(tx_id)
            per_sender = self._by_sender.get(tx.sender)
            if per_sender is not None:
                per_sender.pop(tx_id, None)
                if not per_sender:
                    del self._by_sender[tx.sender]

    def channel_busy(self, pos: Vec2, now: float, query_radius: float) -> bool:
        """Any transmission still on the air and audible at ``pos``?"""
        for tx_id in self._grid.query_radius(pos, query_radius):
            tx = self._txs[tx_id]
            if tx.end > now and tx.audible_at(pos):
                return True
        return False

    def corrupts(self, tx: Transmission, receiver_id: int, rx_pos: Vec2,
                 query_radius: float) -> bool:
        """Did any other frame corrupt ``tx`` at this receiver?

        Same predicate as the flat history scan: another frame overlapping
        ``tx`` in time that was either sent by the receiver itself
        (half-duplex) or audible at the receiver's position.
        """
        own = self._by_sender.get(receiver_id)
        if own:
            for other in own.values():
                if other is not tx and other.overlaps(tx):
                    return True
        for tx_id in self._grid.query_radius(rx_pos, query_radius):
            other = self._txs[tx_id]
            if other is tx or not other.overlaps(tx):
                continue
            if other.audible_at(rx_pos):
                return True
        return False


class WirelessMedium:
    """Broadcast medium shared by all nodes of a simulation.

    Parameters
    ----------
    sim:
        The event kernel everything is scheduled on.
    radio:
        Physical-layer parameters; ``communication_range_m()`` sizes both
        the audible radius and the spatial-index cells.
    config:
        MAC/indexing behaviour knobs (defaults to :class:`MediumConfig`).
    sizes:
        Wire-size model used to derive frame airtimes.
    rng:
        Dedicated random stream for CSMA back-off and uniform loss draws.
    """

    def __init__(self, sim: Simulator, radio: RadioConfig,
                 config: MediumConfig | None = None,
                 sizes: SizeModel | None = None,
                 rng=None):
        self.sim = sim
        self.radio = radio
        self.config = config or MediumConfig()
        self.sizes = sizes or SizeModel()
        self._rng = rng
        self._nodes: Dict[int, "Node"] = {}
        self._active: List[Transmission] = []    # flat mode only
        self._history: List[Transmission] = []   # flat mode only
        # Spatial indexing: node anchors + recent transmissions.  Cell
        # size equals the inflated query radius, so every range query
        # touches exactly a 3x3 block of cells.
        range_m = radio.communication_range_m()
        slack = self.config.anchor_slack_m
        self._slack_m = slack if slack is not None else range_m / 8.0
        self._query_radius_m = range_m + self._slack_m
        vectorized = (self.config.vectorized and self.config.spatial_index
                      and batch.HAVE_NUMPY)
        if self.config.spatial_index:
            self._grid: Optional[SpatialGrid] = \
                SpatialGrid(self._query_radius_m)
        else:
            self._grid = None
        if vectorized:
            self._legs: Optional[batch.LegTable] = batch.LegTable()
            self._txlog: Optional[batch.TxLog] = \
                batch.TxLog(self.config.history_horizon_s)
            self._tx_index: Optional[_TransmissionIndex] = None
        else:
            self._legs = None
            self._txlog = None
            self._tx_index = (_TransmissionIndex(
                self._query_radius_m, self.config.history_horizon_s)
                if self.config.spatial_index else None)
        # Incrementally sorted receiver snapshot for the flat scan (and
        # any other ascending-id full iteration): maintained on
        # register/unregister instead of re-sorting the node dict per
        # query.
        self._sorted_ids: List[int] = []
        self._sorted_nodes: List["Node"] = []
        # Observability hooks (metrics collector subscribes to these).
        self.on_transmit: Optional[Callable[[int, Message, int], None]] = None
        self.on_receive: Optional[Callable[[int, Message], None]] = None
        self.on_drop: Optional[Callable[[int, Message, str], None]] = None
        # Radio-occupancy hooks (energy accountant subscribes to these):
        # called with (node_id, airtime_s) whenever a node's radio is
        # busy transmitting its own frame / overlapped by an audible one.
        self.on_tx_window: Optional[Callable[[int, float], None]] = None
        self.on_rx_window: Optional[Callable[[int, float], None]] = None
        # Fault-injection loss hook: called (sender_id, receiver_id) at
        # delivery time; returning True drops the frame.  Installed by
        # the fault injector's link-loss model; None (the default) adds
        # zero work and zero RNG draws to the delivery path.
        self.extra_loss: Optional[Callable[[int, int], bool]] = None
        # Shard-ingress hook: when set, a freshly assembled frame is
        # handed to the sharded-execution layer instead of being
        # resolved locally — the shard engine commits it at the next
        # epoch barrier, routes it to every shard whose residents could
        # hear it, and retimes its delivery to the exact instant
        # ``end + latency`` inside the receiving shards' kernels (see
        # repro.sim.shard).  Like ``extra_loss`` above, ``None`` (the
        # default) adds zero work to the path.
        self.shard_ingress: Optional[Callable[[Transmission], None]] = None
        self.frames_sent = 0
        self.frames_delivered = 0
        self.frames_collided = 0
        self.frames_lost_random = 0
        self.frames_lost_fault = 0

    # -- membership ---------------------------------------------------------------

    def register(self, node: "Node") -> None:
        """Add a node to the medium (and, when possible, to the grid).

        A node whose position is already resolvable — a test stub, or a
        repowered node whose mobility model is running — is indexed
        immediately; a node registered before its mobility model started
        is indexed by the anchor its model pushes at start time.
        """
        if node.id in self._nodes:
            raise ValueError(f"duplicate node id {node.id}")
        self._nodes[node.id] = node
        idx = bisect.bisect_left(self._sorted_ids, node.id)
        self._sorted_ids.insert(idx, node.id)
        self._sorted_nodes.insert(idx, node)
        if self._grid is None:
            return
        mobility = getattr(node, "mobility", None)
        if mobility is None or mobility.started:
            try:
                pos = node.position()
            except RuntimeError:
                return
            self._grid.insert(node.id, pos)
            if self._legs is not None:
                # Seed a parked leg so the batch engine can resolve the
                # node immediately; a node with a live mobility model
                # overwrites this with its true leg when the leg-change
                # wiring pushes (same call stack, before any query).
                self._legs.note(node.id, batch.static_state(
                    pos.x, pos.y, self.sim.now))

    def unregister(self, node_id: int) -> None:
        """Remove a node from the medium and from the spatial index.

        A drained (or otherwise departed) node stops being a potential
        receiver *and* disappears from the grid — its mobility model may
        keep pushing anchors (the device is still on a moving vehicle),
        which :meth:`note_position` discards for unknown ids.
        """
        if self._nodes.pop(node_id, None) is not None:
            idx = bisect.bisect_left(self._sorted_ids, node_id)
            if idx < len(self._sorted_ids) and \
                    self._sorted_ids[idx] == node_id:
                self._sorted_ids.pop(idx)
                self._sorted_nodes.pop(idx)
        if self._grid is not None:
            self._grid.remove(node_id)
        if self._legs is not None:
            self._legs.remove(node_id)

    def note_position(self, node_id: int, pos: Vec2) -> None:
        """Record a position anchor pushed by a node's mobility model.

        Anchors for unregistered ids (crashed-and-drained devices still
        riding a vehicle) are dropped.  In flat-scan mode this is a no-op.
        """
        if self._grid is not None and node_id in self._nodes:
            self._grid.insert(node_id, pos)

    def note_leg(self, node_id: int, state: "batch.LegState") -> None:
        """Record a leg-state push from a node's mobility model.

        The batch engine's exact-position source: one push per leg
        boundary keeps :class:`~repro.sim.batch.LegTable` able to
        reproduce ``position()`` bit for bit until the next boundary.
        Pushes for unregistered ids are dropped, mirroring
        :meth:`note_position`; a no-op under the scalar engine.
        """
        if self._legs is not None and node_id in self._nodes:
            self._legs.note(node_id, state)

    @property
    def wants_leg_state(self) -> bool:
        """True when nodes must wire :meth:`note_leg` pushes (the
        vectorized engine is active)."""
        return self._legs is not None

    @property
    def position_slack_m(self) -> Optional[float]:
        """Mid-leg re-anchor distance nodes must honour (metres), or
        ``None`` when the flat scan is active and no pushes are needed."""
        if self._grid is None:
            return None
        return self._slack_m

    @property
    def nodes(self) -> Dict[int, "Node"]:
        """Registered nodes by id (insertion-ordered)."""
        return self._nodes

    def nodes_within(self, pos: Vec2, radius_m: float) -> List["Node"]:
        """Registered nodes whose *exact* position lies within
        ``radius_m`` of ``pos``, in ascending-id order.

        Resolution mirrors receiver resolution: in grid mode the spatial
        index is queried with ``radius + slack`` (an anchor is never
        staler than the slack distance) and candidates are re-filtered
        against exact interpolated positions, so both modes return the
        identical set.  Used by the fault subsystem to resolve regional
        outage membership.
        """
        if radius_m < 0:
            raise ValueError(f"radius_m must be >= 0: {radius_m}")
        if self._grid is not None:
            ids = self._grid.query_radius(pos, radius_m + self._slack_m)
            if self._legs is not None:
                hits = self._legs.audible(
                    [i for i in ids if i in self._nodes],
                    self.sim.now, pos.x, pos.y, radius_m)
                return [self._nodes[i] for i, _ in hits]
            candidates = [self._nodes[i] for i in ids if i in self._nodes]
        else:
            candidates = list(self._sorted_nodes)
        return [node for node in candidates
                if node.position().distance_to(pos) <= radius_m]

    # -- sending --------------------------------------------------------------------

    def broadcast(self, sender_id: int, message: Message) -> None:
        """Entry point used by nodes; applies carrier sense then transmits."""
        self._attempt_send(sender_id, message, attempt=0)

    def _attempt_send(self, sender_id: int, message: Message,
                      attempt: int) -> None:
        sender = self._nodes.get(sender_id)
        if sender is None or not sender.alive:
            return  # sender crashed while the frame was queued
        if sender.asleep or sender.silenced:
            sender.send(message)   # radio went down mid-backoff (duty
            return                 # cycle or fault silence): requeue
        pos = sender.position()
        if (self.config.csma_enabled
                and attempt < self.config.max_csma_retries
                and self._channel_busy(pos)):
            delay = self._csma_delay()
            self.sim.schedule(delay, self._attempt_send, sender_id,
                              message, attempt + 1)
            return
        self._transmit(sender, pos, message)

    def _csma_delay(self) -> float:
        lo = self.config.csma_backoff_min_s
        hi = self.config.csma_backoff_max_s
        if self._rng is None or hi <= lo:
            return lo
        return self._rng.uniform(lo, hi)

    def _channel_busy(self, pos: Vec2) -> bool:
        """Any audible transmission defers a sender — including its *own*
        in-flight frame, which is how a half-duplex MAC serialises a
        node's back-to-back sends instead of corrupting both."""
        now = self.sim.now
        if self._txlog is not None:
            return self._txlog.busy(pos.x, pos.y, now)
        if self._tx_index is not None:
            return self._tx_index.channel_busy(pos, now,
                                               self._query_radius_m)
        self._prune_active(now)
        return any(t.audible_at(pos) for t in self._active)

    def _prune_active(self, now: float) -> None:
        if self._active:
            self._active = [t for t in self._active if t.end > now]

    def _transmit(self, sender: "Node", pos: Vec2, message: Message) -> None:
        now = self.sim.now
        size = message.size_bytes(self.sizes)
        duration = self.radio.transmission_duration_s(size)
        tx = Transmission(sender=sender.id, sender_pos=pos,
                          range_m=self.radio.communication_range_m(),
                          start=now, end=now + duration, message=message)
        if self.shard_ingress is not None:
            # Sharded execution: count + hook accounting happen here (the
            # sender's shard owns its TX metrics), then the frame leaves
            # for the epoch-barrier exchange instead of local resolution.
            self.frames_sent += 1
            if self.on_transmit is not None:
                self.on_transmit(sender.id, message, size)
            if self.on_tx_window is not None:
                self.on_tx_window(sender.id, duration)
            self.shard_ingress(tx)
            return
        tx_seq = -1
        if self._txlog is not None:
            tx_seq = self._txlog.add(sender.id, pos.x, pos.y, tx.range_m,
                                     tx.start, tx.end)
        elif self._tx_index is not None:
            self._tx_index.add(tx, now)
        else:
            self._prune_active(now)
            self._active.append(tx)
            self._history.append(tx)
            self._trim_history(now)
        self.frames_sent += 1
        if self.on_transmit is not None:
            self.on_transmit(sender.id, message, size)
        if self.on_tx_window is not None:
            self.on_tx_window(sender.id, duration)
        if self._legs is not None:
            self._transmit_batch(sender.id, pos, tx, tx_seq, duration)
            return
        # Snapshot receivers at transmission start.  A sleeping radio is
        # deaf *and* free: it neither receives the frame nor pays the RX
        # energy for it.  Iterate a snapshot: charging an RX window can
        # deplete the receiver's battery and unregister it mid-loop.
        for node in self._receiver_candidates(sender.id, pos):
            if node.id == sender.id or not node.listening:
                continue
            rx_pos = node.position()
            if tx.audible_at(rx_pos):
                if self.on_rx_window is not None:
                    self.on_rx_window(node.id, duration)
                self.sim.schedule(duration, self._deliver, tx, node.id,
                                  rx_pos)

    def _transmit_batch(self, sender_id: int, pos: Vec2, tx: Transmission,
                        tx_seq: int, duration: float) -> None:
        """Vectorized receiver resolution + one coalesced delivery event.

        The audible set is resolved for all grid candidates at once
        (exact interpolated positions from the :class:`LegTable`), then
        walked in the same ascending-id order as the scalar loop: the
        listening filter and RX-energy charges happen per node, in the
        identical sequence, so battery depletions mid-walk unfold
        exactly as they do scalar.  The per-receiver deliveries collapse
        into a single :meth:`_deliver_batch` event — order-equivalent to
        the scalar path's K consecutive same-instant events (see the
        module docstring).
        """
        audible = self._legs.audible(
            self._grid.query_radius(pos, self._query_radius_m,
                                    exclude=sender_id),
            tx.start, pos.x, pos.y, tx.range_m)
        receivers: List[Tuple[int, Vec2]] = []
        for node_id, rx_pos in audible:
            node = self._nodes.get(node_id)
            if node is None or not node.listening:
                continue
            if self.on_rx_window is not None:
                self.on_rx_window(node_id, duration)
            receivers.append((node_id, rx_pos))
        if receivers:
            self.sim.schedule(duration, self._deliver_batch, tx, tx_seq,
                              receivers)

    def _receiver_candidates(self, sender_id: int,
                             pos: Vec2) -> List["Node"]:
        """Snapshot of potential receivers in ascending-id order.

        Grid mode prunes to nodes whose last anchor lies within
        ``range + slack`` of the sender — a superset of the true audible
        set, since an anchor is never staler than the slack distance.
        The caller re-filters against exact positions, so both modes
        resolve the identical receiver set in the identical order.
        """
        if self._grid is not None:
            ids = self._grid.query_radius(pos, self._query_radius_m,
                                          exclude=sender_id)
            return [self._nodes[i] for i in ids if i in self._nodes]
        return list(self._sorted_nodes)

    def _trim_history(self, now: float) -> None:
        # Keep only transmissions that can still collide with a live one.
        # Stale frames are dropped from the front on every transmit (a
        # long-lived quiet network must not pin its whole traffic
        # history); the length trigger bounds pathological single-instant
        # bursts.
        horizon = now - self.config.history_horizon_s
        head = 0
        while head < len(self._history) and \
                self._history[head].end < horizon:
            head += 1
        if head:
            del self._history[:head]
        if len(self._history) > 256:
            self._history = [t for t in self._history if t.end >= horizon]

    # -- receiving -------------------------------------------------------------------

    def _deliver(self, tx: Transmission, receiver_id: int,
                 rx_pos: Vec2) -> None:
        node = self._nodes.get(receiver_id)
        if node is None or not node.listening:
            return  # crashed, drained or duty-cycled off mid-frame
        corrupted = self.config.model_collisions and \
            self._corrupted(tx, receiver_id, rx_pos)
        self._finish_delivery(tx, receiver_id, node, corrupted)

    def _deliver_batch(self, tx: Transmission, tx_seq: int,
                       receivers: List[Tuple[int, Vec2]]) -> None:
        """Deliver one frame to its whole receiver set in one event.

        Collision verdicts are computed once for the batch — safe
        because a frame's overlap set is final at its end time (the
        overlap predicate is strict) and verdicts consume no RNG, so a
        verdict computed up front equals one computed between
        deliveries.  Receivers are then walked in the same ascending-id
        order as the scalar path's consecutive delivery events,
        consuming identical loss draws and delivering identically —
        including re-checking liveness per receiver, since an earlier
        delivery's protocol reaction can crash or silence a later
        receiver in the same instant.
        """
        corrupted = None
        if self.config.model_collisions:
            corrupted = self._txlog.corrupt_verdicts(
                tx_seq, tx.start, tx.end,
                [node_id for node_id, _ in receivers],
                [rx_pos for _, rx_pos in receivers])
        for k, (receiver_id, _) in enumerate(receivers):
            node = self._nodes.get(receiver_id)
            if node is None or not node.listening:
                continue  # crashed, drained or duty-cycled off mid-frame
            self._finish_delivery(tx, receiver_id, node,
                                  corrupted is not None
                                  and bool(corrupted[k]))

    def _finish_delivery(self, tx: Transmission, receiver_id: int,
                         node: "Node", corrupted: bool) -> None:
        """Common delivery tail: collision/loss/fault gauntlet, then
        hand the frame to the receiver (scalar and batch paths share
        this so drop accounting and RNG draw order cannot diverge)."""
        if corrupted:
            self.frames_collided += 1
            if self.on_drop is not None:
                self.on_drop(receiver_id, tx.message, "collision")
            return
        if (self.config.frame_loss_probability > 0.0
                and self._rng is not None
                and self._rng.random() < self.config.frame_loss_probability):
            self.frames_lost_random += 1
            if self.on_drop is not None:
                self.on_drop(receiver_id, tx.message, "loss")
            return
        if self.extra_loss is not None and \
                self.extra_loss(tx.sender, receiver_id):
            self.frames_lost_fault += 1
            if self.on_drop is not None:
                self.on_drop(receiver_id, tx.message, "fault-loss")
            return
        self.frames_delivered += 1
        if self.on_receive is not None:
            self.on_receive(receiver_id, tx.message)
        node.receive(tx.message)

    def _corrupted(self, tx: Transmission, receiver_id: int,
                   rx_pos: Vec2) -> bool:
        """A frame is corrupted when another audible frame overlapped it,
        or when the receiver was transmitting itself (half-duplex)."""
        if self._tx_index is not None:
            return self._tx_index.corrupts(tx, receiver_id, rx_pos,
                                           self._query_radius_m)
        for other in self._history:
            if other is tx:
                continue
            if not other.overlaps(tx):
                continue
            if other.sender == receiver_id:
                return True
            if other.audible_at(rx_pos):
                return True
        return False
