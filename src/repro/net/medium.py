"""The shared broadcast wireless medium.

This is the substrate standing in for Qualnet's 802.11b PHY/MAC.  It models
exactly the phenomena the paper's results depend on:

* **broadcast locality** — a frame reaches every node within the sender's
  communication radius, and nobody else (one-hop sends only, Section 2);
* **finite airtime** — a frame occupies the channel for
  ``preamble + bits/rate`` seconds;
* **carrier sense** — a node that senses an audible ongoing transmission
  defers with a random back-off before retrying (CSMA), bounded by
  ``max_csma_retries`` after which the frame is sent anyway (matching
  802.11 behaviour of eventually seizing a busy channel);
* **collisions** — a reception fails when two transmissions audible at the
  *receiver* overlap in time (no capture effect), and while the receiver is
  itself transmitting (half-duplex).  Fig. 13's non-monotonic heartbeat
  result is explicitly attributed to collisions, so this is load-bearing;
* **optional uniform frame loss** — fading/interference hook for failure-
  injection tests.

Positions are sampled from each node's mobility model at transmission
start; at pedestrian/vehicular speeds and millisecond airtimes the
displacement within a frame is negligible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, TYPE_CHECKING

from repro.net.messages import Message, SizeModel
from repro.net.radio import RadioConfig
from repro.sim.kernel import Simulator
from repro.sim.space import Vec2

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import Node


@dataclass(frozen=True)
class MediumConfig:
    """Medium/MAC behaviour knobs."""

    csma_enabled: bool = True
    max_csma_retries: int = 6
    csma_backoff_min_s: float = 0.5e-3
    csma_backoff_max_s: float = 4e-3
    frame_loss_probability: float = 0.0
    model_collisions: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.frame_loss_probability <= 1.0:
            raise ValueError("frame_loss_probability must be in [0,1]")
        if self.csma_backoff_min_s < 0 or \
                self.csma_backoff_max_s < self.csma_backoff_min_s:
            raise ValueError("need 0 <= backoff_min <= backoff_max")


@dataclass
class Transmission:
    """One frame on the air."""

    sender: int
    sender_pos: Vec2
    range_m: float
    start: float
    end: float
    message: Message

    def overlaps(self, other: "Transmission") -> bool:
        return self.start < other.end and other.start < self.end

    def audible_at(self, pos: Vec2) -> bool:
        return self.sender_pos.distance_to(pos) <= self.range_m


class WirelessMedium:
    """Broadcast medium shared by all nodes of a simulation."""

    def __init__(self, sim: Simulator, radio: RadioConfig,
                 config: MediumConfig | None = None,
                 sizes: SizeModel | None = None,
                 rng=None):
        self.sim = sim
        self.radio = radio
        self.config = config or MediumConfig()
        self.sizes = sizes or SizeModel()
        self._rng = rng
        self._nodes: Dict[int, "Node"] = {}
        self._active: List[Transmission] = []
        self._history: List[Transmission] = []   # recent, for collision checks
        # Observability hooks (metrics collector subscribes to these).
        self.on_transmit: Optional[Callable[[int, Message, int], None]] = None
        self.on_receive: Optional[Callable[[int, Message], None]] = None
        self.on_drop: Optional[Callable[[int, Message, str], None]] = None
        # Radio-occupancy hooks (energy accountant subscribes to these):
        # called with (node_id, airtime_s) whenever a node's radio is
        # busy transmitting its own frame / overlapped by an audible one.
        self.on_tx_window: Optional[Callable[[int, float], None]] = None
        self.on_rx_window: Optional[Callable[[int, float], None]] = None
        self.frames_sent = 0
        self.frames_delivered = 0
        self.frames_collided = 0
        self.frames_lost_random = 0

    # -- membership ---------------------------------------------------------------

    def register(self, node: "Node") -> None:
        if node.id in self._nodes:
            raise ValueError(f"duplicate node id {node.id}")
        self._nodes[node.id] = node

    def unregister(self, node_id: int) -> None:
        self._nodes.pop(node_id, None)

    @property
    def nodes(self) -> Dict[int, "Node"]:
        return self._nodes

    # -- sending --------------------------------------------------------------------

    def broadcast(self, sender_id: int, message: Message) -> None:
        """Entry point used by nodes; applies carrier sense then transmits."""
        self._attempt_send(sender_id, message, attempt=0)

    def _attempt_send(self, sender_id: int, message: Message,
                      attempt: int) -> None:
        sender = self._nodes.get(sender_id)
        if sender is None or not sender.alive:
            return  # sender crashed while the frame was queued
        if sender.asleep:
            sender.send(message)   # radio duty-cycled off mid-backoff:
            return                 # requeue the frame for the next wake
        pos = sender.position()
        if (self.config.csma_enabled
                and attempt < self.config.max_csma_retries
                and self._channel_busy(pos)):
            delay = self._csma_delay()
            self.sim.schedule(delay, self._attempt_send, sender_id,
                              message, attempt + 1)
            return
        self._transmit(sender, pos, message)

    def _csma_delay(self) -> float:
        lo = self.config.csma_backoff_min_s
        hi = self.config.csma_backoff_max_s
        if self._rng is None or hi <= lo:
            return lo
        return self._rng.uniform(lo, hi)

    def _channel_busy(self, pos: Vec2) -> bool:
        """Any audible transmission defers a sender — including its *own*
        in-flight frame, which is how a half-duplex MAC serialises a
        node's back-to-back sends instead of corrupting both."""
        now = self.sim.now
        self._prune_active(now)
        return any(t.audible_at(pos) for t in self._active)

    def _prune_active(self, now: float) -> None:
        if self._active:
            self._active = [t for t in self._active if t.end > now]

    def _transmit(self, sender: "Node", pos: Vec2, message: Message) -> None:
        now = self.sim.now
        size = message.size_bytes(self.sizes)
        duration = self.radio.transmission_duration_s(size)
        tx = Transmission(sender=sender.id, sender_pos=pos,
                          range_m=self.radio.communication_range_m(),
                          start=now, end=now + duration, message=message)
        self._prune_active(now)
        self._active.append(tx)
        self._history.append(tx)
        self._trim_history(now)
        self.frames_sent += 1
        if self.on_transmit is not None:
            self.on_transmit(sender.id, message, size)
        if self.on_tx_window is not None:
            self.on_tx_window(sender.id, duration)
        # Snapshot receivers at transmission start.  A sleeping radio is
        # deaf *and* free: it neither receives the frame nor pays the RX
        # energy for it.  Iterate a copy: charging an RX window can
        # deplete the receiver's battery and unregister it mid-loop.
        for node in list(self._nodes.values()):
            if node.id == sender.id or not node.listening:
                continue
            rx_pos = node.position()
            if tx.audible_at(rx_pos):
                if self.on_rx_window is not None:
                    self.on_rx_window(node.id, duration)
                self.sim.schedule(duration, self._deliver, tx, node.id,
                                  rx_pos)

    def _trim_history(self, now: float) -> None:
        # Keep only transmissions that can still collide with a live one.
        horizon = now - 1.0
        if len(self._history) > 256:
            self._history = [t for t in self._history if t.end >= horizon]

    # -- receiving -------------------------------------------------------------------

    def _deliver(self, tx: Transmission, receiver_id: int,
                 rx_pos: Vec2) -> None:
        node = self._nodes.get(receiver_id)
        if node is None or not node.listening:
            return  # crashed, drained or duty-cycled off mid-frame
        if self.config.model_collisions and self._corrupted(tx, receiver_id,
                                                            rx_pos):
            self.frames_collided += 1
            if self.on_drop is not None:
                self.on_drop(receiver_id, tx.message, "collision")
            return
        if (self.config.frame_loss_probability > 0.0
                and self._rng is not None
                and self._rng.random() < self.config.frame_loss_probability):
            self.frames_lost_random += 1
            if self.on_drop is not None:
                self.on_drop(receiver_id, tx.message, "loss")
            return
        self.frames_delivered += 1
        if self.on_receive is not None:
            self.on_receive(receiver_id, tx.message)
        node.receive(tx.message)

    def _corrupted(self, tx: Transmission, receiver_id: int,
                   rx_pos: Vec2) -> bool:
        """A frame is corrupted when another audible frame overlapped it,
        or when the receiver was transmitting itself (half-duplex)."""
        for other in self._history:
            if other is tx:
                continue
            if not other.overlaps(tx):
                continue
            if other.sender == receiver_id:
                return True
            if other.audible_at(rx_pos):
                return True
        return False
