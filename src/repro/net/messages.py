"""Protocol messages and their wire-size model.

The paper's bandwidth accounting (Fig. 17) fixes: heartbeat = 50 bytes,
event identifier = 128 bits (16 bytes), event payload = 400 bytes.  The
:class:`SizeModel` centralises these constants so experiments can reproduce
the paper's byte counts exactly and ablations can vary them.

Three message kinds cross the air (Sections 4.2-4.3):

* :class:`Heartbeat` — ``(process id, subscriptions, [speed])``,
* :class:`EventIdList` — the identifiers of the still-valid events a
  process holds for the topics it shares with a new neighbour,
* :class:`EventBatch` — actual events plus the list of neighbour ids the
  sender believes are interested (overhearers use it to update their view).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Tuple

from repro.core.events import Event, EventId
from repro.core.topics import Topic


@dataclass(frozen=True)
class SizeModel:
    """Byte costs used for bandwidth accounting.

    ``heartbeat_bytes`` is charged as a flat cost per heartbeat (the paper
    fixes 50 bytes regardless of subscription count); id lists and batches
    are charged per element on top of a small header.
    """

    heartbeat_bytes: int = 50
    event_id_bytes: int = 16           # 128-bit identifiers
    node_id_bytes: int = 4
    header_bytes: int = 8

    def heartbeat(self) -> int:
        """Wire size of one heartbeat, bytes (flat, paper: 50)."""
        return self.heartbeat_bytes

    def event_id_list(self, n_ids: int) -> int:
        """Wire size of an ``n_ids``-entry identifier list, bytes."""
        return self.header_bytes + n_ids * self.event_id_bytes

    def event_batch(self, payload_bytes_total: int, n_events: int,
                    n_neighbor_ids: int) -> int:
        """Wire size of an event batch, bytes: header + payloads +
        per-event ids + the interested-neighbour id list."""
        return (self.header_bytes
                + payload_bytes_total
                + n_events * self.event_id_bytes
                + n_neighbor_ids * self.node_id_bytes)


class Message:
    """Base class for everything the medium carries."""

    sender: int

    def size_bytes(self, sizes: SizeModel) -> int:
        """Bytes this message occupies on the air under ``sizes``."""
        raise NotImplementedError

    @property
    def kind(self) -> str:
        """Human-readable message kind (the class name)."""
        return type(self).__name__


@dataclass(frozen=True)
class Heartbeat(Message):
    """Periodic presence beacon (paper Fig. 6, lines 2-4)."""

    sender: int
    subscriptions: FrozenSet[Topic]
    speed: float | None = None

    def size_bytes(self, sizes: SizeModel) -> int:
        """Flat heartbeat cost from the size model, bytes."""
        return sizes.heartbeat()


@dataclass(frozen=True)
class EventIdList(Message):
    """Identifiers of held, still-valid events (paper Fig. 6, line 21)."""

    sender: int
    event_ids: Tuple[EventId, ...]

    def size_bytes(self, sizes: SizeModel) -> int:
        """Header plus 16 bytes per carried event id."""
        return sizes.event_id_list(len(self.event_ids))


@dataclass(frozen=True)
class EventBatch(Message):
    """Events plus the interested-neighbour id list (paper Fig. 9, line 5)."""

    sender: int
    events: Tuple[Event, ...]
    neighbor_ids: Tuple[int, ...] = ()

    def size_bytes(self, sizes: SizeModel) -> int:
        """Header, event payloads, event ids and neighbour ids, bytes."""
        payload = sum(e.payload_bytes for e in self.events)
        return sizes.event_batch(payload, len(self.events),
                                 len(self.neighbor_ids))
