"""Radio propagation: power budgets, path loss and communication range.

The paper's Qualnet configuration (Section 5.1): 15 dBm transmit power at
all rates; receiver sensitivity −93/−89/−87/−83 dBm for 1/2/6/11 Mbit/s; a
2.4 GHz channel with a two-ray path-loss model; 0.8-efficiency
omnidirectional antennas.  Those settings yield communication radii of
442/339/321/273 m; the city-section experiments lower sensitivity to
−65 dBm, i.e. a 44 m radius, to model urban propagation.

We implement the standard free-space and two-ray-ground models and solve
them for range.  Because the paper reports the *resulting radii* (which are
what the protocol behaviour actually depends on), :class:`RadioConfig`
accepts an explicit ``range_override_m`` used by the paper presets, keeping
the reproduction calibrated to the published radii regardless of the exact
antenna heights Qualnet assumed.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Optional

SPEED_OF_LIGHT = 299_792_458.0  # m/s


def dbm_to_mw(dbm: float) -> float:
    """Convert a power level from dBm to milliwatts."""
    return 10.0 ** (dbm / 10.0)


def mw_to_dbm(mw: float) -> float:
    """Convert a power level from milliwatts to dBm."""
    if mw <= 0:
        raise ValueError(f"power must be positive: {mw=}")
    return 10.0 * math.log10(mw)


def free_space_path_loss_db(distance_m: float, frequency_hz: float) -> float:
    """Friis free-space path loss in dB (gain-free form)."""
    if distance_m <= 0:
        raise ValueError(f"distance must be positive: {distance_m=}")
    if frequency_hz <= 0:
        raise ValueError(f"frequency must be positive: {frequency_hz=}")
    wavelength = SPEED_OF_LIGHT / frequency_hz
    return 20.0 * math.log10(4.0 * math.pi * distance_m / wavelength)


def two_ray_crossover_m(frequency_hz: float, h_tx_m: float,
                        h_rx_m: float) -> float:
    """Crossover distance below which two-ray reduces to free space."""
    wavelength = SPEED_OF_LIGHT / frequency_hz
    return 4.0 * math.pi * h_tx_m * h_rx_m / wavelength

def two_ray_path_loss_db(distance_m: float, frequency_hz: float,
                         h_tx_m: float = 1.5, h_rx_m: float = 1.5) -> float:
    """Two-ray ground-reflection path loss with free-space near field."""
    if distance_m <= 0:
        raise ValueError(f"distance must be positive: {distance_m=}")
    crossover = two_ray_crossover_m(frequency_hz, h_tx_m, h_rx_m)
    if distance_m <= crossover:
        return free_space_path_loss_db(distance_m, frequency_hz)
    return 40.0 * math.log10(distance_m) - 20.0 * math.log10(h_tx_m * h_rx_m)


class PathLossModel(enum.Enum):
    """Which propagation model solves the link budget for range."""

    FREE_SPACE = "free-space"
    TWO_RAY = "two-ray"


@dataclass(frozen=True)
class RadioConfig:
    """Physical-layer parameters of every radio in a simulation.

    ``data_rate_bps`` drives transmission durations (and hence collision
    windows); the power budget drives the communication radius unless
    ``range_override_m`` pins it to a published figure.
    """

    tx_power_dbm: float = 15.0
    sensitivity_dbm: float = -93.0
    frequency_hz: float = 2.4e9
    data_rate_bps: float = 1_000_000.0
    antenna_efficiency: float = 0.8
    antenna_height_m: float = 1.5
    path_loss: PathLossModel = PathLossModel.TWO_RAY
    range_override_m: Optional[float] = None

    def __post_init__(self) -> None:
        if self.data_rate_bps <= 0:
            raise ValueError("data_rate_bps must be positive")
        if not 0 < self.antenna_efficiency <= 1:
            raise ValueError("antenna_efficiency must be in (0, 1]")
        if self.range_override_m is not None and self.range_override_m <= 0:
            raise ValueError("range_override_m must be positive")

    # -- link budget -----------------------------------------------------------

    @property
    def link_budget_db(self) -> float:
        """Maximum tolerable path loss, including antenna efficiency."""
        efficiency_loss = -10.0 * math.log10(self.antenna_efficiency)
        return (self.tx_power_dbm - self.sensitivity_dbm
                - 2.0 * efficiency_loss)

    def path_loss_db(self, distance_m: float) -> float:
        """Path loss in dB at ``distance_m`` under the configured model."""
        if self.path_loss is PathLossModel.FREE_SPACE:
            return free_space_path_loss_db(distance_m, self.frequency_hz)
        return two_ray_path_loss_db(distance_m, self.frequency_hz,
                                    self.antenna_height_m,
                                    self.antenna_height_m)

    def received_power_dbm(self, distance_m: float) -> float:
        """Signal level a receiver sees at ``distance_m``."""
        efficiency_loss = -10.0 * math.log10(self.antenna_efficiency)
        return (self.tx_power_dbm - self.path_loss_db(distance_m)
                - 2.0 * efficiency_loss)

    def communication_range_m(self) -> float:
        """Maximum distance at which a frame is receivable.

        Solved analytically from the configured path-loss model, or pinned
        by ``range_override_m`` when calibrating to published radii.
        """
        if self.range_override_m is not None:
            return self.range_override_m
        budget = self.link_budget_db
        wavelength = SPEED_OF_LIGHT / self.frequency_hz
        free_space_range = wavelength / (4.0 * math.pi) * 10 ** (budget / 20.0)
        if self.path_loss is PathLossModel.FREE_SPACE:
            return free_space_range
        crossover = two_ray_crossover_m(self.frequency_hz,
                                        self.antenna_height_m,
                                        self.antenna_height_m)
        if free_space_range <= crossover:
            return free_space_range
        # Beyond crossover: budget = 40 log10(d) - 20 log10(ht*hr)
        h2 = self.antenna_height_m * self.antenna_height_m
        return 10.0 ** ((budget + 20.0 * math.log10(h2)) / 40.0)

    def transmission_duration_s(self, size_bytes: int,
                                preamble_s: float = 192e-6) -> float:
        """Airtime of a frame: 802.11b long preamble + payload at rate."""
        if size_bytes < 0:
            raise ValueError("size_bytes must be >= 0")
        return preamble_s + (size_bytes * 8.0) / self.data_rate_bps

    # -- paper presets ----------------------------------------------------------

    @classmethod
    def paper_random_waypoint(cls, rate_bps: float = 1_000_000.0
                              ) -> "RadioConfig":
        """Section 5.1 open-area settings: 15 dBm, −93 dBm, 442 m @ 1 Mbit/s."""
        ranges = {1_000_000.0: 442.0, 2_000_000.0: 339.0,
                  6_000_000.0: 321.0, 11_000_000.0: 273.0}
        sens = {1_000_000.0: -93.0, 2_000_000.0: -89.0,
                6_000_000.0: -87.0, 11_000_000.0: -83.0}
        if rate_bps not in ranges:
            raise ValueError(f"paper rates are {sorted(ranges)}: {rate_bps=}")
        return cls(tx_power_dbm=15.0, sensitivity_dbm=sens[rate_bps],
                   data_rate_bps=rate_bps,
                   range_override_m=ranges[rate_bps])

    @classmethod
    def paper_city_section(cls, rate_bps: float = 1_000_000.0
                           ) -> "RadioConfig":
        """Section 5.1 urban settings: −65 dBm sensitivity, 44 m radius."""
        return cls(tx_power_dbm=15.0, sensitivity_dbm=-65.0,
                   data_rate_bps=rate_bps, range_override_m=44.0)

    @classmethod
    def bluetooth(cls) -> "RadioConfig":
        """A class-2 Bluetooth radio (the paper's other example MAC):
        2.5 mW (4 dBm) transmit power, ~10 m range, 1 Mbit/s, 2.4 GHz.

        The protocol runs unmodified on it — that is the paper's
        portability claim — but the tiny radius makes encounters brief
        and rare, so expect far lower reliability at equal validity.
        """
        return cls(tx_power_dbm=4.0, sensitivity_dbm=-70.0,
                   data_rate_bps=1_000_000.0, range_override_m=10.0)
