"""The node: glue between protocol, mobility, radio medium and metrics.

A :class:`Node` implements the :class:`repro.core.base.Host` interface the
protocols program against, adding crash/recover failure injection (the
paper's model allows processes to "crash (or recover) at any time",
Section 2).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.core.base import PubSubProtocol
from repro.core.events import Event
from repro.mobility.base import MobilityModel
from repro.net.medium import WirelessMedium
from repro.net.messages import Message
from repro.sim.kernel import (PeriodicTask, Simulator, Timer, TimerWheel,
                              WheelPeriodicTask)
from repro.sim.space import Vec2


class Node:
    """One mobile device running a pub/sub protocol instance.

    When constructed with a :class:`TimerWheel`, all of the node's
    periodic tasks (heartbeats, garbage collection...) are coalesced
    onto it — one kernel service event can tick many nodes — with
    exactly the same firing times and tie-order as per-node timers.
    """

    def __init__(self, node_id: int, sim: Simulator, medium: WirelessMedium,
                 mobility: MobilityModel, protocol: PubSubProtocol,
                 rng, speed_sensor: bool = True,
                 wheel: Optional[TimerWheel] = None):
        self.id = node_id
        self.sim = sim
        self.medium = medium
        self.mobility = mobility
        self.protocol = protocol
        self._rng = rng
        self._wheel = wheel
        self.speed_sensor = speed_sensor
        self.alive = False
        self.asleep = False
        self._silence_depth = 0
        self.depleted = False
        self._started = False
        self._timers: List[Timer] = []
        self._periodics: List[PeriodicTask] = []
        self._deferred_sends: List[Message] = []
        self.delivered_events: List[Event] = []
        self.on_deliver: Optional[Callable[["Node", Event], None]] = None
        # Radio state-transition hook ("sleep" / "wake" / "down"); the
        # energy accountant subscribes to charge SLEEP time and record
        # battery deaths.
        self.on_radio_state: Optional[Callable[["Node", str], None]] = None
        protocol.attach(self)
        medium.register(self)
        # Spatial-index wiring: the mobility model pushes position anchors
        # into the medium's grid (at leg boundaries and every slack-metres
        # of travel) instead of the medium polling position() per frame.
        # A flat-scan medium advertises no slack and gets no pushes.
        slack = medium.position_slack_m
        if slack is not None:
            mobility.anchor_interval_m = slack
            mobility.on_move = self._announce_position
            # A model started before this wiring is mid-leg with no
            # re-anchor timer armed; resync so its anchor stays
            # slack-bounded from here on.
            if mobility.started:
                mobility.refresh_anchor()
        # Batch-engine wiring: leg-state pushes let the medium's
        # LegTable interpolate this node's exact position without a
        # per-frame position() call (see repro.sim.batch).
        if medium.wants_leg_state:
            mobility.on_leg_change = self._announce_leg
            if mobility.started:
                self._announce_leg()

    # -- lifecycle ------------------------------------------------------------------

    def start(self) -> None:
        """Boot the node: begin moving and start the protocol."""
        if self._started:
            raise RuntimeError(f"node {self.id} already started")
        self._started = True
        self.alive = True
        if not self.mobility.started:
            self.mobility.start(self.sim, self._rng)
        self.protocol.on_start()

    def crash(self) -> None:
        """Fail-stop: cancel all protocol timers, go deaf and mute.

        The mobility model keeps moving the host device (a crashed process
        sits on a still-moving vehicle).
        """
        if not self.alive:
            return
        self.alive = False
        self.protocol.on_stop()
        for timer in self._timers:
            timer.cancel()
        self._timers.clear()
        for task in self._periodics:
            task.stop()
        self._periodics.clear()
        self._deferred_sends.clear()

    def recover(self) -> None:
        """Restart the protocol after a crash (volatile state was lost)."""
        if self.alive or self.depleted:
            return
        self.alive = True
        self.protocol.on_start()

    def power_down(self) -> None:
        """Battery exhausted: fail-stop *permanently* and leave the medium.

        Unlike :meth:`crash`, a drained node cannot :meth:`recover` and is
        unregistered from the medium — it transmits nothing, receives
        nothing and no longer counts as a potential relay.  This is what
        network-lifetime experiments measure.
        """
        if self.depleted:
            return
        self.crash()
        self.depleted = True
        self.asleep = False
        self.medium.unregister(self.id)
        # Stop the anchor-push chain: the medium would discard every
        # push for this id anyway, so the re-anchor timers a still-moving
        # dead device keeps arming would be pure kernel churn.
        if self.mobility.on_move is not None:
            self.mobility.on_move = None
            self.mobility.refresh_anchor()   # cancels the armed re-anchor
        self.mobility.on_leg_change = None   # medium dropped our leg row
        if self.on_radio_state is not None:
            self.on_radio_state(self, "down")

    def repower(self) -> None:
        """A fresh battery was installed in a drained device: rejoin the
        medium and restart the protocol (volatile state was lost, as
        after any crash).  Used at measurement-window start for nodes
        that ran dry during warm-up."""
        if not self.depleted:
            return
        self.depleted = False
        if self.id not in self.medium.nodes:
            self.medium.register(self)
        # Resume anchor pushes undone by power_down (register() already
        # indexed the exact current position; refresh re-arms the
        # mid-leg re-anchor so it stays slack-bounded).
        if self.medium.position_slack_m is not None:
            self.mobility.on_move = self._announce_position
            self.mobility.refresh_anchor()
        if self.medium.wants_leg_state:
            self.mobility.on_leg_change = self._announce_leg
            if self.mobility.started:
                self._announce_leg()
        self.recover()

    # -- duty cycling ---------------------------------------------------------------

    @property
    def listening(self) -> bool:
        """Radio able to receive: powered, booted, not duty-cycled off
        and not fault-silenced."""
        return self.alive and not self.asleep and not self.silenced

    def sleep(self) -> None:
        """Switch the radio off (duty cycle): deaf until :meth:`wake`,
        outbound frames queue instead of transmitting."""
        if not self.alive or self.asleep:
            return
        self.asleep = True
        # A silenced radio is already billed as sleeping; duty edges
        # inside a silence window must not re-notify.
        if not self.silenced and self.on_radio_state is not None:
            self.on_radio_state(self, "sleep")

    def wake(self) -> None:
        """Switch the radio back on and flush frames queued while asleep
        (they contend on the channel in queueing order)."""
        if not self.alive or not self.asleep:
            return
        self.asleep = False
        if not self.silenced and self.on_radio_state is not None:
            self.on_radio_state(self, "wake")
        self._flush_deferred()

    def _flush_deferred(self) -> None:
        """Put queued frames on the air, if the radio is actually up
        (a waking node may still be fault-silenced, and vice versa)."""
        if self._deferred_sends and self.listening:
            pending, self._deferred_sends = self._deferred_sends, []
            for message in pending:
                self.medium.broadcast(self.id, message)

    # -- fault injection (radio silence) ----------------------------------------------

    @property
    def silenced(self) -> bool:
        """True while at least one fault-injected silence window is on.

        Silence nests: two overlapping regional outages each call
        :meth:`silence` / :meth:`unsilence` once, and the radio only
        comes back when the *last* window lifts.
        """
        return self._silence_depth > 0

    def silence(self) -> None:
        """Open a fault-injected radio-silence window (outage/jamming):
        deaf and mute like :meth:`sleep`, but orthogonal to duty
        cycling — protocol state and timers survive, outbound frames
        queue until the matching :meth:`unsilence`.  A no-op on a
        crashed node (nothing to jam)."""
        if not self.alive:
            return
        self._silence_depth += 1
        # Bill the radio as sleeping unless the duty cycler already does.
        if self._silence_depth == 1 and not self.asleep \
                and self.on_radio_state is not None:
            self.on_radio_state(self, "sleep")

    def unsilence(self) -> None:
        """Close one silence window; the radio returns (and queued
        frames flush) when the last overlapping window has lifted."""
        if self._silence_depth == 0:
            return
        self._silence_depth -= 1
        if self._silence_depth > 0 or not self.alive:
            return
        if not self.asleep and self.on_radio_state is not None:
            self.on_radio_state(self, "wake")
        self._flush_deferred()

    # -- Host interface ----------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time, seconds."""
        return self.sim.now

    @property
    def rng(self):
        """This node's dedicated deterministic random stream."""
        return self._rng

    def send(self, message: Message) -> None:
        """Broadcast ``message`` one hop (queued while asleep or
        silenced, dropped while crashed)."""
        if not self.alive:
            return
        if self.asleep or self.silenced:
            self._deferred_sends.append(message)
            return
        self.medium.broadcast(self.id, message)

    def schedule(self, delay: float, callback: Callable[..., None],
                 *args) -> Timer:
        """Run ``callback(*args)`` in ``delay`` seconds unless this node
        crashes first; returns the cancellable :class:`Timer`."""
        timer = self.sim.schedule(delay, self._guarded, callback, args)
        self._timers.append(timer)
        if len(self._timers) > 64:
            self._timers = [t for t in self._timers if t.active]
        return timer

    def _guarded(self, callback: Callable[..., None], args: tuple) -> None:
        if self.alive:
            callback(*args)

    def periodic(self, period: float, callback: Callable[[], None],
                 jitter: float = 0.0):
        """Start a repeating task every ``period`` seconds (plus
        ``U(0, jitter)`` per tick), stopped automatically on crash.

        Coalesced onto the shared :class:`TimerWheel` when the world
        provides one (identical semantics, fewer kernel events);
        otherwise a plain per-node :class:`PeriodicTask`.
        """
        if self._wheel is not None:
            task = WheelPeriodicTask(self._wheel, period, callback,
                                     jitter=jitter, rng=self._rng)
        else:
            task = PeriodicTask(self.sim, period, callback, jitter=jitter,
                                rng=self._rng)
        self._periodics.append(task)
        return task

    def deliver(self, event: Event) -> None:
        """Hand an event to the application layer (records + notifies)."""
        self.delivered_events.append(event)
        if self.on_deliver is not None:
            self.on_deliver(self, event)

    def current_speed(self) -> Optional[float]:
        """Own speed in m/s, or ``None`` without a tachometer.

        The paper treats speed as optional heartbeat payload; ``None``
        cleanly distinguishes "no sensor" from a true 0 m/s reading.
        """
        if not self.speed_sensor or not self.mobility.started:
            return None
        return self.mobility.current_speed()

    # -- medium interface ---------------------------------------------------------------

    def position(self) -> Vec2:
        """Exact current position (metres) from the mobility model."""
        return self.mobility.position()

    def _announce_position(self, pos: Vec2) -> None:
        """Forward a mobility anchor push into the medium's spatial index."""
        self.medium.note_position(self.id, pos)

    def _announce_leg(self) -> None:
        """Forward a leg-state push into the medium's batch engine."""
        self.medium.note_leg(self.id, self.mobility.leg_state())

    def receive(self, message: Message) -> None:
        """Frame arrival from the medium; ignored while crashed."""
        if self.alive:
            self.protocol.on_message(message)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.alive else "down"
        return f"<Node {self.id} {state} {type(self.protocol).__name__}>"
