"""Reproduction of *Frugal Event Dissemination in a Mobile Environment*
(Baehni, Chhabra, Guerraoui — Middleware 2005).

A topic-based publish/subscribe protocol for mobile ad-hoc networks,
implemented on a from-scratch discrete-event wireless simulation substrate:

* :mod:`repro.core` — the frugal protocol (heartbeats, id exchange,
  back-off dissemination, Equation-1 garbage collection),
* :mod:`repro.baselines` — the paper's three flooding comparators,
* :mod:`repro.sim` — deterministic discrete-event kernel, seeded RNG
  streams and spatial indexing,
* :mod:`repro.mobility` — random-waypoint, city-section and stationary
  mobility models,
* :mod:`repro.net` — radio propagation, broadcast medium with collisions,
  message wire-size model and the node/host binding,
* :mod:`repro.metrics` — reliability / bandwidth / duplicates / parasites
  accounting (the paper's four measurements),
* :mod:`repro.energy` — radio power states, batteries and duty cycling:
  the paper's frugality claim priced in joules and network lifetime,
* :mod:`repro.harness` — scenario builder, multi-seed runner and the
  per-figure experiment functions (Figs. 11-20 plus ablations and the
  energy experiments).

Quickstart::

    from repro.harness import ScenarioConfig, run_scenario

    result = run_scenario(ScenarioConfig.random_waypoint_demo(seed=1))
    print(result.reliability())
"""

from repro.core import (Event, EventId, FrugalConfig, FrugalPubSub, Topic,
                        TopicError)
from repro.net import RadioConfig, SizeModel
from repro.sim import Simulator

__version__ = "1.0.0"

__all__ = [
    "Event",
    "EventId",
    "FrugalConfig",
    "FrugalPubSub",
    "Topic",
    "TopicError",
    "RadioConfig",
    "SizeModel",
    "Simulator",
    "__version__",
]
