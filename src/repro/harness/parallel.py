"""Parallel multi-seed execution engine.

The paper averages every data point over 30 differently-seeded runs, and
those runs are independent by construction — a sweep is embarrassingly
parallel work.  This module owns the scheduling: a
:class:`ParallelRunner` fans fully-specified ``ScenarioConfig`` jobs (one
per seed) across a process pool, consults an optional on-disk
:class:`~repro.harness.cache.ResultCache` before computing anything, and
always returns results in the caller's seed order regardless of which
worker finished first.

Why ``spawn`` and not ``fork``
------------------------------
Workers are started with the multiprocessing *spawn* method on every
platform, deliberately:

* **Determinism.**  A spawned worker is a pristine interpreter: it
  imports :mod:`repro` fresh and carries none of the parent's accumulated
  module-level state (street-map caches, benchmark sweep caches, already
  seeded global RNGs).  Every scenario therefore executes in exactly the
  environment a serial run in a fresh process would see, which is what
  lets the determinism suite assert *bit-identical* serial/parallel
  results.  A forked worker would instead inherit whatever mutable state
  the parent happened to have built up at fork time, making results
  depend on scheduling history.
* **Safety.**  ``fork`` in a process that might hold locks (logging,
  pytest capture plugins) deadlocks sporadically; CPython 3.12+ warns and
  3.14 changed the Linux default to spawn for exactly this reason.

Everything crossing the process boundary — the config out, the
:class:`~repro.harness.scenario.ScenarioResult` back — must pickle;
results detach from their live simulation world when pickled (see
``MetricsCollector.__getstate__`` / ``EnergyAccountant.__getstate__``),
so the payload is the measurements, not the megabytes of world graph.

With ``jobs=1`` (the default) no pool and no pickling are involved at
all: jobs run in-process, exactly as the historical serial
``run_seeds`` did, keeping tier-1 tests dependency- and subprocess-free.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.harness.cache import ResultCache
from repro.harness.runner import MultiSeedResult
from repro.harness.scenario import (ScenarioConfig, ScenarioResult,
                                    run_scenario)

#: Environment variable giving the default worker count (CLI/benchmarks).
JOBS_ENV = "REPRO_JOBS"


def available_cpu_count() -> int:
    """CPUs this *process* may actually run on (container-aware).

    ``os.cpu_count()`` reports the machine, which overcounts inside a
    cgroup CPU limit or a restricted affinity mask — and overcounting
    makes the auto backends (worker pools, the shard spawn/inproc
    choice) oversubscribe.  Prefer the scheduler affinity mask, then
    ``os.process_cpu_count()`` where it exists (3.13+), then fall back
    to the machine count.  Benchmarks record this value in their meta
    so trajectory entries are comparable across hosts.
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return len(getaffinity(0)) or 1
        except OSError:   # pragma: no cover - non-Linux affinity quirk
            pass
    process_count = getattr(os, "process_cpu_count", None)
    if process_count is not None:   # pragma: no cover - 3.13+
        return process_count() or 1
    return os.cpu_count() or 1


def resolve_jobs(jobs: Optional[int] = None, default: int = 1) -> int:
    """Normalise a worker count: ``None`` reads ``$REPRO_JOBS`` (falling
    back to ``default``), and ``0`` means "all *available* CPUs"
    (container-aware: see :func:`available_cpu_count`).  The single home
    of that rule — the CLI and the benchmark suite both resolve through
    it.
    """
    if jobs is None:
        raw = os.environ.get(JOBS_ENV)
        jobs = default if raw is None else int(raw)
    if jobs == 0:
        return available_cpu_count()
    return jobs


def _execute(config: ScenarioConfig) -> ScenarioResult:
    """Top-level worker entry point (spawn requires it importable)."""
    return run_scenario(config)


@dataclass
class EngineStats:
    """What a runner actually did, for cache-hit reporting."""

    executed: int = 0       # scenarios simulated (here or in a worker)
    cache_hits: int = 0     # scenarios answered from the result cache

    @property
    def total(self) -> int:
        """All scenario runs answered (executed + cache hits)."""
        return self.executed + self.cache_hits

    def reset(self) -> None:
        """Zero the counters (start of a new reporting window)."""
        self.executed = 0
        self.cache_hits = 0


class ParallelRunner:
    """Schedule scenario runs over ``jobs`` worker processes.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (default) executes in-process with no
        multiprocessing machinery at all; ``N > 1`` keeps a spawn-method
        pool of N workers alive for the runner's lifetime (use as a
        context manager, or call :meth:`close`, to reap it).
    cache:
        Optional :class:`ResultCache` consulted before executing each
        job and updated with every fresh result.
    """

    def __init__(self, jobs: int = 1, cache: Optional[ResultCache] = None):
        self._pool = None        # before validation: __del__ always safe
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1: {jobs}")
        self.jobs = jobs
        self.cache = cache
        self.stats = EngineStats()

    # -- lifecycle ------------------------------------------------------------

    def _ensure_pool(self):
        if self._pool is None:
            ctx = multiprocessing.get_context("spawn")
            self._pool = ctx.Pool(processes=self.jobs)
        return self._pool

    def close(self) -> None:
        """Reap the worker pool (idempotent; the runner stays usable —
        the pool is recreated on the next parallel call)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "ParallelRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC timing dependent
        self.close()

    # -- execution ------------------------------------------------------------

    def run_configs(self, configs: Sequence[ScenarioConfig]
                    ) -> List[ScenarioResult]:
        """Run every config; results align index-for-index with input.

        Cache hits are filled in immediately; the remaining jobs go to
        the pool (or run serially in-process for ``jobs=1``).  Output
        order is the input order by construction — completion order
        never leaks through.  Fresh results are written to the cache as
        each one arrives (ordered ``imap``, not a batch ``map``), so a
        run killed mid-sweep still leaves every completed cell on disk
        and a rerun only computes what is actually missing.
        """
        configs = list(configs)
        results: List[Optional[ScenarioResult]] = [None] * len(configs)
        pending: List[int] = []
        for i, config in enumerate(configs):
            cached = self.cache.get(config) if self.cache else None
            if cached is not None:
                results[i] = cached
                self.stats.cache_hits += 1
            else:
                pending.append(i)

        if pending:
            if self.jobs == 1 or len(pending) == 1:
                fresh = (_execute(configs[i]) for i in pending)
            else:
                pool = self._ensure_pool()
                fresh = pool.imap(_execute, [configs[i] for i in pending])
            for i, result in zip(pending, fresh):
                results[i] = result
                self.stats.executed += 1
                if self.cache is not None:
                    self.cache.put(result)
        return results  # type: ignore[return-value]  # all filled above

    def run_seeds(self, config: ScenarioConfig,
                  seeds: Iterable[int]) -> MultiSeedResult:
        """Run ``config`` once per seed (everything else held fixed)."""
        seed_list = list(seeds)
        if not seed_list:
            raise ValueError("run_seeds needs at least one seed")
        results = self.run_configs(
            [config.with_changes(seed=seed) for seed in seed_list])
        return MultiSeedResult(results=results)

    def run_matrix(self, configs: Dict[str, ScenarioConfig],
                   seeds: Iterable[int]) -> Dict[str, MultiSeedResult]:
        """Run several named configurations over the same seed list.

        Used by the protocol-comparison experiments: each protocol sees
        the identical seeds, hence identical mobility and subscriber
        draws.  The whole matrix is submitted as one batch so the pool
        stays saturated across protocol boundaries.
        """
        seed_list = list(seeds)
        if not seed_list:
            raise ValueError("run_matrix needs at least one seed")
        names = list(configs)
        flat = [configs[name].with_changes(seed=seed)
                for name in names for seed in seed_list]
        results = self.run_configs(flat)
        out: Dict[str, MultiSeedResult] = {}
        for j, name in enumerate(names):
            chunk = results[j * len(seed_list):(j + 1) * len(seed_list)]
            out[name] = MultiSeedResult(results=chunk)
        return out


# --------------------------------------------------------------------------
# Process-wide default runner
# --------------------------------------------------------------------------
#
# The experiment functions (harness/experiments.py) call the module-level
# run_seeds/run_matrix below, which delegate to one configurable default
# runner.  The CLI configures it from its --jobs/--no-cache flags and the
# benchmark suite from REPRO_JOBS (cache opt-in via REPRO_CACHE=1);
# library users can pass an explicit runner instead.

_default_runner = ParallelRunner(jobs=1, cache=None)


def get_default_runner() -> ParallelRunner:
    """The process-wide engine :func:`run_seeds`/:func:`run_matrix` use."""
    return _default_runner


def configure(jobs: int = 1,
              cache: Optional[ResultCache] = None) -> ParallelRunner:
    """Replace the process-wide default runner (closing the old pool)."""
    global _default_runner
    _default_runner.close()
    _default_runner = ParallelRunner(jobs=jobs, cache=cache)
    return _default_runner


def run_seeds(config: ScenarioConfig, seeds: Iterable[int],
              runner: Optional[ParallelRunner] = None) -> MultiSeedResult:
    """Run ``config`` once per seed via ``runner`` (default: the
    process-wide engine, serial and uncached unless configured)."""
    return (runner or _default_runner).run_seeds(config, seeds)


def run_matrix(configs: Dict[str, ScenarioConfig], seeds: Iterable[int],
               runner: Optional[ParallelRunner] = None
               ) -> Dict[str, MultiSeedResult]:
    """Run several named configurations over the same seed list."""
    return (runner or _default_runner).run_matrix(configs, seeds)
