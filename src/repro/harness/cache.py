"""On-disk result cache for scenario runs.

A full figure sweep is hundreds of ``(ScenarioConfig, seed)`` cells, each
costing seconds of simulation; re-running a figure after tweaking the
sweep grid (or after a crash) should only compute the *missing* cells.
The :class:`ResultCache` stores one pickled
:class:`~repro.harness.scenario.ScenarioResult` per cell, keyed by a
stable content hash of

* the fully-specified :class:`~repro.harness.scenario.ScenarioConfig`
  (the seed is a config field, so it is part of the key), and
* a *code version tag* — by default a hash over every ``.py`` file of the
  :mod:`repro` package, so any code change invalidates the whole cache.
  Simulation results depend on arbitrarily deep implementation details
  (RNG call order, float evaluation order), so nothing short of "the code
  is byte-identical" is a safe reuse criterion.

Corrupted or unreadable entries are treated as misses: the entry is
deleted and the cell recomputed, so a truncated write (e.g. a run killed
mid-``put``) can never poison a sweep.
"""

from __future__ import annotations

import dataclasses
import enum
import functools
import hashlib
import json
import os
import pathlib
import pickle
import tempfile
from typing import Optional

from repro.harness.scenario import ScenarioConfig, ScenarioResult

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default cache location (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro-cache"


def default_cache_dir() -> pathlib.Path:
    """The cache root: ``$REPRO_CACHE_DIR`` or ``./.repro-cache``."""
    return pathlib.Path(os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR))


# --------------------------------------------------------------------------
# Stable config hashing
# --------------------------------------------------------------------------

def canonical(obj) -> object:
    """Reduce ``obj`` to a JSON-serialisable structure that is stable
    across processes and Python invocations.

    Dataclasses carry their type name (two configs differing only in the
    mobility-spec *class* must hash differently); dict keys are sorted;
    tuples and lists are interchangeable.  Floats rely on ``repr`` via
    ``json.dumps``, which is exact for round-trippable IEEE doubles.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            "__type__": type(obj).__qualname__,
            "fields": {f.name: canonical(getattr(obj, f.name))
                       for f in dataclasses.fields(obj)},
        }
    if isinstance(obj, enum.Enum):
        return {"__enum__": type(obj).__qualname__, "name": obj.name}
    if isinstance(obj, (list, tuple)):
        return [canonical(x) for x in obj]
    if isinstance(obj, dict):
        return {str(k): canonical(v) for k, v in sorted(obj.items())}
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise TypeError(f"cannot canonicalise {type(obj).__qualname__!r} "
                    f"for cache hashing: {obj!r}")


@functools.lru_cache(maxsize=1)
def code_version_tag() -> str:
    """Hash of every ``.py`` file in the :mod:`repro` package.

    Computed once per process.  Any source change — even a comment —
    rotates the tag and therefore invalidates every cache entry; see the
    module docstring for why that conservatism is the only safe choice.
    """
    import repro
    root = pathlib.Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(path.relative_to(root).as_posix().encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:16]


def config_digest(config: ScenarioConfig,
                  version: Optional[str] = None) -> str:
    """The cache key for one fully-specified config (seed included)."""
    payload = {
        "version": code_version_tag() if version is None else version,
        "config": canonical(config),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


# --------------------------------------------------------------------------
# The cache proper
# --------------------------------------------------------------------------

class ResultCache:
    """One pickled :class:`ScenarioResult` per ``(config, code)`` key.

    Entries are written atomically (temp file + rename), so concurrent
    writers — e.g. several CLI invocations sharing a cache directory —
    can only ever race to produce identical files.
    """

    def __init__(self, root: Optional[os.PathLike] = None,
                 version: Optional[str] = None):
        self.root = pathlib.Path(root) if root is not None \
            else default_cache_dir()
        self.version = version if version is not None else code_version_tag()
        self.hits = 0
        self.misses = 0

    def path_for(self, config: ScenarioConfig) -> pathlib.Path:
        """On-disk entry path for ``config`` under the current code version."""
        return self.root / f"{config_digest(config, self.version)}.pkl"

    def get(self, config: ScenarioConfig) -> Optional[ScenarioResult]:
        """The cached result for ``config``, or None (miss).

        A corrupt, truncated or stale-schema entry is deleted and
        reported as a miss — the caller recomputes and overwrites.
        """
        path = self.path_for(config)
        try:
            with open(path, "rb") as f:
                result = pickle.load(f)
            if not isinstance(result, ScenarioResult) \
                    or result.config != config:
                raise ValueError("cache entry does not match its key")
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            # Unpicklable garbage, wrong type, key mismatch: recompute.
            path.unlink(missing_ok=True)
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, result: ScenarioResult) -> None:
        """Store ``result`` under its config's key (atomic overwrite)."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(result.config)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as f:
                pickle.dump(result, f, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            pathlib.Path(tmp).unlink(missing_ok=True)
            raise

    def clear(self) -> int:
        """Delete every entry; returns the number of entries removed.

        Also sweeps ``*.tmp`` leftovers — a run killed inside
        :meth:`put` strands its mkstemp file, and nothing else ever
        collects those.
        """
        if not self.root.is_dir():
            return 0
        removed = 0
        for path in self.root.glob("*.pkl"):
            path.unlink(missing_ok=True)
            removed += 1
        for path in self.root.glob("*.tmp"):
            path.unlink(missing_ok=True)
        return removed

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.pkl"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ResultCache {self.root} entries={len(self)} "
                f"hits={self.hits} misses={self.misses}>")
