"""Experiment scales: `smoke` (tiny), `quick` (CI-friendly), `paper` (full).

The paper's evaluation runs 150 processes over 25 km² for the random
waypoint model and 15 processes over the 1200x900 m campus for the city
section model, averaging 30 seeds.  That takes minutes per data point in
pure Python, so every experiment also has a `quick` scale which preserves
the *density* (processes per unit of radio coverage) and the qualitative
shape while shrinking population, area and seed count.

Select with the ``REPRO_SCALE`` environment variable (``quick`` default,
``paper``, or the minimal ``smoke`` used by CI smoke steps) or by passing
a :class:`Scale` explicitly.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence


@dataclass(frozen=True)
class Scale:
    """Sizing knobs shared by all experiments."""

    name: str
    # Random waypoint (Figs. 11, 12, 17-20)
    rwp_processes: int
    rwp_area_m: float          # side of the square area
    rwp_warmup: float          # paper: 600 s
    # City section (Figs. 13-16)
    city_processes: int
    city_warmup: float
    city_publisher_rotations: int   # paper: all 15 processes in turn
    # Averaging
    seeds: int                 # paper: 30
    # Sweep granularity (indices into the paper's full parameter lists)
    sweep_density: str         # "coarse" or "full"
    # First seed of the averaging window (CLI --seed re-bases every
    # figure onto a fresh deterministic seed set without editing presets).
    seed_base: int = 0

    def seed_list(self, base: Optional[int] = None) -> List[int]:
        """The deterministic averaging seeds, starting at ``base``
        (default: this scale's ``seed_base``)."""
        start = self.seed_base if base is None else base
        return [start + i for i in range(self.seeds)]

    def with_seed_base(self, base: int) -> "Scale":
        """A copy of this scale whose seed list starts at ``base``."""
        return replace(self, seed_base=base)

    def pick(self, full: Sequence, coarse: Sequence) -> List:
        """Choose the full or coarse sweep values for this scale."""
        return list(full if self.sweep_density == "full" else coarse)


SMOKE = Scale(
    name="smoke",
    # Smallest population that still forms a multi-hop network at the
    # paper's ~6 processes/km² density; 2 seeds.  For CI smoke steps and
    # local sanity runs where wall-clock matters more than error bars.
    rwp_processes=10,
    rwp_area_m=1300.0,
    rwp_warmup=10.0,
    city_processes=6,
    city_warmup=10.0,
    city_publisher_rotations=1,
    seeds=2,
    sweep_density="coarse",
)

QUICK = Scale(
    name="quick",
    # ~6 processes per km² like the paper (150 / 25 km²), 442 m radio range.
    rwp_processes=24,
    rwp_area_m=2000.0,
    rwp_warmup=40.0,
    city_processes=10,
    city_warmup=30.0,
    city_publisher_rotations=3,
    seeds=3,
    sweep_density="coarse",
)

PAPER = Scale(
    name="paper",
    rwp_processes=150,
    rwp_area_m=5000.0,
    rwp_warmup=600.0,
    city_processes=15,
    city_warmup=60.0,
    city_publisher_rotations=15,
    seeds=30,
    sweep_density="full",
)

_SCALES = {s.name: s for s in (SMOKE, QUICK, PAPER)}


def get_scale(name: Optional[str] = None) -> Scale:
    """Resolve a scale by name, or from ``REPRO_SCALE`` (default quick)."""
    if name is None:
        name = os.environ.get("REPRO_SCALE", "quick")
    try:
        return _SCALES[name]
    except KeyError:
        raise ValueError(f"unknown scale {name!r}; "
                         f"known: {sorted(_SCALES)}") from None
