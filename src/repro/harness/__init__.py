"""Experiment harness: scenarios, multi-seed running and the paper's figures.

* :mod:`repro.harness.scenario` — declarative scenario configs and the
  world builder/runner,
* :mod:`repro.harness.runner` — multi-seed averaging with paired seeds,
* :mod:`repro.harness.parallel` — the parallel execution engine
  (process pool, deterministic ordering, cache integration),
* :mod:`repro.harness.cache` — the on-disk result cache,
* :mod:`repro.harness.presets` — `quick` vs `paper` experiment scales,
* :mod:`repro.harness.experiments` — one function per paper figure
  (Figs. 11-20) plus ablations,
* :mod:`repro.harness.reporting` — ASCII tables and CSV output.
"""

from repro.harness.scenario import (CitySectionSpec, FixedPositionsSpec,
                                    MobilitySpec, Publication,
                                    RandomWaypointSpec, ScenarioConfig,
                                    ScenarioResult, StationarySpec, World,
                                    build_world, known_protocols,
                                    make_protocol, run_scenario)
from repro.harness.runner import (Aggregate, MultiSeedResult, aggregate,
                                  run_matrix, run_seeds)
from repro.harness.cache import ResultCache, code_version_tag, config_digest
from repro.harness.parallel import EngineStats, ParallelRunner
from repro.harness.presets import PAPER, QUICK, SMOKE, Scale, get_scale
from repro.harness.experiments import (ALL_EXPERIMENTS, ExperimentResult,
                                       churn_scenario, city_scenario,
                                       energy_scenario,
                                       frugality_comparison, rwp_scenario)
from repro.harness.reporting import (availability_timeline,
                                     depletion_timeline,
                                     experiment_pivot,
                                     format_engine_stats,
                                     format_experiment, format_table,
                                     reliability_grid, to_csv)

__all__ = [
    "CitySectionSpec",
    "FixedPositionsSpec",
    "MobilitySpec",
    "Publication",
    "RandomWaypointSpec",
    "ScenarioConfig",
    "ScenarioResult",
    "StationarySpec",
    "World",
    "build_world",
    "known_protocols",
    "make_protocol",
    "run_scenario",
    "Aggregate",
    "MultiSeedResult",
    "aggregate",
    "run_matrix",
    "run_seeds",
    "EngineStats",
    "ParallelRunner",
    "ResultCache",
    "code_version_tag",
    "config_digest",
    "format_engine_stats",
    "PAPER",
    "QUICK",
    "SMOKE",
    "Scale",
    "get_scale",
    "ALL_EXPERIMENTS",
    "ExperimentResult",
    "churn_scenario",
    "city_scenario",
    "energy_scenario",
    "frugality_comparison",
    "rwp_scenario",
    "availability_timeline",
    "depletion_timeline",
    "experiment_pivot",
    "format_experiment",
    "format_table",
    "reliability_grid",
    "to_csv",
]
