"""One function per paper figure (Figs. 11-20) plus the design ablations.

Every function takes a :class:`~repro.harness.presets.Scale` and returns an
:class:`ExperimentResult` whose rows carry the swept parameters and the
measured metrics — the same rows the benchmark harness prints and
EXPERIMENTS.md records.  At `paper` scale the sweeps match the paper's
grids; at `quick` scale they are coarsened but keep the endpoints, so the
qualitative shape (who wins, where the knees are) remains visible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core import registry
from repro.core.config import FrugalConfig
from repro.energy import DutyCycleConfig, EnergyConfig, PowerProfile
from repro.faults import ChurnConfig, FaultConfig, RegionalOutage
from repro.harness.presets import Scale, get_scale
# run_seeds resolves through the parallel execution engine: experiments
# transparently use whatever --jobs / cache configuration the CLI or
# benchmark suite installed via repro.harness.parallel.configure().
from repro.harness.parallel import run_seeds
from repro.harness.runner import aggregate
from repro.harness.scenario import (CityGridSpec, CitySectionSpec,
                                    Publication, RandomWaypointSpec,
                                    ScenarioConfig, StationarySpec)
from repro.net import MediumConfig, RadioConfig

#: Shard plan applied to every scenario the experiment builders emit —
#: a plain count or a full :class:`~repro.sim.shard.ShardConfig`.
#: 0 keeps the classic single-world engine; the CLI's ``--shards`` /
#: ``--epoch`` flags rebind this for the duration of one invocation so
#: any figure can run on the sharded engine (bit-identical across shard
#: counts, tile shapes and epoch lengths — see ``repro.sim.shard``).
DEFAULT_SHARDS = 0


def _apply_shards(config: ScenarioConfig) -> ScenarioConfig:
    """Stamp the module-wide shard plan onto a built scenario."""
    if not DEFAULT_SHARDS:
        return config
    return config.with_changes(shards=DEFAULT_SHARDS)


def _shards_label() -> str:
    """A printable tag for the active shard plan (``off`` / ``1x4``)."""
    from repro.sim.shard import ShardConfig
    return ShardConfig.coerce(DEFAULT_SHARDS).plan_label


@dataclass
class ExperimentResult:
    """Rows of one reproduced table/figure."""

    experiment_id: str
    title: str
    parameters: Dict[str, object]
    rows: List[Dict[str, float]] = field(default_factory=list)
    #: Printable analysis attachments (study pivots, component delta
    #: tables, Pareto frontiers) the CLI renders below the row table.
    #: Notes never influence ``rows`` or the CSV output.
    notes: List[str] = field(default_factory=list)

    def known_columns(self) -> List[str]:
        """Every column name any row carries, first-seen order."""
        columns: List[str] = []
        for row in self.rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
        return columns

    def column(self, name: str) -> List[float]:
        """All values of one named column, in row order."""
        try:
            return [row[name] for row in self.rows]
        except KeyError:
            raise KeyError(
                f"experiment {self.experiment_id!r} has no column "
                f"{name!r}; known columns: {self.known_columns()}"
            ) from None

    def filter(self, **criteria) -> List[Dict[str, float]]:
        """Rows matching all the given parameter values.

        Criteria keys must name real columns — a typo'd name raises
        :class:`KeyError` listing the known columns instead of
        silently matching nothing.  (Rows of a heterogeneous result
        may individually lack a known column; those rows simply do
        not match.)
        """
        known = self.known_columns()
        for key in criteria:
            if key not in known:
                raise KeyError(
                    f"experiment {self.experiment_id!r} has no column "
                    f"{key!r} to filter on; known columns: {known}")
        out = []
        for row in self.rows:
            if all(row.get(k) == v for k, v in criteria.items()):
                out.append(row)
        return out


# --------------------------------------------------------------------------
# Scenario builders
# --------------------------------------------------------------------------

def rwp_scenario(scale: Scale, speed_min: float, speed_max: float,
                 validity: float, interest: float,
                 n_events: int = 1, protocol: str = "frugal",
                 duration: Optional[float] = None,
                 frugal: Optional[FrugalConfig] = None) -> ScenarioConfig:
    """A random-waypoint trial with the paper's Section 5.1 settings."""
    if speed_max <= 0:
        mobility = StationarySpec(width=scale.rwp_area_m,
                                  height=scale.rwp_area_m)
    else:
        mobility = RandomWaypointSpec(
            width=scale.rwp_area_m, height=scale.rwp_area_m,
            speed_min=speed_min, speed_max=speed_max, pause_time=1.0)
    pubs = tuple(
        Publication(at=2.0 + 2.0 * i, validity=validity, publisher=i)
        for i in range(n_events))
    last_pub = max(p.at for p in pubs)
    return _apply_shards(ScenarioConfig(
        n_processes=scale.rwp_processes,
        mobility=mobility,
        duration=duration if duration is not None
        else last_pub + validity + 5.0,
        warmup=scale.rwp_warmup,
        protocol=protocol,
        frugal=frugal or FrugalConfig.paper_random_waypoint(),
        radio=RadioConfig.paper_random_waypoint(),
        subscriber_fraction=interest,
        publications=pubs))


def city_scenario(scale: Scale, validity: float, interest: float,
                  hb_upper: float = 1.0, publisher: int = 0,
                  protocol: str = "frugal") -> ScenarioConfig:
    """A city-section trial on the synthetic campus map."""
    return _apply_shards(ScenarioConfig(
        n_processes=scale.city_processes,
        mobility=CitySectionSpec(),
        duration=5.0 + validity + 5.0,
        warmup=scale.city_warmup,
        protocol=protocol,
        frugal=FrugalConfig.paper_city_section(hb_upper_bound=hb_upper),
        radio=RadioConfig.paper_city_section(),
        subscriber_fraction=interest,
        publications=(Publication(at=5.0, validity=validity,
                                  publisher=publisher),)))


def _city_rotated_reliabilities(scale: Scale, validity: float,
                                interest: float,
                                hb_upper: float = 1.0) -> List[float]:
    """Mean reliability per publisher, rotating the original publisher
    (the paper: "all processes, in turn, become the original publisher")."""
    per_publisher: List[float] = []
    for rotation in range(scale.city_publisher_rotations):
        cfg = city_scenario(scale, validity, interest,
                            hb_upper=hb_upper, publisher=rotation)
        multi = run_seeds(cfg, scale.seed_list())
        per_publisher.append(multi.reliability.mean)
    return per_publisher


# --------------------------------------------------------------------------
# Random waypoint reliability (Figs. 11, 12)
# --------------------------------------------------------------------------

FIG11_SPEEDS_FULL = [0.0, 1.0, 5.0, 10.0, 20.0, 30.0, 40.0]
FIG11_SPEEDS_COARSE = [0.0, 5.0, 10.0, 30.0]
VALIDITIES_FULL = [20.0, 60.0, 100.0, 140.0, 180.0]
VALIDITIES_COARSE = [30.0, 90.0, 180.0]
INTERESTS_FULL = [0.2, 0.4, 0.6, 0.8, 1.0]
INTERESTS_COARSE = [0.2, 0.6, 1.0]


def fig11(scale: Optional[Scale] = None) -> ExperimentResult:
    """Fig. 11: reliability vs (speed x validity) at 20 % and 80 % interest."""
    scale = scale or get_scale()
    speeds = scale.pick(FIG11_SPEEDS_FULL, FIG11_SPEEDS_COARSE)
    validities = scale.pick(VALIDITIES_FULL, VALIDITIES_COARSE)
    result = ExperimentResult(
        experiment_id="fig11",
        title="Reliability vs validity, speed and subscriber fraction "
              "(random waypoint)",
        parameters={"scale": scale.name, "speeds": speeds,
                    "validities": validities, "interests": [0.2, 0.8]})
    for interest in (0.2, 0.8):
        for speed in speeds:
            for validity in validities:
                cfg = rwp_scenario(scale, speed, speed, validity, interest)
                multi = run_seeds(cfg, scale.seed_list())
                agg = multi.reliability
                result.rows.append({
                    "interest": interest, "speed": speed,
                    "validity": validity,
                    "reliability": agg.mean, "reliability_std": agg.std})
    return result


def fig12(scale: Optional[Scale] = None) -> ExperimentResult:
    """Fig. 12: reliability vs (validity x interest), speeds ~ U(1, 40)."""
    scale = scale or get_scale()
    validities = scale.pick(VALIDITIES_FULL, VALIDITIES_COARSE)
    interests = scale.pick(INTERESTS_FULL, INTERESTS_COARSE)
    result = ExperimentResult(
        experiment_id="fig12",
        title="Reliability in a heterogeneous network (speeds 1-40 m/s)",
        parameters={"scale": scale.name, "validities": validities,
                    "interests": interests})
    for interest in interests:
        for validity in validities:
            cfg = rwp_scenario(scale, 1.0, 40.0, validity, interest)
            multi = run_seeds(cfg, scale.seed_list())
            agg = multi.reliability
            result.rows.append({
                "interest": interest, "validity": validity,
                "reliability": agg.mean, "reliability_std": agg.std})
    return result


# --------------------------------------------------------------------------
# City section reliability (Figs. 13-16)
# --------------------------------------------------------------------------

def fig13(scale: Optional[Scale] = None) -> ExperimentResult:
    """Fig. 13: reliability vs heartbeat upper bound (city section)."""
    scale = scale or get_scale()
    bounds = scale.pick([1.0, 2.0, 3.0, 4.0, 5.0], [1.0, 3.0, 5.0])
    result = ExperimentResult(
        experiment_id="fig13",
        title="Reliability vs heartbeat upper-bound period (city section, "
              "validity 150 s, 100% subscribers)",
        parameters={"scale": scale.name, "hb_upper_bounds": bounds})
    for bound in bounds:
        per_pub = _city_rotated_reliabilities(scale, validity=150.0,
                                              interest=1.0, hb_upper=bound)
        agg = aggregate(per_pub)
        result.rows.append({"hb_upper": bound,
                            "reliability": agg.mean,
                            "reliability_std": agg.std})
    return result


def fig14(scale: Optional[Scale] = None) -> ExperimentResult:
    """Fig. 14: reliability vs subscriber fraction (city section)."""
    scale = scale or get_scale()
    interests = scale.pick(INTERESTS_FULL, INTERESTS_COARSE)
    result = ExperimentResult(
        experiment_id="fig14",
        title="Reliability vs subscriber fraction (city section, "
              "validity 150 s, heartbeat bound 1 s)",
        parameters={"scale": scale.name, "interests": interests})
    for interest in interests:
        per_pub = _city_rotated_reliabilities(scale, validity=150.0,
                                              interest=interest)
        agg = aggregate(per_pub)
        result.rows.append({"interest": interest,
                            "reliability": agg.mean,
                            "reliability_std": agg.std})
    return result


def fig15(scale: Optional[Scale] = None) -> ExperimentResult:
    """Fig. 15: max-min reliability spread across publishers."""
    scale = scale or get_scale()
    interests = scale.pick(INTERESTS_FULL, INTERESTS_COARSE)
    result = ExperimentResult(
        experiment_id="fig15",
        title="Reliability spread between publishers vs subscriber "
              "fraction (city section)",
        parameters={"scale": scale.name, "interests": interests})
    for interest in interests:
        per_pub = _city_rotated_reliabilities(scale, validity=150.0,
                                              interest=interest)
        result.rows.append({"interest": interest,
                            "spread": max(per_pub) - min(per_pub),
                            "best": max(per_pub), "worst": min(per_pub)})
    return result


def fig16(scale: Optional[Scale] = None) -> ExperimentResult:
    """Fig. 16: reliability vs event validity period (city section)."""
    scale = scale or get_scale()
    validities = scale.pick([25.0, 50.0, 75.0, 100.0, 125.0, 150.0],
                            [25.0, 75.0, 150.0])
    result = ExperimentResult(
        experiment_id="fig16",
        title="Reliability vs validity period (city section, "
              "100% subscribers)",
        parameters={"scale": scale.name, "validities": validities})
    for validity in validities:
        per_pub = _city_rotated_reliabilities(scale, validity=validity,
                                              interest=1.0)
        agg = aggregate(per_pub)
        result.rows.append({"validity": validity,
                            "reliability": agg.mean,
                            "reliability_std": agg.std})
    return result


# --------------------------------------------------------------------------
# Frugality comparison (Figs. 17-20)
# --------------------------------------------------------------------------

EVENTS_FULL = [1, 5, 10, 15, 20]
EVENTS_COARSE = [1, 10, 20]

#: Which protocols each paper figure actually plots.
FIG17_PROTOCOLS = ("frugal", "interest-flooding", "simple-flooding")
FIG18_PROTOCOLS = ("frugal", "interest-flooding", "simple-flooding")
FIG19_PROTOCOLS = ("frugal", "interest-flooding", "simple-flooding")
FIG20_PROTOCOLS = ("frugal", "interest-flooding", "neighbor-flooding")


def frugality_comparison(scale: Optional[Scale] = None,
                         protocols: Sequence[str] = FIG17_PROTOCOLS,
                         experiment_id: str = "fig17-20",
                         title: str = "Frugality comparison",
                         metric_names: Sequence[str] = (
                             "bandwidth_bytes", "events_sent",
                             "duplicates", "parasites"),
                         ) -> ExperimentResult:
    """The shared Figs. 17-20 sweep: protocols x #events x interest.

    All protocols run the identical mobility/subscription draw per seed
    (paired seeds), at 10 m/s over a 180 s window, 400-byte events with a
    validity long enough to stay live for the whole window — the paper's
    frugality measurement conditions.
    """
    scale = scale or get_scale()
    events_counts = scale.pick(EVENTS_FULL, EVENTS_COARSE)
    interests = scale.pick(INTERESTS_FULL, INTERESTS_COARSE)
    result = ExperimentResult(
        experiment_id=experiment_id, title=title,
        parameters={"scale": scale.name, "protocols": list(protocols),
                    "events": events_counts, "interests": interests})
    for protocol in protocols:
        for n_events in events_counts:
            for interest in interests:
                cfg = rwp_scenario(scale, 10.0, 10.0, validity=180.0,
                                   interest=interest, n_events=n_events,
                                   protocol=protocol, duration=180.0)
                multi = run_seeds(cfg, scale.seed_list())
                summary = multi.summary()
                row = {"protocol": protocol, "events": n_events,
                       "interest": interest,
                       "reliability": summary["reliability"].mean}
                for name in metric_names:
                    row[name] = summary[name].mean
                    row[name + "_std"] = summary[name].std
                result.rows.append(row)
    return result


def fig17(scale: Optional[Scale] = None) -> ExperimentResult:
    """Fig. 17: bandwidth per process vs (#events x interest)."""
    return frugality_comparison(
        scale, protocols=FIG17_PROTOCOLS, experiment_id="fig17",
        title="Bandwidth used per process (random waypoint, 10 m/s)",
        metric_names=("bandwidth_bytes",))


def fig18(scale: Optional[Scale] = None) -> ExperimentResult:
    """Fig. 18: events sent per process vs (#events x interest)."""
    return frugality_comparison(
        scale, protocols=FIG18_PROTOCOLS, experiment_id="fig18",
        title="Events sent per process (random waypoint, 10 m/s)",
        metric_names=("events_sent",))


def fig19(scale: Optional[Scale] = None) -> ExperimentResult:
    """Fig. 19: duplicates received per process vs (#events x interest)."""
    return frugality_comparison(
        scale, protocols=FIG19_PROTOCOLS, experiment_id="fig19",
        title="Duplicates received per process (random waypoint, 10 m/s)",
        metric_names=("duplicates",))


def fig20(scale: Optional[Scale] = None) -> ExperimentResult:
    """Fig. 20: parasite events received per process."""
    return frugality_comparison(
        scale, protocols=FIG20_PROTOCOLS, experiment_id="fig20",
        title="Parasite events received per process "
              "(random waypoint, 10 m/s)",
        metric_names=("parasites",))


# --------------------------------------------------------------------------
# Energy experiments (the frugality claim priced in joules)
# --------------------------------------------------------------------------

#: The two protocols the energy comparison pits against each other:
#: the frugal protocol vs the strongest flooding baseline (Fig. 20's
#: neighbours'-interests flooder, the only one that is interest-aware
#: on both sides).
ENERGY_PROTOCOLS = ("frugal", "neighbor-flooding")


def energy_scenario(scale: Scale, protocol: str,
                    battery_j: Optional[float] = None,
                    awake_fraction: float = 1.0,
                    n_events: int = 5, interest: float = 0.8,
                    duration: float = 120.0) -> ScenarioConfig:
    """A random-waypoint trial instrumented with the energy subsystem.

    Uses the power-save radio profile (cheap idle carrier sense), where
    TX/RX airtime dominates the budget — the regime in which protocol
    frugality translates most directly into battery lifetime.  Duty
    cycling, when enabled, is aligned to the frugal heartbeat period so
    one beacon exchange fits every awake window.
    """
    cfg = rwp_scenario(scale, 10.0, 10.0, validity=duration,
                       interest=interest, n_events=n_events,
                       protocol=protocol, duration=duration)
    if awake_fraction < 1.0:
        duty = DutyCycleConfig.heartbeat_aligned(
            cfg.frugal.hb_upper_bound, awake_fraction)
    else:
        duty = DutyCycleConfig.always_on()
    return cfg.with_changes(energy=EnergyConfig(
        profile=PowerProfile.power_save(),
        battery_capacity_j=battery_j,
        duty_cycle=duty))


ENERGY_METRICS = ("joules_per_node", "joules_per_delivery", "lifetime_s",
                  "survivor_fraction", "survivor_reliability")


def energy_lifetime(scale: Optional[Scale] = None,
                    batteries: Sequence[Optional[float]] = (None, 40.0, 28.0)
                    ) -> ExperimentResult:
    """energy-lifetime: joules, network lifetime and survivors.

    Sweeps protocol x battery capacity on paired seeds.  The mains row
    (capacity None) prices the paper's frugality claim in joules per
    delivered event; the finite-capacity rows turn the same scenario into
    a network-lifetime experiment — flooding listeners burn their budget
    on parasite airtime and die mid-run, frugal nodes coast.
    """
    scale = scale or get_scale()
    result = ExperimentResult(
        experiment_id="energy-lifetime",
        title="Energy per delivery and network lifetime "
              "(random waypoint, 10 m/s, power-save radio)",
        parameters={"scale": scale.name, "protocols": list(ENERGY_PROTOCOLS),
                    "batteries_j": ["mains" if b is None else b
                                    for b in batteries]})
    for protocol in ENERGY_PROTOCOLS:
        for battery in batteries:
            cfg = energy_scenario(scale, protocol, battery_j=battery)
            multi = run_seeds(cfg, scale.seed_list())
            summary = multi.summary()
            row = {"protocol": protocol,
                   "battery_j": (float("inf") if battery is None
                                 else battery),
                   "reliability": summary["reliability"].mean}
            for name in ENERGY_METRICS:
                row[name] = summary[name].mean
                row[name + "_std"] = summary[name].std
            result.rows.append(row)
    return result


def ablation_dutycycle(scale: Optional[Scale] = None,
                       awake_fractions: Sequence[float] = (1.0, 0.5, 0.25)
                       ) -> ExperimentResult:
    """abl-dutycycle: sleep schedules as a protocol-visible ablation.

    Every node sleeps the same synchronised fraction of each heartbeat
    period.  The frugal protocol's reactive traffic rides the awake
    windows, so it keeps its reliability while its radio bill drops; the
    flooder's clock-driven frames pile up at window starts and collide,
    so it pays in reliability for the joules it saves.
    """
    from repro.study import run_study
    from repro.study.studies import dutycycle_study
    scale = scale or get_scale()
    return run_study(dutycycle_study(
        scale, awake_fractions=tuple(awake_fractions))).experiment


# --------------------------------------------------------------------------
# Fault & churn experiments (availability as an evaluation axis)
# --------------------------------------------------------------------------

#: Frugal vs the two canonical Section 5.2 flooders under churn: the
#: interest-aware flooder (closest competitor) and the blind flooder
#: (upper bound on redundancy, hence on churn tolerance per byte).
CHURN_PROTOCOLS = ("frugal", "interest-flooding", "simple-flooding")

#: Mean session lengths swept by ``churn-resilience``; ``None`` is the
#: churn-free baseline row (instrumented with an *empty* fault config so
#: every row carries the availability columns).
CHURN_SESSIONS_FULL = (None, 240.0, 120.0, 60.0, 30.0)
CHURN_SESSIONS_COARSE = (None, 120.0, 30.0)

#: Metrics every fault-instrumented summary exposes.
FAULT_METRICS = ("availability", "churn_reliability",
                 "recovery_latency_s", "downtime_s")


def churn_scenario(scale: Scale, protocol: str,
                   mean_session_s: Optional[float],
                   mean_rest_s: float = 45.0,
                   n_events: int = 5, interest: float = 0.8,
                   duration: float = 120.0) -> ScenarioConfig:
    """A random-waypoint trial under population churn.

    Nodes alternate exponential up-sessions (mean ``mean_session_s``)
    and down-rests (mean ``mean_rest_s``); ``mean_session_s=None``
    yields the churn-free baseline, still fault-instrumented (empty
    config) so its summary carries the same availability columns.
    Events outlive the churn rests, so the store-and-forward phase —
    not raw luck — decides who catches up.
    """
    cfg = rwp_scenario(scale, 10.0, 10.0, validity=100.0,
                       interest=interest, n_events=n_events,
                       protocol=protocol, duration=duration)
    if mean_session_s is None:
        faults = FaultConfig()
    else:
        faults = FaultConfig(churn=ChurnConfig(
            mean_session_s=mean_session_s, mean_rest_s=mean_rest_s))
    return cfg.with_changes(faults=faults)


def churn_resilience(scale: Optional[Scale] = None) -> ExperimentResult:
    """churn-resilience: delivery under churn, frugal vs flooders.

    Sweeps protocol x churn rate on paired seeds.  ``churn_per_min`` is
    the expected leaves per node per minute (0 = no churn); the
    ``churn_reliability`` column uses churn-aware denominators, so the
    gap between it and plain ``reliability`` is exactly the deliveries
    that were physically impossible, not protocol failures.
    """
    scale = scale or get_scale()
    sessions = scale.pick(CHURN_SESSIONS_FULL, CHURN_SESSIONS_COARSE)
    result = ExperimentResult(
        experiment_id="churn-resilience",
        title="Delivery under population churn "
              "(random waypoint, 10 m/s, exponential sessions)",
        parameters={"scale": scale.name,
                    "protocols": list(CHURN_PROTOCOLS),
                    "mean_sessions_s": ["none" if s is None else s
                                        for s in sessions]})
    for protocol in CHURN_PROTOCOLS:
        for session in sessions:
            cfg = churn_scenario(scale, protocol, session)
            multi = run_seeds(cfg, scale.seed_list())
            summary = multi.summary()
            row = {"protocol": protocol,
                   "churn_per_min": (0.0 if session is None
                                     else 60.0 / session),
                   "reliability": summary["reliability"].mean,
                   "bandwidth_bytes": summary["bandwidth_bytes"].mean,
                   "duplicates": summary["duplicates"].mean}
            for name in FAULT_METRICS:
                row[name] = summary[name].mean
                row[name + "_std"] = summary[name].std
            result.rows.append(row)
    return result


def protocol_matrix(scale: Optional[Scale] = None) -> ExperimentResult:
    """protocol-matrix: every registered protocol under churn.

    The registry-powered cross product: each *visible* entry of
    :mod:`repro.core.registry` — the frugal protocol, the three
    Section 5.2 flooders, both broadcast-storm schemes, the lpbcast
    gossip baseline, and any custom registration — runs the PR-4 churn
    scenarios on paired seeds.  One sweep answers "how does a new
    strategy behave under availability stress" without touching the
    harness; hidden verification entries are excluded.
    """
    scale = scale or get_scale()
    sessions = scale.pick(CHURN_SESSIONS_FULL, CHURN_SESSIONS_COARSE)
    protocols = registry.names()
    result = ExperimentResult(
        experiment_id="protocol-matrix",
        title="Every registered protocol under population churn "
              "(random waypoint, 10 m/s, exponential sessions)",
        parameters={"scale": scale.name, "protocols": protocols,
                    "mean_sessions_s": ["none" if s is None else s
                                        for s in sessions]})
    for protocol in protocols:
        for session in sessions:
            cfg = churn_scenario(scale, protocol, session)
            multi = run_seeds(cfg, scale.seed_list())
            summary = multi.summary()
            row = {"protocol": protocol,
                   "churn_per_min": (0.0 if session is None
                                     else 60.0 / session),
                   "reliability": summary["reliability"].mean,
                   "bandwidth_bytes": summary["bandwidth_bytes"].mean,
                   "duplicates": summary["duplicates"].mean,
                   "parasites": summary["parasites"].mean}
            for name in FAULT_METRICS:
                row[name] = summary[name].mean
                row[name + "_std"] = summary[name].std
            result.rows.append(row)
    return result


def ablation_outage(scale: Optional[Scale] = None) -> ExperimentResult:
    """abl-outage: a regional outage knocks out the middle of the map.

    One circular outage centred on the area, radius a fraction of the
    half-side, from t=20 s to t=80 s of a 120 s window.  ``silence``
    (radios jammed, state survives) is compared against ``crash``
    (state lost) and the no-outage baseline: the frugal protocol's
    validity periods are what lets the silenced region catch up.
    """
    from repro.study import run_study
    from repro.study.studies import outage_study
    scale = scale or get_scale()
    return run_study(outage_study(scale)).experiment


# --------------------------------------------------------------------------
# Related work (paper Section 6): broadcast-storm schemes
# --------------------------------------------------------------------------

def related_work_comparison(scale: Optional[Scale] = None
                            ) -> ExperimentResult:
    """Frugal vs the broadcast-storm schemes the paper positions against.

    The probabilistic and counter-based schemes (Ni et al.) forward each
    event at most once, so — unlike the Section 5.2 flooders — they cannot
    exploit validity periods: whoever is outside the connected component
    at publish time is lost forever.  The frugal protocol's store-and-
    forward phase is exactly what fixes that.
    """
    scale = scale or get_scale()
    protocols = ["frugal", "gossip-flooding", "counter-flooding",
                 "simple-flooding"]
    result = ExperimentResult(
        experiment_id="related-work",
        title="Frugal vs broadcast-storm schemes (one-shot forwarding)",
        parameters={"scale": scale.name, "protocols": protocols})
    for protocol in protocols:
        cfg = rwp_scenario(scale, 10.0, 10.0, validity=120.0, interest=0.8,
                           n_events=3, protocol=protocol, duration=150.0)
        multi = run_seeds(cfg, scale.seed_list())
        summary = multi.summary()
        result.rows.append({
            "protocol": protocol,
            "reliability": summary["reliability"].mean,
            "bandwidth_bytes": summary["bandwidth_bytes"].mean,
            "duplicates": summary["duplicates"].mean,
            "events_sent": summary["events_sent"].mean})
    return result


# --------------------------------------------------------------------------
# Ablations (design choices DESIGN.md calls out)
# --------------------------------------------------------------------------

def ablation_gc(scale: Optional[Scale] = None,
                capacity: int = 8) -> ExperimentResult:
    """abl-gc: eviction policies under memory pressure.

    Many events with mixed validities flow through a tiny event table;
    the policy decides who survives to be re-disseminated.  Measured:
    reliability (long- and short-validity events averaged together).
    """
    # Imported lazily: repro.study imports this module for the scenario
    # builders and ExperimentResult.
    from repro.study import run_study
    from repro.study.studies import gc_study
    scale = scale or get_scale()
    return run_study(gc_study(scale, capacity=capacity)).experiment


def ablation_backoff(scale: Optional[Scale] = None) -> ExperimentResult:
    """abl-backoff: the contention back-off vs sending immediately."""
    from repro.study import run_study
    from repro.study.studies import backoff_study
    scale = scale or get_scale()
    return run_study(backoff_study(scale)).experiment


def ablation_heartbeat(scale: Optional[Scale] = None) -> ExperimentResult:
    """abl-adaptive-hb: speed-adaptive heartbeat vs static period.

    With a loose upper bound (5 s) the adaptive rule ``x / avgSpeed``
    shortens the beacon period as the network speeds up; the static
    variant stays at the bound and detects neighbours late.
    """
    from repro.study import run_study
    from repro.study.studies import adaptive_hb_study
    scale = scale or get_scale()
    return run_study(adaptive_hb_study(scale)).experiment


def ablation_ids(scale: Optional[Scale] = None) -> ExperimentResult:
    """abl-ids: exchanging event ids first vs pushing events blindly."""
    from repro.study import run_study
    from repro.study.studies import ids_study
    scale = scale or get_scale()
    return run_study(ids_study(scale)).experiment


# --------------------------------------------------------------------------
# City-scale: large grid maps at the paper's city density
# --------------------------------------------------------------------------

#: Paper city density — 15 processes over the 1200x900 m campus.
CITY_SCALE_DENSITY_KM2 = 15 / (1.2 * 0.9)
#: Street-grid block pitch, metres (campus map: ~190 m blocks).
CITY_SCALE_BLOCK_M = 200.0
#: Populations swept per scale.  The full list is the tentpole target
#: (one large world, sharded); smoke/quick shrink the population but
#: keep the density and the map idiom.
CITY_SCALE_POPULATIONS = {
    "smoke": [40, 80],
    "quick": [100, 200],
    "paper": [2000, 5000, 10000],
}


def city_scale_scenario(scale: Scale, n: int, validity: float = 60.0,
                        interest: float = 0.2,
                        protocol: str = "frugal") -> ScenarioConfig:
    """One large city-section trial: ``n`` processes on a street grid
    sized to hold the paper's city density at a 4:3 aspect ratio."""
    area_km2 = n / CITY_SCALE_DENSITY_KM2
    width_m = math.sqrt(area_km2 * 4.0 / 3.0) * 1000.0
    height_m = area_km2 * 1e6 / width_m
    mobility = CityGridSpec(
        columns=max(3, round(width_m / CITY_SCALE_BLOCK_M)),
        rows=max(3, round(height_m / CITY_SCALE_BLOCK_M)),
        width=width_m, height=height_m)
    return _apply_shards(ScenarioConfig(
        n_processes=n,
        mobility=mobility,
        duration=5.0 + validity + 5.0,
        warmup=scale.city_warmup,
        protocol=protocol,
        frugal=FrugalConfig.paper_city_section(),
        radio=RadioConfig.paper_city_section(),
        subscriber_fraction=interest,
        publications=(Publication(at=5.0, validity=validity),)))


def city_scale(scale: Optional[Scale] = None) -> ExperimentResult:
    """city-scale: one metropolitan world per population step.

    Unlike the per-figure city runs (15 processes, one campus), each row
    here is a *single* large world at the paper's density — the family
    the sharded engine exists for.  Rows record delivery and cost
    metrics plus mean wall-clock per run, so the same table doubles as
    the scaling reference for ``--shards`` (results are bit-identical
    for any shard count; only the wall-clock column moves).
    """
    scale = scale or get_scale()
    populations = CITY_SCALE_POPULATIONS.get(
        scale.name, CITY_SCALE_POPULATIONS["quick"])
    result = ExperimentResult(
        experiment_id="city-scale",
        title="City-section scaling: street grids at paper density, "
              "one world per population",
        parameters={"scale": scale.name, "populations": populations,
                    "density_km2": round(CITY_SCALE_DENSITY_KM2, 2),
                    "shards": _shards_label()})
    for n in populations:
        cfg = city_scale_scenario(scale, n)
        multi = run_seeds(cfg, scale.seed_list())
        summary = multi.summary()
        result.rows.append({
            "n": n,
            "width_m": round(cfg.mobility.width, 1),
            "height_m": round(cfg.mobility.height, 1),
            "reliability": summary["reliability"].mean,
            "reliability_std": summary["reliability"].std,
            "bandwidth_bytes": summary["bandwidth_bytes"].mean,
            "events_sent": summary["events_sent"].mean,
            "duplicates": summary["duplicates"].mean,
            "wallclock_s": multi.metric(lambda r: r.wallclock_s).mean})
    return result


def loopback_bridge(scale: Optional[Scale] = None) -> ExperimentResult:
    """loopback-bridge: sim-predicted vs UDP-measured, side by side."""
    # Imported lazily: the rt package imports this module for
    # ExperimentResult, and the runtime is only needed when asked for.
    from repro.rt.bridge import loopback_bridge as _bridge
    return _bridge(scale)


def study_frontier(scale: Optional[Scale] = None) -> ExperimentResult:
    """study-frontier: the frugality Pareto frontier, cube-swept.

    A protocol x churn-rate x duty-cycle cube, every cell energy- and
    fault-instrumented, with automatic Pareto-frontier extraction over
    churn-aware reliability (max), joules per node (min), bandwidth
    (min) and recovery latency (min) — the study the declarative layer
    exists for (declared in :mod:`repro.study.studies`).  The result's
    notes carry the pivot grid and the frontier/dominated tables the
    CLI prints below the rows.
    """
    from repro.study import run_study
    from repro.study.studies import frontier_study
    scale = scale or get_scale()
    return run_study(frontier_study(scale)).experiment


ALL_EXPERIMENTS: Dict[str, Callable[[Optional[Scale]], ExperimentResult]] = {
    "fig11": fig11, "fig12": fig12, "fig13": fig13, "fig14": fig14,
    "fig15": fig15, "fig16": fig16, "fig17": fig17, "fig18": fig18,
    "fig19": fig19, "fig20": fig20,
    "abl-gc": ablation_gc, "abl-backoff": ablation_backoff,
    "abl-adaptive-hb": ablation_heartbeat, "abl-ids": ablation_ids,
    "abl-dutycycle": ablation_dutycycle,
    "related-work": related_work_comparison,
    "energy-lifetime": energy_lifetime,
    "churn-resilience": churn_resilience,
    "abl-outage": ablation_outage,
    "protocol-matrix": protocol_matrix,
    "loopback-bridge": loopback_bridge,
    "city-scale": city_scale,
    "study-frontier": study_frontier,
}
