"""Multi-seed scenario execution and aggregation.

The paper averages every data point over 30 differently seeded runs; this
module owns that loop.  Seeding is paired: the same seed produces the same
mobility traces and subscriber draw for every protocol, so protocol
comparisons (Figs. 17-20) are paired comparisons, not independent samples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Sequence

from repro.harness.scenario import ScenarioConfig, ScenarioResult, \
    run_scenario


@dataclass(frozen=True)
class Aggregate:
    """Mean and standard deviation of one metric across seeds."""

    mean: float
    std: float
    n: int

    def __str__(self) -> str:
        return f"{self.mean:.4g} ± {self.std:.2g} (n={self.n})"


def aggregate(values: Sequence[float]) -> Aggregate:
    """Population mean/std of a metric series (n >= 1)."""
    vals = list(values)
    if not vals:
        raise ValueError("cannot aggregate an empty series")
    mean = sum(vals) / len(vals)
    var = sum((v - mean) ** 2 for v in vals) / len(vals)
    return Aggregate(mean=mean, std=math.sqrt(var), n=len(vals))


@dataclass
class MultiSeedResult:
    """All per-seed results plus aggregated summaries."""

    results: List[ScenarioResult]

    def metric(self, fn: Callable[[ScenarioResult], float]) -> Aggregate:
        return aggregate([fn(r) for r in self.results])

    def summary(self) -> Dict[str, Aggregate]:
        """Aggregates of the five standard metrics."""
        keys = self.results[0].summary().keys()
        series: Dict[str, List[float]] = {k: [] for k in keys}
        for result in self.results:
            for key, value in result.summary().items():
                series[key].append(value)
        return {k: aggregate(v) for k, v in series.items()}

    @property
    def reliability(self) -> Aggregate:
        return self.metric(lambda r: r.reliability())


def run_seeds(config: ScenarioConfig,
              seeds: Iterable[int]) -> MultiSeedResult:
    """Run ``config`` once per seed (everything else held fixed)."""
    results = [run_scenario(config.with_changes(seed=seed))
               for seed in seeds]
    if not results:
        raise ValueError("run_seeds needs at least one seed")
    return MultiSeedResult(results=results)


def run_matrix(configs: Dict[str, ScenarioConfig],
               seeds: Iterable[int]) -> Dict[str, MultiSeedResult]:
    """Run several named configurations over the same seed list.

    Used by the protocol-comparison experiments: each protocol sees the
    identical seeds, hence identical mobility and subscriber draws.
    """
    seed_list = list(seeds)
    return {name: run_seeds(cfg, seed_list)
            for name, cfg in configs.items()}
