"""Multi-seed aggregation and the serial execution entry points.

The paper averages every data point over 30 differently seeded runs; this
module owns the statistics of that loop.  Seeding is paired: the same seed
produces the same mobility traces and subscriber draw for every protocol,
so protocol comparisons (Figs. 17-20) are paired comparisons, not
independent samples.

Scheduling (including the worker pool and the on-disk result cache) lives
in :mod:`repro.harness.parallel`; the :func:`run_seeds`/:func:`run_matrix`
functions here delegate to the process-wide engine, so existing callers
transparently pick up whatever ``--jobs``/cache configuration the CLI or
benchmark suite installed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Sequence

from repro.harness.scenario import ScenarioConfig, ScenarioResult, \
    run_scenario

__all__ = ["Aggregate", "aggregate", "MultiSeedResult", "run_seeds",
           "run_matrix", "run_scenario"]


@dataclass(frozen=True)
class Aggregate:
    """Mean and standard deviation of one metric across seeds."""

    mean: float
    std: float
    n: int

    def __str__(self) -> str:
        return f"{self.mean:.4g} ± {self.std:.2g} (n={self.n})"


def aggregate(values: Sequence[float]) -> Aggregate:
    """Population mean/std of a metric series (n >= 1).

    Non-finite inputs are rejected outright: a single ``inf`` (e.g.
    ``joules_per_delivery`` of a run that delivered nothing) or ``nan``
    would silently poison the mean of all 30 seeds, which is far worse
    than failing loudly at the offending data point.
    """
    vals = list(values)
    if not vals:
        raise ValueError("cannot aggregate an empty series")
    for v in vals:
        if not math.isfinite(v):
            raise ValueError(
                f"cannot aggregate non-finite value {v!r}: one bad seed "
                f"would corrupt the whole mean — filter or guard the "
                f"metric (series: {vals!r})")
    mean = sum(vals) / len(vals)
    var = sum((v - mean) ** 2 for v in vals) / len(vals)
    return Aggregate(mean=mean, std=math.sqrt(var), n=len(vals))


@dataclass
class MultiSeedResult:
    """All per-seed results plus aggregated summaries."""

    results: List[ScenarioResult]

    def metric(self, fn: Callable[[ScenarioResult], float]) -> Aggregate:
        """Aggregate ``fn(result)`` across the seeds (mean/std/min/max)."""
        return aggregate([fn(r) for r in self.results])

    def summary(self) -> Dict[str, Aggregate]:
        """Aggregates of the five standard metrics.

        ``joules_per_delivery`` is ``inf`` *by design* for a seed that
        delivered nothing in time (PR 1's inf-safe convention), so a
        metric series containing ``inf`` — but no ``nan`` — aggregates
        to an honestly-infinite mean instead of tripping
        :func:`aggregate`'s strictness and aborting the whole sweep.
        The std of such a series is undefined and reported as ``nan``
        (the table renderer prints non-finite cells verbatim).
        """
        keys = self.results[0].summary().keys()
        series: Dict[str, List[float]] = {k: [] for k in keys}
        for result in self.results:
            for key, value in result.summary().items():
                series[key].append(value)
        out: Dict[str, Aggregate] = {}
        for key, vals in series.items():
            if any(math.isinf(v) for v in vals) \
                    and not any(math.isnan(v) for v in vals):
                out[key] = Aggregate(mean=math.inf, std=math.nan,
                                     n=len(vals))
            else:
                out[key] = aggregate(vals)   # nan still fails loudly
        return out

    @property
    def reliability(self) -> Aggregate:
        """Reliability aggregated across the seeds."""
        return self.metric(lambda r: r.reliability())


def run_seeds(config: ScenarioConfig,
              seeds: Iterable[int]) -> MultiSeedResult:
    """Run ``config`` once per seed (everything else held fixed).

    Delegates to the process-wide execution engine — serial and uncached
    by default, parallel and/or cached once the CLI or benchmark suite
    has called :func:`repro.harness.parallel.configure`.
    """
    # Imported lazily: parallel imports this module for MultiSeedResult.
    from repro.harness import parallel
    return parallel.run_seeds(config, seeds)


def run_matrix(configs: Dict[str, ScenarioConfig],
               seeds: Iterable[int]) -> Dict[str, MultiSeedResult]:
    """Run several named configurations over the same seed list.

    Used by the protocol-comparison experiments: each protocol sees the
    identical seeds, hence identical mobility and subscriber draws.
    """
    from repro.harness import parallel
    return parallel.run_matrix(configs, seeds)
