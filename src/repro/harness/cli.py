"""Command-line entry point for the experiment harness.

Run any reproduced figure or ablation from a shell::

    python -m repro.harness.cli list
    python -m repro.harness.cli fig13
    python -m repro.harness.cli fig17 --scale paper --csv out/fig17.csv
    python -m repro.harness.cli fig17 --jobs 8            # 8 worker processes
    python -m repro.harness.cli fig17 --no-cache          # always recompute
    python -m repro.harness.cli all --out-dir results/

Equivalent to the benchmark suite minus the timing machinery — handy on a
cluster where each figure is one job.

Multi-seed sweeps fan out over ``--jobs`` worker processes (spawn-safe,
bit-identical to serial execution) and consult an on-disk result cache so
re-running a figure only computes the missing cells.  The cache lives in
``--cache-dir`` (default: ``$REPRO_CACHE_DIR`` or ``./.repro-cache``) and
invalidates automatically on any source change.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional

from repro.harness import experiments, parallel
from repro.harness.cache import ResultCache, default_cache_dir
from repro.harness.experiments import ALL_EXPERIMENTS
from repro.harness.presets import get_scale
from repro.harness.reporting import (experiment_pivot, format_engine_stats,
                                     format_experiment, to_csv)
from repro.sim.shard import ShardConfig


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for --help tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro.harness.cli",
        description="Regenerate the paper's figures and ablations.")
    parser.add_argument(
        "experiment",
        help="experiment id (fig11..fig20, abl-gc, abl-backoff, "
             "abl-adaptive-hb, abl-ids, abl-dutycycle, abl-outage, "
             "energy-lifetime, churn-resilience, protocol-matrix, "
             "loopback-bridge, city-scale, study-frontier), 'all', "
             "'list', or 'study' (declarative studies; see --list/--run)")
    parser.add_argument(
        "--list", action="store_true",
        help="with 'study': list the registered study declarations")
    parser.add_argument(
        "--run", default=None, metavar="STUDY",
        help="with 'study': run one registered study by id "
             "(e.g. 'study --run study-frontier')")
    parser.add_argument(
        "--scale", default=None, choices=["smoke", "quick", "paper"],
        help="experiment scale (default: REPRO_SCALE env or quick; "
             "smoke is the minimal CI-smoke sizing)")
    parser.add_argument(
        "--seed", type=int, default=None,
        help="re-base the deterministic seed set on this first seed "
             "(default: the scale's seed_base, 0)")
    parser.add_argument(
        "--shards", default="0", metavar="K|RxC",
        help="run every scenario on the sharded engine: a shard count "
             "('4' = vertical stripes) or an RxC tile grid ('2x2'); "
             "default 0 = classic single-world engine.  Sharded results "
             "are bit-identical for every shard count and tile shape")
    parser.add_argument(
        "--epoch", default=None, metavar="SECONDS|auto",
        help="barrier spacing for the sharded engine (default auto; any "
             "value in (0, latency] yields bit-identical results, so "
             "this is purely a wall-clock knob)")
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for multi-seed sweeps (default: REPRO_JOBS "
             "env or 1 = serial in-process; 0 = all CPUs)")
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk result cache (always recompute)")
    parser.add_argument(
        "--cache-dir", default=None,
        help="result cache directory (default: REPRO_CACHE_DIR env or "
             "./.repro-cache)")
    parser.add_argument(
        "--csv", default=None,
        help="write the result rows to this CSV file")
    parser.add_argument(
        "--out-dir", default=None,
        help="with 'all': write one CSV per experiment into this directory")
    return parser


def configure_engine(jobs: Optional[int], no_cache: bool,
                     cache_dir: Optional[str]) -> parallel.ParallelRunner:
    """Install the process-wide engine from the CLI flags."""
    cache = None if no_cache else ResultCache(
        pathlib.Path(cache_dir) if cache_dir else default_cache_dir())
    return parallel.configure(jobs=parallel.resolve_jobs(jobs),
                              cache=cache)


def run_one(experiment_id: str, scale_name: Optional[str],
            csv_path: Optional[str], seed: Optional[int] = None) -> None:
    """Run one experiment id at ``scale_name``, print the table and
    optionally write ``csv_path``; ``seed`` re-bases the seed list."""
    scale = get_scale(scale_name)
    if seed is not None:
        scale = scale.with_seed_base(seed)
    runner = parallel.get_default_runner()
    runner.stats.reset()
    result = ALL_EXPERIMENTS[experiment_id](scale)
    print(format_experiment(result))
    pivot = experiment_pivot(result)
    if pivot:
        print("\n" + pivot)
    for note in result.notes:
        print("\n" + note)
    print(format_engine_stats(runner.stats, jobs=runner.jobs,
                              cached=runner.cache is not None))
    if csv_path:
        pathlib.Path(csv_path).parent.mkdir(parents=True, exist_ok=True)
        to_csv(result, csv_path)
        print(f"\nwrote {csv_path}")


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        print("available experiments:")
        for name in ALL_EXPERIMENTS:
            doc = (ALL_EXPERIMENTS[name].__doc__ or "").strip()
            print(f"  {name:16s} {doc.splitlines()[0]}")
        return 0
    if args.experiment == "study":
        # Imported lazily: only the study path needs the declarations.
        from repro.study.studies import STUDIES
        if args.run is None:
            print("registered studies (run with 'study --run <id>'):")
            for study in STUDIES.values():
                print(f"  {study.study_id:16s} {study.summary}")
            return 0
        if args.run not in STUDIES:
            print(f"unknown study {args.run!r}; try 'study --list'",
                  file=sys.stderr)
            return 2
    try:
        epoch = (None if args.epoch in (None, "auto")
                 else float(args.epoch))
        shard_config = ShardConfig.parse(args.shards, epoch=epoch)
    except ValueError as exc:
        print(f"bad --shards/--epoch: {exc}", file=sys.stderr)
        return 2
    configure_engine(args.jobs, args.no_cache, args.cache_dir)
    experiments.DEFAULT_SHARDS = shard_config
    try:
        if args.experiment == "all":
            out_dir = pathlib.Path(args.out_dir or "results")
            out_dir.mkdir(parents=True, exist_ok=True)
            for name in ALL_EXPERIMENTS:
                run_one(name, args.scale, str(out_dir / f"{name}.csv"),
                        seed=args.seed)
                print()
            return 0
        if args.experiment == "study":
            # Every registered study is also an ALL_EXPERIMENTS entry,
            # so the study path reuses the standard run/print/CSV flow.
            run_one(args.run, args.scale, args.csv, seed=args.seed)
            return 0
        if args.experiment not in ALL_EXPERIMENTS:
            print(f"unknown experiment {args.experiment!r}; "
                  f"try 'list'", file=sys.stderr)
            return 2
        run_one(args.experiment, args.scale, args.csv, seed=args.seed)
        return 0
    finally:
        # Reap the pool and restore the library defaults (serial,
        # uncached, unsharded) so embedding callers — e.g. the test
        # suite — do not inherit this invocation's engine configuration.
        parallel.configure(jobs=1, cache=None)
        experiments.DEFAULT_SHARDS = 0


if __name__ == "__main__":
    raise SystemExit(main())
