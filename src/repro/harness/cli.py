"""Command-line entry point for the experiment harness.

Run any reproduced figure or ablation from a shell::

    python -m repro.harness.cli list
    python -m repro.harness.cli fig13
    python -m repro.harness.cli fig17 --scale paper --csv out/fig17.csv
    python -m repro.harness.cli all --out-dir results/

Equivalent to the benchmark suite minus the timing machinery — handy on a
cluster where each figure is one job.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional

from repro.harness.experiments import ALL_EXPERIMENTS
from repro.harness.presets import get_scale
from repro.harness.reporting import format_experiment, to_csv


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.harness.cli",
        description="Regenerate the paper's figures and ablations.")
    parser.add_argument(
        "experiment",
        help="experiment id (fig11..fig20, abl-gc, abl-backoff, "
             "abl-adaptive-hb, abl-ids, abl-dutycycle, energy-lifetime), "
             "'all', or 'list'")
    parser.add_argument(
        "--scale", default=None, choices=["quick", "paper"],
        help="experiment scale (default: REPRO_SCALE env or quick)")
    parser.add_argument(
        "--seed", type=int, default=None,
        help="re-base the deterministic seed set on this first seed "
             "(default: the scale's seed_base, 0)")
    parser.add_argument(
        "--csv", default=None,
        help="write the result rows to this CSV file")
    parser.add_argument(
        "--out-dir", default=None,
        help="with 'all': write one CSV per experiment into this directory")
    return parser


def run_one(experiment_id: str, scale_name: Optional[str],
            csv_path: Optional[str], seed: Optional[int] = None) -> None:
    scale = get_scale(scale_name)
    if seed is not None:
        scale = scale.with_seed_base(seed)
    result = ALL_EXPERIMENTS[experiment_id](scale)
    print(format_experiment(result))
    if csv_path:
        pathlib.Path(csv_path).parent.mkdir(parents=True, exist_ok=True)
        to_csv(result, csv_path)
        print(f"\nwrote {csv_path}")


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        print("available experiments:")
        for name in ALL_EXPERIMENTS:
            doc = (ALL_EXPERIMENTS[name].__doc__ or "").strip()
            print(f"  {name:16s} {doc.splitlines()[0]}")
        return 0
    if args.experiment == "all":
        out_dir = pathlib.Path(args.out_dir or "results")
        out_dir.mkdir(parents=True, exist_ok=True)
        for name in ALL_EXPERIMENTS:
            run_one(name, args.scale, str(out_dir / f"{name}.csv"),
                    seed=args.seed)
            print()
        return 0
    if args.experiment not in ALL_EXPERIMENTS:
        print(f"unknown experiment {args.experiment!r}; "
              f"try 'list'", file=sys.stderr)
        return 2
    run_one(args.experiment, args.scale, args.csv, seed=args.seed)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
