"""Frozen hand-written ablations: the pre-study reference implementations.

Verbatim copies of the six ``abl-*`` experiment functions as they were
written before :mod:`repro.study` collapsed them into declarations
(the same pattern as :mod:`repro.baselines.reference` for protocol
pseudocode).  They exist solely so the declaration-equivalence suite
(``tests/test_study.py``) can prove each collapsed study
result-identical — same rows, same row order, same CSV bytes — to the
nested loops it replaced.  Nothing in the library calls these; do not
"improve" them, their value is that they never change.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.config import FrugalConfig
from repro.faults import FaultConfig, RegionalOutage
from repro.harness.experiments import (ENERGY_PROTOCOLS, FAULT_METRICS,
                                       ExperimentResult, energy_scenario,
                                       rwp_scenario)
from repro.harness.parallel import run_seeds
from repro.harness.presets import Scale, get_scale

__all__ = ["frozen_ablation_gc", "frozen_ablation_backoff",
           "frozen_ablation_heartbeat", "frozen_ablation_ids",
           "frozen_ablation_dutycycle", "frozen_ablation_outage",
           "FROZEN_ABLATIONS"]


def frozen_ablation_gc(scale: Optional[Scale] = None,
                       capacity: int = 8) -> ExperimentResult:
    """abl-gc as originally hand-written (see module docstring)."""
    scale = scale or get_scale()
    policies = ["validity-forward", "remaining-validity", "fifo", "random"]
    result = ExperimentResult(
        experiment_id="abl-gc",
        title=f"Eviction policy comparison (event table capacity "
              f"{capacity})",
        parameters={"scale": scale.name, "capacity": capacity,
                    "policies": policies})
    n_events = 16
    for policy in policies:
        frugal = FrugalConfig.paper_random_waypoint().with_changes(
            event_table_capacity=capacity, eviction_policy=policy)
        cfg = rwp_scenario(scale, 10.0, 10.0, validity=120.0, interest=0.8,
                           n_events=n_events, duration=160.0, frugal=frugal)
        multi = run_seeds(cfg, scale.seed_list())
        summary = multi.summary()
        result.rows.append({
            "policy": policy,
            "reliability": summary["reliability"].mean,
            "duplicates": summary["duplicates"].mean})
    return result


def frozen_ablation_backoff(scale: Optional[Scale] = None
                            ) -> ExperimentResult:
    """abl-backoff as originally hand-written (see module docstring)."""
    scale = scale or get_scale()
    variants = {
        "backoff+suppression": {},
        "no-suppression": {"backoff_suppression": False},
        "no-backoff": {"use_backoff": False,
                       "backoff_suppression": False},
    }
    result = ExperimentResult(
        experiment_id="abl-backoff",
        title="Back-off / suppression ablation (duplicates per process)",
        parameters={"scale": scale.name, "variants": list(variants)})
    for name, changes in variants.items():
        frugal = FrugalConfig.paper_random_waypoint().with_changes(**changes)
        cfg = rwp_scenario(scale, 10.0, 10.0, validity=180.0, interest=0.8,
                           n_events=5, duration=180.0, frugal=frugal)
        multi = run_seeds(cfg, scale.seed_list())
        summary = multi.summary()
        result.rows.append({
            "variant": name,
            "reliability": summary["reliability"].mean,
            "duplicates": summary["duplicates"].mean,
            "bandwidth_bytes": summary["bandwidth_bytes"].mean})
    return result


def frozen_ablation_heartbeat(scale: Optional[Scale] = None
                              ) -> ExperimentResult:
    """abl-adaptive-hb as originally hand-written (see module docstring)."""
    scale = scale or get_scale()
    speeds = [5.0, 20.0, 40.0]
    result = ExperimentResult(
        experiment_id="abl-adaptive-hb",
        title="Adaptive vs static heartbeat (hb upper bound 5 s)",
        parameters={"scale": scale.name, "speeds": speeds})
    for adaptive in (True, False):
        for speed in speeds:
            frugal = FrugalConfig.paper_random_waypoint().with_changes(
                hb_upper_bound=5.0, adaptive_heartbeat=adaptive)
            cfg = rwp_scenario(scale, speed, speed, validity=120.0,
                               interest=0.8, frugal=frugal)
            multi = run_seeds(cfg, scale.seed_list())
            summary = multi.summary()
            result.rows.append({
                "adaptive": adaptive, "speed": speed,
                "reliability": summary["reliability"].mean,
                "bandwidth_bytes": summary["bandwidth_bytes"].mean})
    return result


def frozen_ablation_ids(scale: Optional[Scale] = None) -> ExperimentResult:
    """abl-ids as originally hand-written (see module docstring)."""
    scale = scale or get_scale()
    result = ExperimentResult(
        experiment_id="abl-ids",
        title="Event-id exchange vs blind push (duplicates, bandwidth)",
        parameters={"scale": scale.name})
    for announce in (True, False):
        frugal = FrugalConfig.paper_random_waypoint().with_changes(
            announce_on_new_neighbor=announce)
        cfg = rwp_scenario(scale, 10.0, 10.0, validity=180.0, interest=0.8,
                           n_events=5, duration=180.0, frugal=frugal)
        multi = run_seeds(cfg, scale.seed_list())
        summary = multi.summary()
        result.rows.append({
            "id_exchange": announce,
            "reliability": summary["reliability"].mean,
            "duplicates": summary["duplicates"].mean,
            "bandwidth_bytes": summary["bandwidth_bytes"].mean})
    return result


def frozen_ablation_dutycycle(scale: Optional[Scale] = None,
                              awake_fractions: Sequence[float] =
                              (1.0, 0.5, 0.25)) -> ExperimentResult:
    """abl-dutycycle as originally hand-written (see module docstring)."""
    scale = scale or get_scale()
    result = ExperimentResult(
        experiment_id="abl-dutycycle",
        title="Duty-cycling ablation (heartbeat-aligned sleep windows)",
        parameters={"scale": scale.name,
                    "protocols": list(ENERGY_PROTOCOLS),
                    "awake_fractions": list(awake_fractions)})
    for protocol in ENERGY_PROTOCOLS:
        for awake in awake_fractions:
            cfg = energy_scenario(scale, protocol, awake_fraction=awake)
            multi = run_seeds(cfg, scale.seed_list())
            summary = multi.summary()
            result.rows.append({
                "protocol": protocol, "awake_fraction": awake,
                "reliability": summary["reliability"].mean,
                "joules_per_node": summary["joules_per_node"].mean,
                "joules_per_delivery": summary["joules_per_delivery"].mean,
                "bandwidth_bytes": summary["bandwidth_bytes"].mean})
    return result


def frozen_ablation_outage(scale: Optional[Scale] = None
                           ) -> ExperimentResult:
    """abl-outage as originally hand-written (see module docstring)."""
    scale = scale or get_scale()
    fractions = scale.pick([0.25, 0.5, 0.75], [0.5])
    variants = [("none", 0.0)] + [(kind, frac)
                                  for kind in ("silence", "crash")
                                  for frac in fractions]
    result = ExperimentResult(
        experiment_id="abl-outage",
        title="Regional outage ablation (60 s outage, random waypoint)",
        parameters={"scale": scale.name,
                    "kinds": ["none", "silence", "crash"],
                    "radius_fractions": fractions})
    half = scale.rwp_area_m / 2.0
    for kind, frac in variants:
        if kind == "none":
            faults = FaultConfig()
        else:
            faults = FaultConfig(outages=(RegionalOutage(
                at=20.0, duration=60.0, center=(half, half),
                radius_m=frac * half, kind=kind),))
        cfg = rwp_scenario(scale, 10.0, 10.0, validity=100.0,
                           interest=0.8, n_events=5,
                           duration=120.0).with_changes(faults=faults)
        multi = run_seeds(cfg, scale.seed_list())
        summary = multi.summary()
        row = {"outage": kind, "radius_frac": frac,
               "reliability": summary["reliability"].mean,
               "bandwidth_bytes": summary["bandwidth_bytes"].mean}
        for name in FAULT_METRICS:
            row[name] = summary[name].mean
        result.rows.append(row)
    return result


#: study id -> its frozen hand-written reference implementation.
FROZEN_ABLATIONS = {
    "abl-gc": frozen_ablation_gc,
    "abl-backoff": frozen_ablation_backoff,
    "abl-adaptive-hb": frozen_ablation_heartbeat,
    "abl-ids": frozen_ablation_ids,
    "abl-dutycycle": frozen_ablation_dutycycle,
    "abl-outage": frozen_ablation_outage,
}
