"""Scenario construction and execution: one simulated world, end to end.

A :class:`ScenarioConfig` fully describes an experiment trial: how many
processes, how they move, who subscribes to what, which protocol they run,
the radio, and which events get published when.  :func:`run_scenario`
builds the world, runs warm-up + measurement window, and returns a
:class:`ScenarioResult` exposing the paper's metrics.

Topic layout
------------
Processes come in two populations, as in the paper's interest sweeps:

* *subscribers* (``subscriber_fraction`` of processes) subscribe to
  ``event_topic`` — they are entitled to the published events;
* the rest subscribe to ``other_topic`` — an unrelated branch of the topic
  tree, so published events are *parasite* events for them.

The publishers of the scheduled publications are drawn from the subscriber
population (the paper's scenarios always have the publisher interested in
its own topic).
"""

from __future__ import annotations

import abc
import time as _wallclock
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

# Importing the baseline package (and, via repro.core, the frugal
# protocol module) populates the protocol registry this module
# dispatches through — including in spawned worker processes, which
# re-import this module to unpickle configs.
from repro.baselines import GossipConfig
from repro.core import registry
from repro.core.base import ProtocolCounters, PubSubProtocol
from repro.core.config import FrugalConfig
from repro.core.events import Event, EventFactory
from repro.energy import EnergyAccountant, EnergyConfig
from repro.faults import FaultConfig, FaultInjector, FaultTimeline
from repro.metrics import (MetricsCollector, ReliabilityReport,
                           churn_aware_reliability, event_reliability,
                           mean_reliability, recovery_latencies)
from repro.mobility import (CitySection, MobilityModel, RandomWaypoint,
                            Stationary, StreetMap, campus_map, grid_map)
from repro.net import (MediumConfig, Node, RadioConfig, SizeModel,
                       WirelessMedium)
from repro.sim import RngRegistry, Simulator, TimerWheel
# Only the shard *config* (a plain dataclass); the engine itself stays
# a lazy import inside run_scenario so the classic path never pays for
# it (repro.sim.shard loads its engine module lazily for this reason).
from repro.sim.shard import ShardConfig
from repro.sim.space import Vec2

def known_protocols(include_hidden: bool = False) -> Tuple[str, ...]:
    """The registered protocol names (the historical ``PROTOCOLS`` tuple,
    now answered live by :mod:`repro.core.registry`)."""
    return tuple(registry.names(include_hidden=include_hidden))


# --------------------------------------------------------------------------
# Mobility specifications (picklable descriptions, built per node at setup)
# --------------------------------------------------------------------------

class MobilitySpec(abc.ABC):
    """A declarative description of how every process moves."""

    @abc.abstractmethod
    def build(self, index: int) -> MobilityModel:
        """Instantiate the mobility model for process ``index``."""

    def max_speed_mps(self) -> Optional[float]:
        """An upper bound on any process's speed, m/s — or ``None``
        when the spec cannot bound it.

        The sharded engine's geometric prunes (audibility routing, the
        resident-bbox delivery prefilter) inflate their reach by
        ``max_speed * dt`` drift margins; a spec that answers ``None``
        simply disarms those prunes, which stays correct (everything
        ships/resolves) at some wall-clock cost.
        """
        return None


@dataclass(frozen=True)
class RandomWaypointSpec(MobilitySpec):
    """Uniform random waypoint in a ``width x height`` rectangle."""

    width: float
    height: float
    speed_min: float
    speed_max: float
    pause_time: float = 1.0

    def build(self, index: int) -> MobilityModel:
        """Random-waypoint (or stationary, at 0 m/s) model for one process."""
        if self.speed_max <= 0:
            return Stationary(width=self.width, height=self.height)
        return RandomWaypoint(self.width, self.height,
                              self.speed_min, self.speed_max,
                              pause_time=self.pause_time)

    def max_speed_mps(self) -> float:
        """Waypoint legs never exceed ``speed_max`` (0 m/s builds
        stationary models)."""
        return max(self.speed_max, 0.0)


@dataclass(frozen=True)
class CitySectionSpec(MobilitySpec):
    """Street-constrained mobility over the synthetic campus map."""

    map_seed: int = 7
    stop_probability: float = 0.3
    stop_min: float = 2.0
    stop_max: float = 15.0

    def build(self, index: int) -> MobilityModel:
        """Street-constrained city-section model for one process."""
        return CitySection(self.street_map(),
                           stop_probability=self.stop_probability,
                           stop_min=self.stop_min, stop_max=self.stop_max)

    def street_map(self) -> StreetMap:
        """The (cached) synthetic campus street map for ``map_seed``."""
        return _campus_map_cached(self.map_seed)

    def max_speed_mps(self) -> float:
        """Street travel is capped by the fastest road's speed limit."""
        return _map_speed_cap(self.street_map())


def _map_speed_cap(street_map: StreetMap) -> float:
    """The fastest speed limit on a street map, m/s."""
    return max(data["speed_limit"]
               for _, _, data in street_map.graph.edges(data=True))


def _campus_map_cached(seed: int) -> StreetMap:
    cached = _MAP_CACHE.get(seed)
    if cached is None:
        cached = campus_map(seed=seed)
        _MAP_CACHE[seed] = cached
    return cached


_MAP_CACHE: Dict[int, StreetMap] = {}


@dataclass(frozen=True)
class CityGridSpec(MobilitySpec):
    """Street-constrained mobility over a parameterised Manhattan grid.

    The campus map behind :class:`CitySectionSpec` is fixed at
    1200 x 900 m — far too small for the city-scale populations the
    sharded engine targets.  This spec builds an arbitrary
    ``columns x rows`` street grid (``width x height`` metres) instead,
    so experiments can hold the paper's process density while the map
    grows with N.  Maps are cached per parameter tuple, like the campus
    map.
    """

    columns: int = 12
    rows: int = 9
    width: float = 2400.0
    height: float = 1800.0
    map_seed: int = 0
    stop_probability: float = 0.3
    stop_min: float = 2.0
    stop_max: float = 15.0

    def build(self, index: int) -> MobilityModel:
        """Street-constrained city model for one process."""
        return CitySection(self.street_map(),
                           stop_probability=self.stop_probability,
                           stop_min=self.stop_min, stop_max=self.stop_max)

    def street_map(self) -> StreetMap:
        """The (cached) grid street map for this spec's parameters."""
        key = (self.columns, self.rows, self.width, self.height,
               self.map_seed)
        cached = _GRID_MAP_CACHE.get(key)
        if cached is None:
            cached = grid_map(columns=self.columns, rows=self.rows,
                              width=self.width, height=self.height,
                              seed=self.map_seed,
                              name=f"grid-{self.columns}x{self.rows}")
            _GRID_MAP_CACHE[key] = cached
        return cached

    def max_speed_mps(self) -> float:
        """Street travel is capped by the fastest road's speed limit."""
        return _map_speed_cap(self.street_map())


_GRID_MAP_CACHE: Dict[Tuple[int, int, float, float, int], StreetMap] = {}


@dataclass(frozen=True)
class StationarySpec(MobilitySpec):
    """Fixed random positions (the paper's 0 m/s configuration)."""

    width: float
    height: float

    def build(self, index: int) -> MobilityModel:
        """Fixed-random-position model for one process."""
        return Stationary(width=self.width, height=self.height)

    def max_speed_mps(self) -> float:
        """Stationary processes never move."""
        return 0.0


@dataclass(frozen=True)
class FixedPositionsSpec(MobilitySpec):
    """Explicit stationary placement: process ``i`` sits at
    ``positions[i]`` (metres).

    Used by topology-sensitive tests and examples — a line of nodes, a
    known cluster inside an outage region — where the random placement
    of :class:`StationarySpec` would make assertions meaningless.
    Extra processes wrap around the position list.
    """

    positions: Tuple[Tuple[float, float], ...]

    def __post_init__(self) -> None:
        if not self.positions:
            raise ValueError("positions must not be empty")

    def build(self, index: int) -> MobilityModel:
        """Fixed-position model for one process."""
        x, y = self.positions[index % len(self.positions)]
        return Stationary(position=Vec2(x, y))

    def max_speed_mps(self) -> float:
        """Pinned processes never move."""
        return 0.0


# --------------------------------------------------------------------------
# Publications
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class Publication:
    """One scheduled publish.

    ``at`` is relative to the end of the warm-up window — a publication
    can therefore never overlap warm-up by construction (negative
    offsets, the only way to reach into warm-up, are rejected by
    ``ScenarioConfig.__post_init__``).  ``publisher`` is an index into
    the *subscriber* population (``None`` lets the scenario pick the
    first subscriber), so publishers are always interested in their own
    topic, as in the paper's experiments.
    """

    at: float
    validity: float
    topic: Optional[str] = None           # defaults to the event topic
    publisher: Optional[int] = None       # subscriber-population index
    payload_bytes: int = 400


# --------------------------------------------------------------------------
# Scenario configuration
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class ScenarioConfig:
    """Everything needed to reproduce one simulation trial bit-for-bit."""

    n_processes: int
    mobility: MobilitySpec
    duration: float
    warmup: float = 0.0
    seed: int = 0
    protocol: str = "frugal"
    frugal: FrugalConfig = field(default_factory=FrugalConfig)
    flood_period: float = 1.0
    gossip_probability: float = 0.6
    counter_threshold: int = 3
    gossip: GossipConfig = field(default_factory=GossipConfig)
    radio: RadioConfig = field(
        default_factory=RadioConfig.paper_random_waypoint)
    medium: MediumConfig = field(default_factory=MediumConfig)
    sizes: SizeModel = field(default_factory=SizeModel)
    subscriber_fraction: float = 1.0
    event_topic: str = ".paper.events.demo"
    other_topic: str = ".paper.other"
    publications: Tuple[Publication, ...] = ()
    speed_sensor: bool = True
    energy: Optional[EnergyConfig] = None
    faults: Optional[FaultConfig] = None
    #: Coalesce every node's periodic tasks onto one shared kernel
    #: timer wheel (identical firing times and tie-order, fewer kernel
    #: events); ``False`` arms one kernel timer per periodic task.
    coalesced_timers: bool = True
    #: Sharded execution: either a plain shard count ``K`` (coerced to
    #: a stripe-plan :class:`~repro.sim.shard.ShardConfig`) or a full
    #: ``ShardConfig`` choosing the tile grid, epoch length and
    #: latency.  Summaries are invariant in the shard count, tile shape
    #: and (sound) epoch length.  ``0`` — the default — keeps the
    #: classic single-world engine.
    shards: "ShardConfig" = 0  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.n_processes < 1:
            raise ValueError("n_processes must be >= 1")
        # Accept historical plain-int shard counts everywhere a
        # ShardConfig is (validation lives in ShardConfig itself).
        object.__setattr__(self, "shards", ShardConfig.coerce(self.shards))
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.warmup < 0:
            raise ValueError("warmup must be >= 0")
        if self.protocol not in registry.REGISTRY:
            raise ValueError(
                f"protocol must be one of "
                f"{registry.names(include_hidden=True)}: "
                f"{self.protocol!r}")
        if not 0.0 < self.subscriber_fraction <= 1.0:
            raise ValueError("subscriber_fraction must be in (0, 1]")
        for pub in self.publications:
            # Publication.at is relative to the *end* of warm-up, so a
            # publication cannot overlap the warm-up window: the only
            # way to reach into it would be a negative offset, rejected
            # here explicitly.
            if pub.at < 0:
                raise ValueError(
                    f"publication at {pub.at}s would precede the "
                    f"measurement window: Publication.at is relative to "
                    f"the end of warm-up ({self.warmup}s), so scheduling "
                    f"inside warm-up is not possible")
            if pub.at >= self.duration:
                raise ValueError(
                    f"publication at {pub.at}s falls outside the "
                    f"measurement window [0, {self.duration})")
        if self.faults is not None:
            self.faults.validate(self.duration, self.n_processes)

    def with_changes(self, **changes) -> "ScenarioConfig":
        """A copy of this config with the given fields replaced."""
        return replace(self, **changes)

    def with_flat_medium(self) -> "ScenarioConfig":
        """The paired all-scalar reference config.

        Switches off every acceleration layer at once — the spatial
        grid, the numpy batch engine and the coalesced timer wheel — so
        the world runs the naive O(N) full-scan medium with one kernel
        timer per periodic task.  The equality tests and
        ``benchmarks/bench_scale.py`` prove the accelerated stack
        reproduces this reference bit for bit.
        """
        return self.with_changes(
            medium=replace(self.medium, spatial_index=False,
                           vectorized=False),
            coalesced_timers=False)

    def with_scalar_engine(self) -> "ScenarioConfig":
        """The grid-backed but scalar config (PR-3 behaviour).

        Keeps the spatial index's candidate pruning while switching off
        the numpy batch engine and the timer wheel — the middle rung of
        the vectorized / grid-scalar / flat-scalar equality ladder, and
        the baseline the vectorized speedup is measured against.
        """
        return self.with_changes(
            medium=replace(self.medium, vectorized=False),
            coalesced_timers=False)

    # -- convenience presets --------------------------------------------------

    @classmethod
    def random_waypoint_demo(cls, seed: int = 0,
                             n_processes: int = 20) -> "ScenarioConfig":
        """A small, fast random-waypoint scenario for quickstarts/tests."""
        return cls(
            n_processes=n_processes,
            mobility=RandomWaypointSpec(width=1500.0, height=1500.0,
                                        speed_min=10.0, speed_max=10.0),
            duration=120.0, warmup=10.0, seed=seed,
            subscriber_fraction=0.8,
            publications=(Publication(at=5.0, validity=90.0),))


# --------------------------------------------------------------------------
# Result
# --------------------------------------------------------------------------

@dataclass
class ScenarioResult:
    """Outcome of one scenario run.

    Results are picklable and round-trip clean: every metric method —
    reliability, the frugality counters and the energy summary fields —
    returns identical values before and after a pickle round trip, which
    is what the parallel execution engine (worker -> parent transfer) and
    the on-disk result cache rely on.  Pickling *detaches* the result
    from its live simulation world (see ``MetricsCollector.__getstate__``
    and ``EnergyAccountant.__getstate__``): the payload is measurements
    only, a few kilobytes instead of the megabytes of world graph.
    """

    config: ScenarioConfig
    collector: MetricsCollector
    published_events: List[Event]
    subscriber_ids: List[int]
    non_subscriber_ids: List[int]
    sim_events_processed: int
    wallclock_s: float
    energy: Optional[EnergyAccountant] = None
    faults: Optional[FaultTimeline] = None
    #: Sharded runs only: wall-clock seconds spent in each barrier
    #: phase (``drain`` / ``merge`` / ``ingest`` / ``retime``), plus
    #: ``barriers`` (count) and ``frames_exchanged`` — the measured
    #: barrier tax ``benchmarks/bench_shard.py`` publishes.  ``None``
    #: for classic runs; excluded from equality (timings are noise).
    barrier_stats: Optional[Dict[str, float]] = field(default=None,
                                                      compare=False)

    # -- reliability -------------------------------------------------------------

    def per_event_reports(self) -> List[ReliabilityReport]:
        """One in-time delivery report per published event."""
        return [event_reliability(self.collector, event, self.subscriber_ids)
                for event in self.published_events]

    def reliability(self) -> float:
        """Mean reliability across the scenario's publications."""
        return mean_reliability(self.per_event_reports())

    # -- frugality (per-process, over the measurement window) ----------------------

    def bandwidth_per_process_bytes(self) -> float:
        """Mean bytes put on the air per process (measurement window)."""
        return self.collector.bandwidth_per_process_bytes()

    def events_sent_per_process(self) -> float:
        """Mean events transmitted per process (measurement window)."""
        return self.collector.events_sent_per_process()

    def duplicates_per_process(self) -> float:
        """Mean duplicate receptions per process (measurement window)."""
        return self.collector.duplicates_per_process()

    def parasites_per_process(self) -> float:
        """Mean parasite (uninterested-topic) receptions per process."""
        return self.collector.parasites_per_process()

    def protocol_counters(self) -> ProtocolCounters:
        """Summed per-stack protocol counters (heartbeats, batches,
        deliveries, drops) over the measurement window — warm-up
        traffic is excluded, like every other metric; zeros for results
        produced before the capture existed."""
        totals = getattr(self.collector, "protocol_totals", None)
        return totals if totals is not None else ProtocolCounters()

    # -- energy (only when the scenario is energy-instrumented) --------------------

    def total_joules(self) -> float:
        """Network-wide energy spent, joules (0 when un-instrumented)."""
        return 0.0 if self.energy is None else self.energy.total_joules()

    def joules_per_node(self) -> float:
        """Mean energy per node, joules (0 when un-instrumented)."""
        return 0.0 if self.energy is None else self.energy.joules_per_node()

    def joules_per_delivery(self) -> float:
        """Joules the whole network burned per in-time delivery — the
        paper's frugality claim priced in energy instead of bytes."""
        if self.energy is None:
            return 0.0
        delivered = sum(r.delivered_in_time for r in
                        self.per_event_reports())
        if delivered == 0:
            return float("inf")
        return self.energy.total_joules() / delivered

    def network_lifetime_s(self) -> float:
        """Seconds from measurement start until the first battery death
        (the full window if everyone survived)."""
        if self.energy is None:
            return float(self.config.duration)
        end = self.config.warmup + self.config.duration
        return self.energy.network_lifetime_s(end) - self.config.warmup

    def survivor_ids(self) -> List[int]:
        """Ids of nodes whose batteries lasted the whole window."""
        if self.energy is None:
            return [n for n in self.subscriber_ids + self.non_subscriber_ids]
        return self.energy.survivor_ids()

    def survivor_fraction(self) -> float:
        """Fraction of the population still powered at window end."""
        if self.energy is None:
            return 1.0
        return len(self.energy.survivor_ids()) / self.config.n_processes

    def survivor_reliability(self) -> float:
        """Reliability computed over the subscribers whose batteries
        lasted — did the network serve the devices that stayed up?"""
        if self.energy is None:
            return self.reliability()
        dead = set(self.energy.depleted_ids())
        survivors = [i for i in self.subscriber_ids if i not in dead]
        if not survivors:
            return 0.0
        reports = [event_reliability(self.collector, event, survivors)
                   for event in self.published_events]
        return mean_reliability(reports)

    # -- faults (only when the scenario is fault-instrumented) ----------------------

    def availability(self) -> float:
        """Mean fraction of the window the population was up (1.0 for
        fault-free scenarios)."""
        return 1.0 if self.faults is None else self.faults.availability()

    def mean_downtime_s(self) -> float:
        """Mean fault-induced downtime per node, seconds."""
        return 0.0 if self.faults is None else self.faults.mean_downtime_s()

    def churn_reliability(self) -> float:
        """Reliability with churn-aware denominators: per event, only
        subscribers that were up at some point of its validity window
        count — a node down the whole window could never have received
        it.  Equals :meth:`reliability` for fault-free scenarios."""
        if self.faults is None:
            return self.reliability()
        return churn_aware_reliability(self.collector,
                                       self.published_events,
                                       self.subscriber_ids,
                                       self.faults.was_up_during)

    def recovery_latency_s(self) -> float:
        """Mean catch-up delay after recoveries: how long a recovered
        subscriber waited for its first delivery of each event that was
        still valid when it came back (0.0 when nothing caught up)."""
        if self.faults is None:
            return 0.0
        samples = recovery_latencies(self.collector, self.published_events,
                                     self.subscriber_ids,
                                     self.faults.recoveries)
        return sum(samples) / len(samples) if samples else 0.0

    def summary(self) -> Dict[str, float]:
        """The four paper metrics plus reliability (and, for
        energy-/fault-instrumented scenarios, the energy and
        availability metrics), flat."""
        out = {
            "reliability": self.reliability(),
            "bandwidth_bytes": self.bandwidth_per_process_bytes(),
            "events_sent": self.events_sent_per_process(),
            "duplicates": self.duplicates_per_process(),
            "parasites": self.parasites_per_process(),
        }
        if self.energy is not None:
            out.update({
                "joules_per_node": self.joules_per_node(),
                "joules_per_delivery": self.joules_per_delivery(),
                "lifetime_s": self.network_lifetime_s(),
                "survivor_fraction": self.survivor_fraction(),
                "survivor_reliability": self.survivor_reliability(),
            })
        if self.faults is not None:
            out.update({
                "availability": self.availability(),
                "churn_reliability": self.churn_reliability(),
                "recovery_latency_s": self.recovery_latency_s(),
                "downtime_s": self.mean_downtime_s(),
            })
        return out


# --------------------------------------------------------------------------
# Execution
# --------------------------------------------------------------------------

def make_protocol(config: ScenarioConfig) -> PubSubProtocol:
    """Instantiate the protocol named by ``config.protocol``.

    Dispatch goes through the protocol registry
    (:mod:`repro.core.registry`): any strategy registered there — the
    built-ins, the hidden verification references, or a custom
    composition of the stack layers — is constructible by name.
    """
    return registry.create(config.protocol, config)


def select_subscribers(config: ScenarioConfig,
                       rngs: RngRegistry) -> List[int]:
    """Deterministically draw the subscriber population.

    At least one process always subscribes (there must be a publisher);
    the draw uses its own rng stream so that varying the fraction keeps
    mobility traces identical across paired runs.
    """
    n_subs = max(1, round(config.subscriber_fraction * config.n_processes))
    rng = rngs.stream("subscribers")
    return sorted(rng.sample(range(config.n_processes), n_subs))


@dataclass
class World:
    """A fully wired simulation, ready to run.

    Iterates as the historical ``(sim, medium, collector, nodes,
    subscriber_ids)`` 5-tuple so existing unpacking call sites keep
    working; the energy accountant (present only for energy-instrumented
    configs) is reached by name.
    """

    sim: Simulator
    medium: WirelessMedium
    collector: MetricsCollector
    nodes: List[Node]
    subscriber_ids: List[int]
    energy: Optional[EnergyAccountant] = None
    faults: Optional[FaultInjector] = None

    def __iter__(self):
        return iter((self.sim, self.medium, self.collector, self.nodes,
                     self.subscriber_ids))


def build_world(config: ScenarioConfig) -> World:
    """Construct simulator, medium, nodes and collectors (no events yet).

    Exposed separately from :func:`run_scenario` so tests and examples can
    poke at a fully wired world before/while it runs.
    """
    sim = Simulator()
    rngs = RngRegistry(config.seed)
    wheel = TimerWheel(sim) if config.coalesced_timers else None
    medium = WirelessMedium(sim, config.radio, config=config.medium,
                            sizes=config.sizes, rng=rngs.stream("medium"))
    collector = MetricsCollector(medium)
    accountant = (EnergyAccountant(medium, config.energy)
                  if config.energy is not None else None)
    subscriber_ids = select_subscribers(config, rngs)
    subscriber_set = set(subscriber_ids)
    nodes: List[Node] = []
    for i in range(config.n_processes):
        protocol = make_protocol(config)
        node = Node(i, sim, medium,
                    mobility=config.mobility.build(i),
                    protocol=protocol,
                    rng=rngs.stream("node", i),
                    speed_sensor=config.speed_sensor,
                    wheel=wheel)
        topic = (config.event_topic if i in subscriber_set
                 else config.other_topic)
        protocol.subscribe(topic)
        collector.track_node(node)
        if accountant is not None:
            accountant.track_node(node)
        nodes.append(node)
    injector = None
    if config.faults is not None:
        # Armed at build time: fault timers land on the kernel before
        # any node starts, so same-instant ties resolve plan-first,
        # deterministically.  All fault times are offsets from the end
        # of warm-up, the same time base publications use.
        injector = FaultInjector(
            sim=sim, medium=medium, nodes=nodes, rngs=rngs,
            config=config.faults, start=config.warmup,
            horizon=config.warmup + config.duration)
        injector.arm()
    return World(sim=sim, medium=medium, collector=collector, nodes=nodes,
                 subscriber_ids=subscriber_ids, energy=accountant,
                 faults=injector)


def run_scenario(config: ScenarioConfig) -> ScenarioResult:
    """Run one trial: warm-up, publications, measurement window."""
    if config.shards:
        # Imported lazily: the shard engine pulls this module in for
        # world construction, and the classic path must not pay for it.
        from repro.sim.shard.engine import run_sharded_scenario
        return run_sharded_scenario(config)
    started = _wallclock.perf_counter()
    world = build_world(config)
    sim, medium, collector, nodes, subscriber_ids = world
    subscriber_set = set(subscriber_ids)
    non_subscribers = [n.id for n in nodes if n.id not in subscriber_set]

    for node in nodes:
        node.start()

    # Warm-up: mobility mixes, neighbourhoods form; traffic is not counted
    # (the paper discards the first 600 s of its random-waypoint runs).
    if config.warmup > 0:
        collector.freeze()
        sim.run(until=config.warmup)
        collector.resume()
    # Protocol counters are lifetime-monotonic; baseline them here so
    # the captured totals cover the measurement window only, like every
    # other metric.
    collector.mark_protocol_baseline(nodes)
    if world.energy is not None:
        # Warm-up traffic is free: zero the meters and refill batteries
        # so lifetime clocks start with the measurement window.
        world.energy.start_measurement()

    # Schedule the publications.
    published: List[Event] = []
    factories: Dict[int, EventFactory] = {}

    def _do_publish(publisher_id: int, pub: Publication) -> None:
        factory = factories.setdefault(publisher_id,
                                       EventFactory(publisher_id))
        event = factory.create(pub.topic or config.event_topic,
                               validity=pub.validity, now=sim.now,
                               payload_bytes=pub.payload_bytes)
        published.append(event)
        collector.record_publication(event)
        nodes[publisher_id].protocol.publish(event)

    for pub in config.publications:
        idx = pub.publisher if pub.publisher is not None else 0
        publisher_id = subscriber_ids[idx % len(subscriber_ids)]
        sim.call_at(config.warmup + pub.at, _do_publish, publisher_id, pub)

    sim.run(until=config.warmup + config.duration)

    if world.energy is not None:
        world.energy.finalize()
    if world.faults is not None:
        world.faults.finalize()
    collector.capture_protocol_totals(nodes)

    return ScenarioResult(
        config=config,
        collector=collector,
        published_events=published,
        subscriber_ids=subscriber_ids,
        non_subscriber_ids=non_subscribers,
        sim_events_processed=sim.events_processed,
        wallclock_s=_wallclock.perf_counter() - started,
        energy=world.energy,
        faults=None if world.faults is None else world.faults.timeline)
