"""Rendering experiment results: aligned ASCII tables and CSV files.

The benchmark harness prints each reproduced figure with these helpers so
`pytest benchmarks/ --benchmark-only` output can be compared side by side
with the paper's plots (EXPERIMENTS.md records the comparison).
"""

from __future__ import annotations

import csv
import io
import math
from typing import Dict, List, Optional, Sequence

from repro.harness.experiments import ExperimentResult


def _render_cell(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if not math.isfinite(value):
            return str(value)           # inf / nan (e.g. mains battery)
        if value == int(value) and abs(value) < 1e6:
            return str(int(value))
        return f"{value:.4g}"
    return str(value)


def format_table(rows: Sequence[Dict], columns: Optional[List[str]] = None,
                 ) -> str:
    """Render dict-rows as an aligned, pipe-separated ASCII table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered = [[_render_cell(row.get(col, "")) for col in columns]
                for row in rows]
    widths = [max(len(col), *(len(r[i]) for r in rendered))
              for i, col in enumerate(columns)]
    def _line(cells: Sequence[str]) -> str:
        return " | ".join(c.rjust(w) for c, w in zip(cells, widths))
    header = _line(columns)
    sep = "-+-".join("-" * w for w in widths)
    return "\n".join([header, sep] + [_line(r) for r in rendered])


def format_experiment(result: ExperimentResult,
                      columns: Optional[List[str]] = None) -> str:
    """Title + parameter summary + rows table, ready to print."""
    buf = io.StringIO()
    buf.write(f"== {result.experiment_id}: {result.title} ==\n")
    params = ", ".join(f"{k}={v}" for k, v in result.parameters.items())
    buf.write(f"   ({params})\n")
    # Std-dev columns are noise in the console rendering; CSV keeps them.
    if columns is None and result.rows:
        columns = [c for c in result.rows[0] if not c.endswith("_std")]
    buf.write(format_table(result.rows, columns))
    return buf.getvalue()


def to_csv(result: ExperimentResult, path: str) -> None:
    """Write all rows (including std columns) to ``path``."""
    if not result.rows:
        raise ValueError(f"experiment {result.experiment_id} has no rows")
    columns: List[str] = []
    for row in result.rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    with open(path, "w", newline="") as f:
        writer = csv.DictWriter(f, fieldnames=columns)
        writer.writeheader()
        writer.writerows(result.rows)


def format_engine_stats(stats, jobs: int = 1,
                        cached: bool = False) -> str:
    """One-line cache-hit/worker report for a sweep.

    ``stats`` is an :class:`~repro.harness.parallel.EngineStats`; the
    CLI prints this after every experiment so reruns make the cache's
    contribution visible (``... 120 cells: 90 cached, 30 executed``).
    """
    total = stats.total
    if total == 0:
        return "engine: no scenario runs"
    parts = [f"engine: {total} scenario run{'s' if total != 1 else ''}"]
    if cached:
        parts.append(f"{stats.cache_hits} from cache")
        parts.append(f"{stats.executed} executed")
    else:
        parts.append(f"{stats.executed} executed (cache disabled)")
    workers = (f"{jobs} worker processes" if jobs > 1
               else "in-process, serial")
    return f"{parts[0]}: " + ", ".join(parts[1:]) + f" [{workers}]"


def depletion_timeline(deaths: Sequence[tuple], n_nodes: int,
                       horizon_s: float, buckets: int = 10) -> str:
    """Survivors-over-time table from ``(death_time, node_id)`` records.

    The energy experiments' network-lifetime view: how many radios were
    still up at each slice of the measurement window.
    """
    if n_nodes <= 0:
        raise ValueError("n_nodes must be positive")
    if horizon_s <= 0:
        raise ValueError("horizon_s must be positive")
    times = sorted(t for t, _ in deaths)
    rows = []
    for i in range(1, buckets + 1):
        t = horizon_s * i / buckets
        dead = sum(1 for d in times if d <= t)
        alive = n_nodes - dead
        rows.append({"t [s]": t, "survivors": alive,
                     "alive [%]": 100.0 * alive / n_nodes})
    return format_table(rows)


def availability_timeline(timeline, buckets: int = 10) -> str:
    """Nodes-up-over-time table from a
    :class:`~repro.faults.injector.FaultTimeline`.

    The fault experiments' population view: how much of the network was
    up at each slice of the measurement window (churn rests, outage
    windows and permanent drains all show up as dips).
    """
    if buckets <= 0:
        raise ValueError("buckets must be positive")
    start, end = timeline.window
    if end <= start:
        raise ValueError("timeline window must have positive length")
    n = timeline.n_nodes
    if n <= 0:
        raise ValueError("timeline must cover at least one node")
    rows = []
    for i in range(1, buckets + 1):
        t = start + (end - start) * i / buckets
        # Sample just inside the bucket edge: an interval closing exactly
        # at the window end would otherwise be missed by the [s, e) test.
        up = n - timeline.down_count_at(min(t, end) - 1e-9)
        rows.append({"t [s]": t - start, "up": up,
                     "up [%]": 100.0 * up / n})
    return format_table(rows)


#: Per-experiment pivot renderings the CLI appends below the row table:
#: experiment id -> kwargs for :func:`pivot_table` (``row_key`` /
#: ``col_key`` may each be one column name or a tuple of them).  The
#: ``protocol-matrix`` sweep is the flagship consumer — a protocol x
#: churn-rate grid of churn-aware reliability reads like the paper's
#: comparison figures.
EXPERIMENT_PIVOTS: Dict[str, Dict[str, object]] = {
    "protocol-matrix": {"row_key": "protocol", "col_key": "churn_per_min",
                        "value_key": "churn_reliability"},
}


def _key_tuple(keys) -> tuple:
    """Normalise one column name or a sequence of them to a tuple."""
    return (keys,) if isinstance(keys, str) else tuple(keys)


def pivot_table(rows: Sequence[Dict], row_keys, col_keys,
                value_key: str) -> str:
    """Pivot dict-rows into a grid: row keys x col keys -> value.

    The multi-key generalisation every pivot rendering goes through:
    ``row_keys``/``col_keys`` are each one column name or a sequence
    of them; each distinct row-key combination becomes one line (one
    label column per key) and each distinct col-key combination one
    column, sorted by value.  Combinations absent from ``rows`` render
    as ``nan``.  With single string keys the output is byte-identical
    to the historical :func:`reliability_grid` rendering.
    """
    row_keys = _key_tuple(row_keys)
    col_keys = _key_tuple(col_keys)
    if not row_keys or not col_keys:
        raise ValueError("pivot_table needs at least one row and col key")
    rows = list(rows)
    if rows:
        known = sorted({k for row in rows for k in row})
        missing = [k for k in (*row_keys, *col_keys, value_key)
                   if k not in known]
        if missing:
            raise KeyError(f"pivot keys {missing} not found in rows; "
                           f"known columns: {known}")
    row_vals = sorted({tuple(r[k] for k in row_keys) for r in rows})
    col_vals = sorted({tuple(r[k] for k in col_keys) for r in rows})
    lookup = {(tuple(r[k] for k in row_keys),
               tuple(r[k] for k in col_keys)): r[value_key] for r in rows}
    def _col_label(cv: tuple) -> str:
        return ",".join(f"{k}={_render_cell(v)}"
                        for k, v in zip(col_keys, cv))
    table = []
    for rv in row_vals:
        line = dict(zip(row_keys, rv))
        for cv in col_vals:
            line[_col_label(cv)] = lookup.get((rv, cv), float("nan"))
        table.append(line)
    return format_table(table)


def experiment_pivot(result: ExperimentResult) -> Optional[str]:
    """The registered pivot grid for this experiment, or ``None``.

    Returns a rendered comparison grid (see :data:`EXPERIMENT_PIVOTS`)
    when the experiment id has one and the rows carry the needed
    columns; the CLI prints it after the flat table.
    """
    spec = EXPERIMENT_PIVOTS.get(result.experiment_id)
    if spec is None or not result.rows:
        return None
    row_keys = _key_tuple(spec["row_key"])
    col_keys = _key_tuple(spec["col_key"])
    value_key = spec["value_key"]
    needed = set(row_keys) | set(col_keys) | {value_key}
    if not needed.issubset(result.rows[0]):
        return None
    title = f"-- {value_key} by {' x '.join(row_keys)} --"
    return title + "\n" + pivot_table(result.rows, row_keys, col_keys,
                                      value_key)


def reliability_grid(result: ExperimentResult, row_key: str,
                     col_key: str, value_key: str = "reliability",
                     **fixed) -> str:
    """Pivot rows into a 2-D grid (e.g. speed x validity -> reliability),
    mirroring the paper's 3-D surface plots as a text matrix.

    A thin wrapper over :func:`pivot_table` keeping the historical
    single-key signature; ``fixed`` pre-filters the rows.
    """
    rows = result.filter(**fixed) if fixed else result.rows
    return pivot_table(rows, row_key, col_key, value_key)
