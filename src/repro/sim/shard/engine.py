"""Sharded-world execution: one logical world, K cooperating shards.

``run_sharded_scenario`` runs the scenario described by a
:class:`~repro.harness.scenario.ScenarioConfig` with ``shards=K`` (or a
full :class:`~repro.sim.shard.config.ShardConfig`) as K spatially
partitioned sub-worlds that exchange radio traffic at **epoch
barriers**, and merges the per-shard measurements into one
:class:`~repro.harness.scenario.ScenarioResult`.  The defining
properties — asserted by ``tests/test_shard.py`` — are

* **shard-count invariance**: summaries for ``shards=1``, ``2`` and
  ``4`` are bit-identical;
* **tile-shape invariance**: a ``4x1``, ``2x2`` and ``1x4`` plan of the
  same K agree bit for bit;
* **epoch-length invariance**: any barrier spacing in
  ``(0, latency_s]`` yields bit-identical results, which is what makes
  ``epoch_s="auto"`` a pure wall-clock knob.

The retimed universe
--------------------
The sharded engine models a constant cross-node delivery latency
``L = latency_s`` (default 1 s): a frame transmitted over
``[s, e = s + airtime)`` occupies the channel **as heard by every node
but its sender** over ``(s + L, e + L)``, and is delivered — verdicts,
loss draws, protocol reactions — at the exact instant ``e + L``, as a
real kernel event inside whichever epoch contains it.  The sender's own
half-duplex busy window stays unshifted (it hears itself in real time).

This is what buys epoch-invariance.  A frame sent at ``s`` is
*committed* (drained, merged, ingested everywhere) at the first barrier
``>= s``, which is at most ``s + epoch`` — while its earliest possible
observable effect is at times ``> s + L``.  With ``epoch <= L``
(enforced by :class:`~repro.sim.shard.config.ShardConfig`), commitment
therefore always precedes first use — the conservative-PDES lookahead
bound — and every observable becomes a pure function of frame
timestamps and per-node RNG streams, independent of where the barriers
fall.  Extra barriers (the warm-up boundary, the end instant) only
subdivide epochs, which cannot reorder anything.  The one caveat: an
*exact float tie* between a delivery instant ``e + L`` and an unrelated
local event falls back to kernel scheduling order, which is
epoch-dependent; delivery instants carry airtime fractions
(sub-millisecond, non-round floats), so such ties do not occur in
practice and none has been observed across the test matrix.

How it works
------------
* **Ownership** — every node is assigned to the shard whose tile
  contains its *initial* position (:func:`compute_ownership` replays the
  mobility prefix of each node's ``("node", i)`` stream in a throwaway
  world, which is exact: ``Node.start`` starts mobility before the
  protocol ever draws).  The plan spans the initial population's extent
  with the medium's grid-cell geometry (``range + anchor slack``) as an
  ``rows x cols`` grid of whole cells — ``rows=1`` is the classic
  vertical-stripe plan.
* **Slotted medium** — inside a shard, frames transmitted during an
  epoch are *invisible* until the next barrier (:class:`ShardMedium`
  diverts them through the medium's ``shard_ingress`` hook into an
  outbox).  At each barrier the driver gathers every shard's outbox,
  sorts the union into the canonical ``(start, sender id, per-sender
  seq)`` order, and routes the committed batch by **audibility**: a
  frame ships to a shard only if the shard's resident bounding region,
  measured at the barrier and inflated by the worst-case drift
  ``v_max * (2 * horizon + L)``, lies within the frame's radio reach —
  a frame pruned here is provably inaudible to every resident at every
  relevant instant, so dropping it is observably a no-op for any K.
  Mobility specs that cannot bound ``v_max`` disarm the prune (ship
  everywhere), trading wall-clock for the same results.
* **Ingest** — each shard folds its routed batch into a start-sorted
  log (batches arrive in barrier order and batch b's starts all precede
  batch b+1's, so concatenation preserves the sort — no per-barrier
  re-sort) serving both carrier sense and collision verdicts via
  bisect-bounded slivers, and schedules one delivery event per frame at
  its exact ``e + L`` (the *retime* step).
* **Exactness** — nodes interact *only* through the medium, and the
  committed traffic every shard sees is a pure function of per-node
  streams and earlier barriers, so by induction over barriers no
  observable — deliveries, collisions, CSMA back-offs, energy charges,
  fault draws — depends on which nodes happen to be co-resident.
  Carrier sense and uniform frame loss draw from per-node streams
  (``("shard-medium", id)`` / ``("shard-loss", id)``) instead of the
  classic shared medium stream for the same reason.  (Kernel *event
  counts* are not observables: audibility routing legitimately changes
  ``sim_events_processed`` across K, and only the spawn/inproc pairing
  at equal K asserts it.)
* **Collisions** — a frame resolving at ``e + L`` checks strict overlap
  of shifted occupancies, which equals unshifted overlap (the shift
  cancels); every overlapping frame ``g`` satisfies ``g.start < e``, so
  ``g`` is committed by ``g.start + epoch < e + L`` — strictly before
  the verdict needs it, for any sound epoch.  The receiver's *own*
  transmissions block reception in real time (half duplex), checked
  against a resident-local send log rather than the committed one.

``shards=0`` (the default) never reaches this module: the classic
single-world engine runs untouched.  Note the retimed universe is a
*different* (equally valid) physics from the classic engine's
zero-latency one — sharded runs are compared against each other, never
against ``shards=0``.

Backends: ``spawn`` runs each shard in its own process connected by a
pipe; ``inproc`` steps the K worlds round-robin in this process (the
bit-identical fallback used for K=1, inside daemonic pool workers, and
on single-CPU hosts — CPU availability is measured container-aware via
:func:`repro.harness.parallel.available_cpu_count`).
``REPRO_SHARD_BACKEND`` forces either.
"""

from __future__ import annotations

import bisect
import math
import multiprocessing
import os
import time as _wallclock
import traceback
from dataclasses import dataclass
from typing import (Callable, Dict, List, Optional, Sequence, Tuple)

from repro.core.base import ProtocolCounters
from repro.core.events import Event, EventFactory
from repro.energy import EnergyAccountant
from repro.faults import FaultInjector, FaultTimeline
from repro.metrics import MetricsCollector
from repro.net import Node, WirelessMedium
from repro.net.medium import Transmission
from repro.sim import RngRegistry, Simulator, TimerWheel
from repro.sim.shard.config import (DEFAULT_EPOCH_S, ShardConfig,
                                    resolve_epoch_s)
from repro.sim.shard.partition import ShardPlan
from repro.sim.space import Vec2

#: Metres added to the radio range in every bounding-box prefilter —
#: keeps the box tests strict supersets of the exact audibility
#: predicate regardless of rounding, at zero cost.
_BBOX_SLACK_M = 1.0

#: The conservative stand-down bounding box: covers everything, so
#: every prune that cannot be proven sound simply stops pruning.
_EVERYWHERE = (-math.inf, -math.inf, math.inf, math.inf)


@dataclass
class ShardFrame:
    """One committed (or about-to-commit) frame on the shard bus.

    ``seq`` is the sender's per-run transmission counter; ``(sender,
    seq)`` identifies a frame globally, and ``(start, sender, seq)`` is
    the canonical merge order every shard sorts the committed batch by.
    """

    tx: Transmission
    seq: int


def _frame_key(frame: ShardFrame) -> Tuple[float, int, int]:
    """The deterministic merge-order key: (time, node id, seq)."""
    return (frame.tx.start, frame.tx.sender, frame.seq)


def compute_barriers(warmup: float, duration: float,
                     epoch: float = DEFAULT_EPOCH_S) -> List[float]:
    """The ascending epoch-barrier instants for one run.

    Multiples of ``epoch`` up to the run end, plus the warm-up boundary
    (metrics thaw there) and the exact end instant, deduplicated.  The
    extra instants only subdivide epochs, which the retimed exchange is
    insensitive to.
    """
    end = warmup + duration
    ticks = set()
    k = 1
    while k * epoch < end:
        ticks.add(k * epoch)
        k += 1
    if warmup > 0:
        ticks.add(warmup)
    ticks.add(end)
    return sorted(ticks)


def compute_ownership(config) -> Tuple[List[int], ShardPlan]:
    """Assign every node to a shard by its exact initial position.

    Replays, in a throwaway world, precisely the prefix of each node's
    ``("node", i)`` stream that the real ``Node.start`` consumes before
    any protocol draw — ``MobilityModel.start`` — and reads the model's
    position at time zero.  The tile plan spans the initial
    population's extent with the medium's grid-cell geometry
    (``range + anchor slack``), so shard borders line up with
    :class:`~repro.sim.space.SpatialGrid` cells; ``rows=1`` (a plain
    integer ``shards=K``) keeps the historical vertical stripes.
    """
    shards = ShardConfig.coerce(config.shards)
    sim = Simulator()
    rngs = RngRegistry(config.seed)
    positions: List[Vec2] = []
    for i in range(config.n_processes):
        model = config.mobility.build(i)
        model.start(sim, rngs.stream("node", i))
        positions.append(model.position())
    range_m = config.radio.communication_range_m()
    slack = config.medium.anchor_slack_m
    cell = range_m + (slack if slack is not None else range_m / 8.0)
    min_x = min(p.x for p in positions)
    max_x = max(p.x for p in positions)
    if max_x <= min_x:
        max_x = min_x + cell
    min_y = max_y = 0.0
    if shards.rows > 1:
        min_y = min(p.y for p in positions)
        max_y = max(p.y for p in positions)
        if max_y <= min_y:
            max_y = min_y + cell
    plan = ShardPlan(min_x=min_x, max_x=max_x, shards=shards.shards,
                     cell_size=cell, rows=shards.rows,
                     min_y=min_y, max_y=max_y or None)
    owners = [plan.shard_of(p) for p in positions]
    return owners, plan


def _routing_margin_m(config, latency_s: float) -> Optional[float]:
    """The reach inflation that makes audibility routing sound.

    A frame committed at barrier ``t_c`` is last consulted no later
    than ``t_c + 2 * horizon + L`` (its own delivery at ``e + L <= t_c
    + airtime + L``, carrier sense while on the shifted air, and
    collision verdicts of frames it overlaps, each at most ``horizon``
    later — the classic medium already bounds airtime and collision
    windows by its history horizon).  Residents drift at most ``v_max``
    metres per second from the bounding region measured at ``t_c``, so
    inflating each frame's radio range by ``v_max * (2 * horizon + L)``
    (plus the usual slack) makes the box test a strict superset of
    every audibility predicate the shard will ever evaluate against the
    frame.  ``None`` — the mobility spec cannot bound speed — disarms
    the prune entirely.
    """
    v_max = config.mobility.max_speed_mps()
    if v_max is None:
        return None
    horizon = config.medium.history_horizon_s
    return v_max * (2.0 * horizon + latency_s) + _BBOX_SLACK_M


def _filter_batch(merged: List[ShardFrame],
                  bbox: Optional[Tuple[float, float, float, float]],
                  margin: Optional[float]) -> List[ShardFrame]:
    """One shard's routed slice of the canonical committed batch.

    A subsequence of a canonically sorted list is itself canonically
    sorted, so routing never perturbs merge order.  ``bbox=None`` means
    the shard has no residents (nothing can hear anything — ship
    nothing); an unbounded box or ``margin=None`` stands the prune down
    (ship everything).
    """
    if bbox is None:
        return []
    if margin is None or bbox[0] == -math.inf:
        return merged
    out = []
    for frame in merged:
        pos = frame.tx.sender_pos
        dx = max(bbox[0] - pos.x, 0.0, pos.x - bbox[2])
        dy = max(bbox[1] - pos.y, 0.0, pos.y - bbox[3])
        reach = frame.tx.range_m + margin
        if dx * dx + dy * dy <= reach * reach:
            out.append(frame)
    return out


class ShardMedium(WirelessMedium):
    """The slotted per-shard medium with retimed deliveries.

    Differences from the classic :class:`WirelessMedium`:

    * outgoing frames divert through ``shard_ingress`` into an epoch
      outbox instead of resolving receivers immediately;
    * committed frames occupy the channel shifted by the universe's
      delivery latency — carrier sense sees a neighbour's frame over
      ``(start + L, end + L)`` and the sender's own over ``[start,
      end)`` (half duplex in real time), never a co-resident
      neighbour's *uncommitted* traffic: co-residency must be
      unobservable;
    * CSMA back-off and uniform frame-loss draws come from per-node
      streams so their sequences are independent of shard composition;
    * each ingested frame's delivery — receiver resolution, collision
      verdict, loss draws, protocol reaction — runs as a kernel event
      at its exact ``end + L``, *inside* the epoch, not at a barrier.
    """

    def __init__(self, sim, radio, config, sizes,
                 node_rng: Callable[[int], object],
                 loss_rng: Callable[[int], object],
                 latency_s: float, epoch_s: float,
                 max_speed_mps: Optional[float]):
        super().__init__(sim, radio, config=config, sizes=sizes, rng=None)
        self._node_rng = node_rng
        self._loss_rng = loss_rng
        self._latency_s = latency_s
        # The delivery-time resident bbox is recomputed lazily after
        # every ingest, so it can be up to one epoch stale when a
        # mid-epoch delivery consults it; bounded drift inflates the
        # reach, unbounded drift disarms the prefilter.
        self._drift_m = (None if max_speed_mps is None
                         else max_speed_mps * epoch_s)
        self.shard_ingress = self._shard_enqueue
        self._outbox: List[ShardFrame] = []
        self._tx_seq: Dict[int, int] = {}
        self._last_tx_end: Dict[int, float] = {}
        self._own_tx: Dict[int, List[Tuple[float, float]]] = {}
        self._log: List[ShardFrame] = []       # committed, start-sorted
        self._log_starts: List[float] = []
        self._max_airtime = 0.0
        self._bbox: Optional[Tuple[float, float, float, float]] = None
        self._bbox_valid = False

    # -- sending (epoch side) ----------------------------------------------

    def _shard_enqueue(self, tx: Transmission) -> None:
        seq = self._tx_seq.get(tx.sender, 0)
        self._tx_seq[tx.sender] = seq + 1
        self._outbox.append(ShardFrame(tx=tx, seq=seq))
        prev = self._last_tx_end.get(tx.sender, -math.inf)
        if tx.end > prev:
            self._last_tx_end[tx.sender] = tx.end
        # Resident-local send log: the half-duplex side of collision
        # verdicts reads the receiver's *real-time* transmissions,
        # which never wait for a barrier.
        self._own_tx.setdefault(tx.sender, []).append((tx.start, tx.end))

    def _attempt_send(self, sender_id: int, message, attempt: int) -> None:
        sender = self._nodes.get(sender_id)
        if sender is None or not sender.alive:
            return  # sender crashed while the frame was queued
        if sender.asleep or sender.silenced:
            sender.send(message)   # radio went down mid-backoff: requeue
            return
        pos = sender.position()
        if (self.config.csma_enabled
                and attempt < self.config.max_csma_retries
                and self._shard_busy(sender_id, pos)):
            delay = self._shard_csma_delay(sender_id)
            self.sim.schedule(delay, self._attempt_send, sender_id,
                              message, attempt + 1)
            return
        self._transmit(sender, pos, message)

    def _shard_busy(self, sender_id: int, pos: Vec2) -> bool:
        now = self.sim.now
        if self._last_tx_end.get(sender_id, -math.inf) > now:
            return True   # own frame still on the air (half duplex)
        shift = self._latency_s
        # A committed frame occupies the shifted channel at `now` iff
        # start + L < now < end + L (open start: at exactly start + L
        # the channel is still idle under *every* epoch — a frame is
        # not yet visible to same-instant events in the epoch that
        # commits it).  Only frames with start in [now - L - airtime,
        # now - L) qualify; the start-sorted log narrows the scan to
        # that sliver instead of one full epoch of traffic.
        lo = bisect.bisect_left(self._log_starts,
                                now - shift - self._max_airtime)
        hi = bisect.bisect_left(self._log_starts, now - shift)
        for frame in self._log[lo:hi]:
            tx = frame.tx
            if tx.sender == sender_id:
                continue   # own frames are real-time, handled above
            if now < tx.end + shift and tx.audible_at(pos):
                return True
        return False

    def _shard_csma_delay(self, sender_id: int) -> float:
        lo = self.config.csma_backoff_min_s
        hi = self.config.csma_backoff_max_s
        if hi <= lo:
            return lo
        return self._node_rng(sender_id).uniform(lo, hi)

    def collect_outbox(self) -> List[ShardFrame]:
        """Drain this epoch's transmissions (barrier step one)."""
        out = self._outbox
        self._outbox = []
        return out

    def routing_bbox(self) -> Optional[Tuple[float, float, float, float]]:
        """The resident bounding region at this instant — the driver's
        audibility-routing input, recomputed exactly at every barrier
        (``None``: no residents; infinite: position unknown, prune must
        stand down)."""
        return self._compute_bbox()

    # -- receiving (barrier + retime side) ---------------------------------

    def ingest_committed(self, frames: Sequence[ShardFrame],
                         barrier: float) -> None:
        """Fold this shard's routed slice of the committed batch in.

        Updates the start-sorted committed log, which serves both
        carrier sense (shifted occupancy at ``now``) and collision
        verdicts.  Batches arrive in barrier order and all of batch b's
        starts precede batch b+1's (a frame sent after barrier ``t_b``
        starts after it), so appending preserves the sort — the
        per-barrier re-sort the stripe-era engine paid is gone.
        """
        self._bbox_valid = False
        shift = self._latency_s
        for frame in frames:
            airtime = frame.tx.end - frame.tx.start
            if airtime > self._max_airtime:
                self._max_airtime = airtime
        # Committed frame g is last consulted by verdicts of frames it
        # overlaps, at most horizon + L past its end (see the module
        # docstring); prune with that cutoff, from the front only.
        cutoff = barrier - self.config.history_horizon_s - shift
        if self._log and self._log[0].tx.end <= cutoff:
            self._log = [f for f in self._log if f.tx.end > cutoff]
            self._log_starts = [f.tx.start for f in self._log]
        self._log.extend(frames)
        self._log_starts.extend(f.tx.start for f in frames)
        for sender, spans in self._own_tx.items():
            if spans and spans[0][1] <= cutoff:
                self._own_tx[sender] = [s for s in spans if s[1] > cutoff]

    def schedule_deliveries(self, frames: Sequence[ShardFrame]) -> None:
        """Retime: arm one kernel event per routed frame at its exact
        delivery instant ``end + latency``.

        Always strictly in the future (``end + L > start + L >=
        commitment barrier``), and same-instant deliveries tie-break by
        scheduling order — which is canonical batch order here, hence
        identical for every shard count and epoch length.
        """
        shift = self._latency_s
        for frame in frames:
            self.sim.call_at(frame.tx.end + shift,
                             self._resolve_frame, frame)

    def _resolve_frame(self, frame: ShardFrame) -> None:
        tx = frame.tx
        if not self._bbox_may_hear(tx):
            return   # no resident node within reach: provably no-op
        duration = tx.end - tx.start
        for node_id, rx_pos in self._audible_residents(tx):
            node = self._nodes.get(node_id)
            if node is None or not node.listening:
                continue
            if self.on_rx_window is not None:
                self.on_rx_window(node_id, duration)
            node = self._nodes.get(node_id)
            if node is None or not node.listening:
                continue   # the RX charge drained its battery
            corrupted = (self.config.model_collisions
                         and self._corrupt_verdict(frame, node_id, rx_pos))
            self._finish_shard_delivery(tx, node_id, node, corrupted)

    def _audible_residents(self, tx: Transmission
                           ) -> List[Tuple[int, Vec2]]:
        """Resident nodes (exact positions at the delivery instant,
        ascending id) in range.

        Mirrors the classic receiver resolution: grid candidates are
        re-filtered against exact interpolated positions (via the
        numpy leg table when active), so spatial-index and flat modes
        return the identical set.
        """
        pos = tx.sender_pos
        now = self.sim.now
        if self._grid is not None:
            ids = self._grid.query_radius(pos, self._query_radius_m,
                                          exclude=tx.sender)
            if self._legs is not None:
                return self._legs.audible(
                    [i for i in ids if i in self._nodes],
                    now, pos.x, pos.y, tx.range_m)
            hits: List[Tuple[int, Vec2]] = []
            for node_id in ids:
                node = self._nodes.get(node_id)
                if node is None:
                    continue
                rx_pos = node.position()
                if tx.audible_at(rx_pos):
                    hits.append((node_id, rx_pos))
            return hits
        hits = []
        for node in list(self._sorted_nodes):
            if node.id == tx.sender:
                continue
            rx_pos = node.position()
            if tx.audible_at(rx_pos):
                hits.append((node.id, rx_pos))
        return hits

    def _corrupt_verdict(self, frame: ShardFrame, receiver_id: int,
                         rx_pos: Vec2) -> bool:
        """Collision check at the delivery instant.

        Two shifted occupancies overlap iff the unshifted airtimes do
        (the latency shift cancels), so the committed-log scan keeps
        its unshifted window.  The *receiver's own* transmissions are
        the exception: they block its radio in real time, so the
        half-duplex test intersects the receiver's local send log with
        the frame's shifted arrival window.
        """
        tx = frame.tx
        shift = self._latency_s
        for (own_start, own_end) in self._own_tx.get(receiver_id, ()):
            if own_start < tx.end + shift and tx.start + shift < own_end:
                return True
        lo = bisect.bisect_left(self._log_starts,
                                tx.start - self._max_airtime)
        hi = bisect.bisect_left(self._log_starts, tx.end)
        for other in self._log[lo:hi]:
            otx = other.tx
            if otx.sender == tx.sender and other.seq == frame.seq:
                continue
            if otx.sender == receiver_id:
                continue   # real-time half duplex, handled above
            if not (otx.start < tx.end and tx.start < otx.end):
                continue
            if otx.audible_at(rx_pos):
                return True
        return False

    def _finish_shard_delivery(self, tx: Transmission, receiver_id: int,
                               node, corrupted: bool) -> None:
        """The classic delivery gauntlet with a per-receiver loss
        stream (shared-stream draw order would be a merge artefact)."""
        if corrupted:
            self.frames_collided += 1
            if self.on_drop is not None:
                self.on_drop(receiver_id, tx.message, "collision")
            return
        p = self.config.frame_loss_probability
        if p > 0.0 and self._loss_rng(receiver_id).random() < p:
            self.frames_lost_random += 1
            if self.on_drop is not None:
                self.on_drop(receiver_id, tx.message, "loss")
            return
        if self.extra_loss is not None and \
                self.extra_loss(tx.sender, receiver_id):
            self.frames_lost_fault += 1
            if self.on_drop is not None:
                self.on_drop(receiver_id, tx.message, "fault-loss")
            return
        self.frames_delivered += 1
        if self.on_receive is not None:
            self.on_receive(receiver_id, tx.message)
        node.receive(tx.message)

    # -- bounding-box prefilter --------------------------------------------

    def register(self, node) -> None:
        """Register a node and invalidate the population bounding box
        (a repowered node can land outside the cached extent)."""
        super().register(node)
        self._bbox_valid = False

    def _bbox_may_hear(self, tx: Transmission) -> bool:
        """Could *any* resident hear this frame at its delivery
        instant?  Conservative test of the radio disc against the
        resident population's bounding box — cached since the last
        ingest (or registration), hence up to one epoch stale, which
        the drift inflation absorbs.  Skipping a frame that fails it is
        observably a no-op for every K and epoch."""
        if self._drift_m is None:
            return True   # unbounded drift: the prefilter stands down
        if not self._bbox_valid:
            self._bbox = self._compute_bbox()
            self._bbox_valid = True
        box = self._bbox
        if box is None:
            return False
        pos = tx.sender_pos
        dx = max(box[0] - pos.x, 0.0, pos.x - box[2])
        dy = max(box[1] - pos.y, 0.0, pos.y - box[3])
        reach = tx.range_m + _BBOX_SLACK_M + self._drift_m
        return dx * dx + dy * dy <= reach * reach

    def _compute_bbox(self) -> Optional[Tuple[float, float, float, float]]:
        min_x = min_y = math.inf
        max_x = max_y = -math.inf
        for node in self._sorted_nodes:
            try:
                pos = node.position()
            except RuntimeError:
                # Unstarted mobility: position unknown, so every prune
                # must stand down entirely to stay conservative.
                return _EVERYWHERE
            min_x = min(min_x, pos.x)
            min_y = min(min_y, pos.y)
            max_x = max(max_x, pos.x)
            max_y = max(max_y, pos.y)
        if min_x is math.inf:
            return None   # no residents: every frame is skippable
        return (min_x, min_y, max_x, max_y)


class _ShardWorld:
    """One shard's complete sub-world and its barrier-stepping driver."""

    def __init__(self, config, shard_index: int, owners: Sequence[int],
                 epoch_s: float):
        # Imported here (not at module top) to keep this module
        # importable without dragging the harness in at package-import
        # time; run_scenario imports us lazily for the same reason.
        from repro.harness.scenario import make_protocol, select_subscribers

        self.config = config
        self.shard_index = shard_index
        self.sim = Simulator()
        self.rngs = RngRegistry(config.seed)
        self.stats = {"drain_s": 0.0, "ingest_s": 0.0, "retime_s": 0.0,
                      "frames_in": 0}
        wheel = TimerWheel(self.sim) if config.coalesced_timers else None
        shards = ShardConfig.coerce(config.shards)
        self.medium = ShardMedium(
            self.sim, config.radio, config=config.medium,
            sizes=config.sizes,
            node_rng=lambda i: self.rngs.stream("shard-medium", i),
            loss_rng=lambda i: self.rngs.stream("shard-loss", i),
            latency_s=shards.latency_s, epoch_s=epoch_s,
            max_speed_mps=config.mobility.max_speed_mps())
        self.collector = MetricsCollector(self.medium)
        self.energy = (EnergyAccountant(self.medium, config.energy)
                       if config.energy is not None else None)
        self.subscriber_ids = select_subscribers(config, self.rngs)
        subscriber_set = set(self.subscriber_ids)
        self.nodes: Dict[int, Node] = {}
        for i in range(config.n_processes):
            if owners[i] != shard_index:
                continue
            protocol = make_protocol(config)
            node = Node(i, self.sim, self.medium,
                        mobility=config.mobility.build(i),
                        protocol=protocol,
                        rng=self.rngs.stream("node", i),
                        speed_sensor=config.speed_sensor,
                        wheel=wheel)
            topic = (config.event_topic if i in subscriber_set
                     else config.other_topic)
            protocol.subscribe(topic)
            self.collector.track_node(node)
            if self.energy is not None:
                self.energy.track_node(node)
            self.nodes[i] = node
        self.faults = None
        if config.faults is not None:
            self.faults = FaultInjector(
                sim=self.sim, medium=self.medium,
                nodes=list(self.nodes.values()), rngs=self.rngs,
                config=config.faults, start=config.warmup,
                horizon=config.warmup + config.duration,
                population=range(config.n_processes),
                per_receiver_loss_rng=lambda i: self.rngs.stream(
                    "shard-fault-loss", i))
            self.faults.arm()
        for node in self.nodes.values():
            node.start()
        self.published: List[Tuple[int, Event]] = []
        self._factories: Dict[int, EventFactory] = {}
        for index, pub in enumerate(config.publications):
            idx = pub.publisher if pub.publisher is not None else 0
            publisher_id = self.subscriber_ids[
                idx % len(self.subscriber_ids)]
            if publisher_id in self.nodes:
                self.sim.call_at(config.warmup + pub.at,
                                 self._do_publish, index, publisher_id,
                                 pub)
        self._warmup_pending = config.warmup > 0
        if self._warmup_pending:
            self.collector.freeze()
        else:
            self.collector.mark_protocol_baseline(self.nodes.values())
            if self.energy is not None:
                self.energy.start_measurement()

    def _do_publish(self, index: int, publisher_id: int, pub) -> None:
        factory = self._factories.setdefault(publisher_id,
                                             EventFactory(publisher_id))
        event = factory.create(pub.topic or self.config.event_topic,
                               validity=pub.validity, now=self.sim.now,
                               payload_bytes=pub.payload_bytes)
        self.published.append((index, event))
        self.collector.record_publication(event)
        self.nodes[publisher_id].protocol.publish(event)

    # -- barrier protocol --------------------------------------------------

    def advance_to(self, barrier: float
                   ) -> Tuple[List[ShardFrame], Optional[Tuple]]:
        """Run the local kernel up to the barrier; drain the outbox and
        measure the resident bounding region for audibility routing."""
        self.sim.run(until=barrier)
        t0 = _wallclock.perf_counter()
        out = self.medium.collect_outbox()
        bbox = self.medium.routing_bbox()
        self.stats["drain_s"] += _wallclock.perf_counter() - t0
        return out, bbox

    def ingest(self, barrier: float, routed: Sequence[ShardFrame]) -> None:
        """Fold this shard's routed batch in, retime its deliveries,
        and (at the warm-up barrier) thaw metrics exactly as the
        classic run does after ``sim.run(until=warmup)``."""
        t0 = _wallclock.perf_counter()
        self.medium.ingest_committed(routed, barrier)
        t1 = _wallclock.perf_counter()
        self.medium.schedule_deliveries(routed)
        t2 = _wallclock.perf_counter()
        self.stats["ingest_s"] += t1 - t0
        self.stats["retime_s"] += t2 - t1
        self.stats["frames_in"] += len(routed)
        if self._warmup_pending and barrier == self.config.warmup:
            self._warmup_pending = False
            self.collector.resume()
            self.collector.mark_protocol_baseline(self.nodes.values())
            if self.energy is not None:
                self.energy.start_measurement()

    def finish(self) -> Dict[str, object]:
        """Finalise collectors and emit this shard's picklable payload."""
        if self.energy is not None:
            self.energy.finalize()
        if self.faults is not None:
            self.faults.finalize()
        self.collector.capture_protocol_totals(self.nodes.values())
        return {
            "collector": self.collector.__getstate__(),
            "published": self.published,
            "energy": (None if self.energy is None
                       else self.energy.__getstate__()),
            "timeline": None if self.faults is None
                        else self.faults.timeline,
            "events": self.sim.events_processed,
            "stats": self.stats,
        }


# -- backends ---------------------------------------------------------------


def _select_backend(shards: int) -> str:
    """Pick spawn vs in-process (env override ``REPRO_SHARD_BACKEND``).

    Daemonic pool workers (the ``--jobs N`` parallel engine) may not
    spawn children, so even an explicit ``spawn`` degrades to the
    bit-identical in-process backend there instead of crashing deep in
    ``multiprocessing``.
    """
    from repro.harness.parallel import available_cpu_count
    choice = os.environ.get("REPRO_SHARD_BACKEND", "auto")
    if choice not in ("auto", "inproc", "spawn"):
        raise ValueError(
            f"REPRO_SHARD_BACKEND must be auto|inproc|spawn: {choice!r}")
    if multiprocessing.current_process().daemon:
        return "inproc"   # pool workers may not spawn children
    if choice != "auto":
        return choice
    if shards < 2:
        return "inproc"
    if available_cpu_count() < 2:
        return "inproc"   # no parallel hardware: skip the IPC tax
    return "spawn"


def _run_inproc(config, owners: List[int], barriers: List[float],
                epoch_s: float, margin: Optional[float]
                ) -> Tuple[List[Dict[str, object]], Dict[str, float]]:
    """Round-robin the K shard worlds in this process.

    Bit-identical to the spawn backend by construction: the barrier
    protocol is schedule-independent, and each world owns a fresh
    ``RngRegistry(seed)`` exactly as a worker process would.
    """
    count = ShardConfig.coerce(config.shards).shards
    worlds = [_ShardWorld(config, s, owners, epoch_s)
              for s in range(count)]
    merge_s = 0.0
    shipped = 0
    for barrier in barriers:
        drained = [world.advance_to(barrier) for world in worlds]
        t0 = _wallclock.perf_counter()
        merged: List[ShardFrame] = []
        for batch, _bbox in drained:
            merged.extend(batch)
        merged.sort(key=_frame_key)
        routed = [_filter_batch(merged, bbox, margin)
                  for _batch, bbox in drained]
        merge_s += _wallclock.perf_counter() - t0
        shipped += sum(len(r) for r in routed)
        for world, slice_ in zip(worlds, routed):
            world.ingest(barrier, slice_)
    driver = {"merge_s": merge_s, "frames_exchanged": float(shipped)}
    return [world.finish() for world in worlds], driver


def _shard_worker_main(conn, config, shard_index: int, owners: List[int],
                       barriers: List[float], epoch_s: float) -> None:
    """Spawn-backend worker: one shard world driven over a pipe."""
    try:
        world = _ShardWorld(config, shard_index, owners, epoch_s)
        for barrier in barriers:
            conn.send(("frames", world.advance_to(barrier)))
            world.ingest(barrier, conn.recv())
        conn.send(("done", world.finish()))
    except Exception:   # noqa: BLE001 - forwarded verbatim to the parent
        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):   # pragma: no cover
            pass
    finally:
        conn.close()


def _run_spawn(config, owners: List[int], barriers: List[float],
               epoch_s: float, margin: Optional[float]
               ) -> Tuple[List[Dict[str, object]], Dict[str, float]]:
    """Run each shard in its own spawned process, barrier-stepped.

    The parent performs the canonical merge and the audibility routing
    (it sees every shard's resident bounding region), so each worker
    receives — and serialises — only the frames its residents could
    hear.
    """
    ctx = multiprocessing.get_context("spawn")
    conns = []
    procs = []
    merge_s = 0.0
    shipped = 0
    count = ShardConfig.coerce(config.shards).shards
    try:
        for s in range(count):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_shard_worker_main,
                args=(child_conn, config, s, owners, barriers, epoch_s),
                daemon=True)
            proc.start()
            child_conn.close()
            conns.append(parent_conn)
            procs.append(proc)
        for barrier in barriers:
            drained = []
            for s, conn in enumerate(conns):
                tag, data = conn.recv()
                if tag == "error":
                    raise RuntimeError(f"shard {s} failed:\n{data}")
                drained.append(data)
            t0 = _wallclock.perf_counter()
            merged: List[ShardFrame] = []
            for batch, _bbox in drained:
                merged.extend(batch)
            merged.sort(key=_frame_key)
            routed = [_filter_batch(merged, bbox, margin)
                      for _batch, bbox in drained]
            merge_s += _wallclock.perf_counter() - t0
            shipped += sum(len(r) for r in routed)
            for conn, slice_ in zip(conns, routed):
                conn.send(slice_)
        payloads: List[Dict[str, object]] = []
        for s, conn in enumerate(conns):
            tag, data = conn.recv()
            if tag == "error":
                raise RuntimeError(f"shard {s} failed:\n{data}")
            payloads.append(data)
        driver = {"merge_s": merge_s, "frames_exchanged": float(shipped)}
        return payloads, driver
    finally:
        for conn in conns:
            conn.close()
        for proc in procs:
            proc.join(timeout=30)
            if proc.is_alive():   # pragma: no cover - crash cleanup
                proc.terminate()
                proc.join(timeout=5)


# -- merging ----------------------------------------------------------------


def _merge_collectors(states: List[dict]) -> MetricsCollector:
    """Union the per-shard collector states (disjoint node rows).

    Every union is rebuilt in a canonical key order (node id, event id)
    before it becomes the merged state: downstream summary statistics
    sum floats by dict iteration order, and only a canonical order makes
    that order — hence the last-ulp rounding — shard-count-invariant.
    Every K, including K=1, passes through this same normalisation.
    """
    stats: Dict[int, object] = {}
    times: Dict[object, Dict[int, float]] = {}
    published: Dict[object, Event] = {}
    seen = set()
    totals = []
    for state in states:
        stats.update(state["stats"])
        for event_id, per_node in state["delivery_times"].items():
            times.setdefault(event_id, {}).update(per_node)
        published.update(state["published"])
        seen |= state["_seen_receptions"]
        if state["protocol_totals"] is not None:
            totals.append(state["protocol_totals"])
    event_key = lambda eid: (eid.publisher, eid.seq)  # noqa: E731
    merged = MetricsCollector.__new__(MetricsCollector)
    merged.__setstate__({
        "medium": None,
        "stats": {nid: stats[nid] for nid in sorted(stats)},
        "delivery_times": {
            eid: {nid: times[eid][nid] for nid in sorted(times[eid])}
            for eid in sorted(times, key=event_key)},
        "published": {eid: published[eid]
                      for eid in sorted(published, key=event_key)},
        "_seen_receptions": seen,
        "_frozen": False,
        "protocol_totals":
            ProtocolCounters.total(totals) if totals else None,
        "_protocol_baseline": None,
    })
    return merged


def _merge_energy(states: List[dict]) -> EnergyAccountant:
    """Union the per-shard frozen energy states; deaths re-sorted into
    the canonical (time, node id) order."""
    models: Dict[int, object] = {}
    deaths: List[Tuple[float, int]] = []
    for state in states:
        models.update(state["models"])
        deaths.extend(state["deaths"])
    merged = EnergyAccountant.__new__(EnergyAccountant)
    merged.__setstate__({
        "config": states[0]["config"],
        "deaths": sorted(deaths),
        # Canonical node-id order: the aggregate sums joules by dict
        # iteration order, which must not depend on the shard count.
        "models": {nid: models[nid] for nid in sorted(models)},
    })
    return merged


def _merge_timelines(timelines: List[FaultTimeline]) -> FaultTimeline:
    """Union the per-shard fault timelines (disjoint node residency)."""
    merged = FaultTimeline(window=timelines[0].window,
                           n_nodes=sum(t.n_nodes for t in timelines))
    outage_counts: Dict[float, int] = {}
    intervals_by_node: Dict[int, List] = {}
    for timeline in timelines:
        for node_id, intervals in timeline.down_intervals.items():
            intervals_by_node.setdefault(node_id, []).extend(intervals)
        merged.recoveries.extend(timeline.recoveries)
        merged.down_transitions += timeline.down_transitions
        for at, count in timeline.outages:
            outage_counts[at] = outage_counts.get(at, 0) + count
    # Canonical node-id order (availability sums by iteration order).
    for node_id in sorted(intervals_by_node):
        merged.down_intervals[node_id] = intervals_by_node[node_id]
    merged.recoveries.sort()
    merged.outages.extend(sorted(outage_counts.items()))
    return merged


def run_sharded_scenario(config):
    """Run one scenario as ``config.shards`` cooperating shard worlds.

    The entry point ``run_scenario`` dispatches to for ``shards >= 1``;
    returns a fully merged :class:`~repro.harness.scenario.ScenarioResult`
    whose summary is invariant in the shard count, the tile shape and
    the (sound) epoch length, with the measured barrier-phase overhead
    attached as ``barrier_stats``.
    """
    from repro.harness.scenario import ScenarioResult, select_subscribers

    started = _wallclock.perf_counter()
    shards = ShardConfig.coerce(config.shards)
    epoch = resolve_epoch_s(shards, config.duration, config.warmup)
    owners, _plan = compute_ownership(config)
    barriers = compute_barriers(config.warmup, config.duration, epoch)
    margin = _routing_margin_m(config, shards.latency_s)
    if _select_backend(shards.shards) == "spawn":
        payloads, driver = _run_spawn(config, owners, barriers, epoch,
                                      margin)
    else:
        payloads, driver = _run_inproc(config, owners, barriers, epoch,
                                       margin)

    collector = _merge_collectors([p["collector"] for p in payloads])
    published = [event for _, event in
                 sorted((entry for p in payloads for entry in
                         p["published"]), key=lambda entry: entry[0])]
    energy = None
    if config.energy is not None:
        energy = _merge_energy([p["energy"] for p in payloads])
    timeline = None
    if config.faults is not None:
        timeline = _merge_timelines([p["timeline"] for p in payloads])
    subscriber_ids = select_subscribers(config, RngRegistry(config.seed))
    subscriber_set = set(subscriber_ids)
    non_subscribers = [i for i in range(config.n_processes)
                       if i not in subscriber_set]
    barrier_stats = {
        "barriers": float(len(barriers)),
        "epoch_s": epoch,
        "frames_exchanged": driver["frames_exchanged"],
        "drain_s": sum(p["stats"]["drain_s"] for p in payloads),
        "merge_s": driver["merge_s"],
        "ingest_s": sum(p["stats"]["ingest_s"] for p in payloads),
        "retime_s": sum(p["stats"]["retime_s"] for p in payloads),
    }
    return ScenarioResult(
        config=config,
        collector=collector,
        published_events=published,
        subscriber_ids=subscriber_ids,
        non_subscriber_ids=non_subscribers,
        sim_events_processed=sum(p["events"] for p in payloads),
        wallclock_s=_wallclock.perf_counter() - started,
        energy=energy,
        faults=timeline,
        barrier_stats=barrier_stats)
