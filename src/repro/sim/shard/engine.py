"""Sharded-world execution: one logical world, K cooperating shards.

``run_sharded_scenario`` runs the scenario described by a
:class:`~repro.harness.scenario.ScenarioConfig` with ``shards=K`` as K
spatially partitioned sub-worlds that exchange radio traffic at fixed
**epoch barriers**, and merges the per-shard measurements into one
:class:`~repro.harness.scenario.ScenarioResult`.  The defining property
— asserted by ``tests/test_shard.py`` — is *shard-count invariance*:
summaries for ``shards=1``, ``2`` and ``4`` are bit-identical.

How it works
------------
* **Ownership** — every node is assigned to the shard whose stripe
  contains its *initial* position (:func:`compute_ownership` replays the
  mobility prefix of each node's ``("node", i)`` stream in a throwaway
  world, which is exact: ``Node.start`` starts mobility before the
  protocol ever draws).  Each shard builds only its resident nodes; all
  shards derive every shared draw (subscriber selection, fault targets,
  churn membership) from identical ``RngRegistry(seed)`` streams.
* **Slotted medium** — inside a shard, frames transmitted during an
  epoch are *invisible* until the next barrier (:class:`ShardMedium`
  diverts them through the medium's ``shard_ingress`` hook into an
  outbox).  At each barrier the driver gathers every shard's outbox,
  sorts the union into the canonical ``(start, sender id, per-sender
  seq)`` order, and hands the identical committed batch back to every
  shard — the frame exchange that "mirrors a border node's
  transmissions into the neighbouring shard's medium", degenerating to
  a plain commit log when K = 1.
* **Exactness** — nodes interact *only* through the medium, and the
  committed log every shard sees is a pure function of per-node streams
  and earlier barriers, so by induction over barriers no observable —
  deliveries, collisions, CSMA back-offs, energy charges, fault draws —
  depends on which nodes happen to be co-resident.  Carrier sense and
  uniform frame loss draw from per-node streams (``("shard-medium",
  id)`` / ``("shard-loss", id)``) instead of the classic shared medium
  stream for the same reason.
* **Collisions** — a frame is delivered at the first barrier at or
  after its end time; every frame that could strictly overlap it has
  been committed by then (any ``g`` with ``g.start < f.end <= t_b`` is
  in a batch no later than ``t_b``), so per-receiver verdicts read the
  committed log only.

``shards=0`` (the default) never reaches this module: the classic
single-world engine runs untouched.  ``shards>=1`` all use this slotted
engine, so the invariance family ``{1, 2, 4}`` compares like with like.

Backends: ``spawn`` runs each shard in its own process connected by a
pipe; ``inproc`` steps the K worlds round-robin in this process (the
bit-identical fallback used for K=1, inside daemonic pool workers, and
on single-CPU hosts).  ``REPRO_SHARD_BACKEND`` forces either.
"""

from __future__ import annotations

import bisect
import math
import multiprocessing
import os
import time as _wallclock
import traceback
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.base import ProtocolCounters
from repro.core.events import Event, EventFactory
from repro.energy import EnergyAccountant
from repro.faults import FaultInjector, FaultTimeline
from repro.metrics import MetricsCollector
from repro.net import Node, WirelessMedium
from repro.net.medium import Transmission
from repro.sim import RngRegistry, Simulator, TimerWheel
from repro.sim.shard.partition import ShardPlan
from repro.sim.space import Vec2

#: Barrier spacing, seconds.  0.25 is exactly representable in binary
#: floating point, so every shard computes bit-equal barrier instants.
DEFAULT_EPOCH_S = 0.25

#: Metres added to the radio range in the bounding-box prefilter —
#: keeps the box test a strict superset of the exact audibility
#: predicate regardless of rounding, at zero cost.
_BBOX_SLACK_M = 1.0


@dataclass
class ShardFrame:
    """One committed (or about-to-commit) frame on the shard bus.

    ``seq`` is the sender's per-run transmission counter; ``(sender,
    seq)`` identifies a frame globally, and ``(start, sender, seq)`` is
    the canonical merge order every shard sorts the committed batch by.
    """

    tx: Transmission
    seq: int


def _frame_key(frame: ShardFrame) -> Tuple[float, int, int]:
    """The deterministic merge-order key: (time, node id, seq)."""
    return (frame.tx.start, frame.tx.sender, frame.seq)


def compute_barriers(warmup: float, duration: float,
                     epoch: float = DEFAULT_EPOCH_S) -> List[float]:
    """The ascending epoch-barrier instants for one run.

    Multiples of ``epoch`` up to the run end, plus the warm-up boundary
    (metrics thaw there) and the exact end instant, deduplicated.
    """
    end = warmup + duration
    ticks = set()
    k = 1
    while k * epoch < end:
        ticks.add(k * epoch)
        k += 1
    if warmup > 0:
        ticks.add(warmup)
    ticks.add(end)
    return sorted(ticks)


def compute_ownership(config) -> Tuple[List[int], ShardPlan]:
    """Assign every node to a shard by its exact initial position.

    Replays, in a throwaway world, precisely the prefix of each node's
    ``("node", i)`` stream that the real ``Node.start`` consumes before
    any protocol draw — ``MobilityModel.start`` — and reads the model's
    position at time zero.  The stripe plan spans the initial
    population's x-extent with the medium's grid-cell geometry
    (``range + anchor slack``), so shard borders line up with
    :class:`~repro.sim.space.SpatialGrid` cell columns.
    """
    sim = Simulator()
    rngs = RngRegistry(config.seed)
    positions: List[Vec2] = []
    for i in range(config.n_processes):
        model = config.mobility.build(i)
        model.start(sim, rngs.stream("node", i))
        positions.append(model.position())
    range_m = config.radio.communication_range_m()
    slack = config.medium.anchor_slack_m
    cell = range_m + (slack if slack is not None else range_m / 8.0)
    min_x = min(p.x for p in positions)
    max_x = max(p.x for p in positions)
    if max_x <= min_x:
        max_x = min_x + cell
    plan = ShardPlan(min_x=min_x, max_x=max_x, shards=config.shards,
                     cell_size=cell)
    owners = [plan.shard_of(p) for p in positions]
    return owners, plan


class ShardMedium(WirelessMedium):
    """The slotted per-shard medium.

    Differences from the classic :class:`WirelessMedium`:

    * outgoing frames divert through ``shard_ingress`` into an epoch
      outbox instead of resolving receivers immediately;
    * carrier sense covers *committed* frames still on the air plus the
      sender's own pending frames (a node always hears itself), never a
      co-resident neighbour's uncommitted traffic — co-residency must
      be unobservable;
    * CSMA back-off and uniform frame-loss draws come from per-node
      streams so their sequences are independent of shard composition;
    * deliveries and collision verdicts happen at barriers, against the
      canonical committed log shared by every shard.
    """

    def __init__(self, sim, radio, config, sizes,
                 node_rng: Callable[[int], object],
                 loss_rng: Callable[[int], object]):
        super().__init__(sim, radio, config=config, sizes=sizes, rng=None)
        self._node_rng = node_rng
        self._loss_rng = loss_rng
        self.shard_ingress = self._shard_enqueue
        self._outbox: List[ShardFrame] = []
        self._tx_seq: Dict[int, int] = {}
        self._last_tx_end: Dict[int, float] = {}
        self._live: List[ShardFrame] = []      # committed, still on air
        self._log: List[ShardFrame] = []       # committed, start-sorted
        self._log_starts: List[float] = []
        self._pending: List[ShardFrame] = []   # committed, end > barrier
        self._max_airtime = 0.0
        self._bbox: Optional[Tuple[float, float, float, float]] = None
        self._bbox_valid = False

    # -- sending (epoch side) ----------------------------------------------

    def _shard_enqueue(self, tx: Transmission) -> None:
        seq = self._tx_seq.get(tx.sender, 0)
        self._tx_seq[tx.sender] = seq + 1
        self._outbox.append(ShardFrame(tx=tx, seq=seq))
        prev = self._last_tx_end.get(tx.sender, -math.inf)
        if tx.end > prev:
            self._last_tx_end[tx.sender] = tx.end

    def _attempt_send(self, sender_id: int, message, attempt: int) -> None:
        sender = self._nodes.get(sender_id)
        if sender is None or not sender.alive:
            return  # sender crashed while the frame was queued
        if sender.asleep or sender.silenced:
            sender.send(message)   # radio went down mid-backoff: requeue
            return
        pos = sender.position()
        if (self.config.csma_enabled
                and attempt < self.config.max_csma_retries
                and self._shard_busy(sender_id, pos)):
            delay = self._shard_csma_delay(sender_id)
            self.sim.schedule(delay, self._attempt_send, sender_id,
                              message, attempt + 1)
            return
        self._transmit(sender, pos, message)

    def _shard_busy(self, sender_id: int, pos: Vec2) -> bool:
        now = self.sim.now
        if self._last_tx_end.get(sender_id, -math.inf) > now:
            return True   # own frame still on the air (half duplex)
        for frame in self._live:
            tx = frame.tx
            if tx.end > now and tx.audible_at(pos):
                return True
        return False

    def _shard_csma_delay(self, sender_id: int) -> float:
        lo = self.config.csma_backoff_min_s
        hi = self.config.csma_backoff_max_s
        if hi <= lo:
            return lo
        return self._node_rng(sender_id).uniform(lo, hi)

    def collect_outbox(self) -> List[ShardFrame]:
        """Drain this epoch's transmissions (barrier step one)."""
        out = self._outbox
        self._outbox = []
        return out

    # -- receiving (barrier side) ------------------------------------------

    def ingest_committed(self, frames: Sequence[ShardFrame],
                         barrier: float) -> None:
        """Fold the canonical committed batch into the local log.

        Updates the live set (carrier sense for the coming epoch), the
        start-sorted collision log (pruned past the history horizon)
        and the pending-delivery queue; :meth:`deliver_due` walks what
        has landed by this barrier.
        """
        self._bbox_valid = False
        self._live = [f for f in self._live if f.tx.end > barrier]
        for frame in frames:
            airtime = frame.tx.end - frame.tx.start
            if airtime > self._max_airtime:
                self._max_airtime = airtime
            if frame.tx.end > barrier:
                self._live.append(frame)
        cutoff = barrier - self.config.history_horizon_s
        if self._log and self._log[0].tx.end <= cutoff:
            self._log = [f for f in self._log if f.tx.end > cutoff]
        self._log.extend(frames)
        # Nearly sorted (batches arrive in barrier order; only reaction
        # frames at the previous barrier instant straddle), so Timsort
        # is cheap — and the canonical key keeps every shard's log in
        # the identical order.
        self._log.sort(key=_frame_key)
        self._log_starts = [f.tx.start for f in self._log]
        self._pending.extend(frames)

    def deliver_due(self, barrier: float) -> None:
        """Deliver every committed frame whose airtime ended by now.

        Frames resolve in canonical order against the shard's resident
        nodes at their exact current positions; verdicts, loss draws
        and protocol reactions all happen at the barrier instant.
        """
        due = [f for f in self._pending if f.tx.end <= barrier]
        if not due:
            return
        self._pending = [f for f in self._pending if f.tx.end > barrier]
        due.sort(key=_frame_key)
        for frame in due:
            self._resolve_frame(frame)

    def _resolve_frame(self, frame: ShardFrame) -> None:
        tx = frame.tx
        if not self._bbox_may_hear(tx):
            return   # no resident node within range: provably no-op
        duration = tx.end - tx.start
        for node_id, rx_pos in self._audible_residents(tx):
            node = self._nodes.get(node_id)
            if node is None or not node.listening:
                continue
            if self.on_rx_window is not None:
                self.on_rx_window(node_id, duration)
            node = self._nodes.get(node_id)
            if node is None or not node.listening:
                continue   # the RX charge drained its battery
            corrupted = (self.config.model_collisions
                         and self._corrupt_verdict(frame, node_id, rx_pos))
            self._finish_shard_delivery(tx, node_id, node, corrupted)

    def _audible_residents(self, tx: Transmission
                           ) -> List[Tuple[int, Vec2]]:
        """Resident nodes (exact positions, ascending id) in range.

        Mirrors the classic receiver resolution: grid candidates are
        re-filtered against exact interpolated positions (via the
        numpy leg table when active), so spatial-index and flat modes
        return the identical set.
        """
        pos = tx.sender_pos
        now = self.sim.now
        if self._grid is not None:
            ids = self._grid.query_radius(pos, self._query_radius_m,
                                          exclude=tx.sender)
            if self._legs is not None:
                return self._legs.audible(
                    [i for i in ids if i in self._nodes],
                    now, pos.x, pos.y, tx.range_m)
            hits: List[Tuple[int, Vec2]] = []
            for node_id in ids:
                node = self._nodes.get(node_id)
                if node is None:
                    continue
                rx_pos = node.position()
                if tx.audible_at(rx_pos):
                    hits.append((node_id, rx_pos))
            return hits
        hits = []
        for node in list(self._sorted_nodes):
            if node.id == tx.sender:
                continue
            rx_pos = node.position()
            if tx.audible_at(rx_pos):
                hits.append((node.id, rx_pos))
        return hits

    def _corrupt_verdict(self, frame: ShardFrame, receiver_id: int,
                         rx_pos: Vec2) -> bool:
        """Collision check against the committed log (strict overlap;
        half-duplex when the receiver sent the other frame)."""
        tx = frame.tx
        lo = bisect.bisect_left(self._log_starts,
                                tx.start - self._max_airtime)
        hi = bisect.bisect_left(self._log_starts, tx.end)
        for other in self._log[lo:hi]:
            otx = other.tx
            if other.seq == frame.seq and otx.sender == tx.sender:
                continue
            if not (otx.start < tx.end and tx.start < otx.end):
                continue
            if otx.sender == receiver_id:
                return True
            if otx.audible_at(rx_pos):
                return True
        return False

    def _finish_shard_delivery(self, tx: Transmission, receiver_id: int,
                               node, corrupted: bool) -> None:
        """The classic delivery gauntlet with a per-receiver loss
        stream (shared-stream draw order would be a merge artefact)."""
        if corrupted:
            self.frames_collided += 1
            if self.on_drop is not None:
                self.on_drop(receiver_id, tx.message, "collision")
            return
        p = self.config.frame_loss_probability
        if p > 0.0 and self._loss_rng(receiver_id).random() < p:
            self.frames_lost_random += 1
            if self.on_drop is not None:
                self.on_drop(receiver_id, tx.message, "loss")
            return
        if self.extra_loss is not None and \
                self.extra_loss(tx.sender, receiver_id):
            self.frames_lost_fault += 1
            if self.on_drop is not None:
                self.on_drop(receiver_id, tx.message, "fault-loss")
            return
        self.frames_delivered += 1
        if self.on_receive is not None:
            self.on_receive(receiver_id, tx.message)
        node.receive(tx.message)

    # -- bounding-box prefilter --------------------------------------------

    def register(self, node) -> None:
        """Register a node and invalidate the population bounding box
        (a repowered node can land outside the cached extent)."""
        super().register(node)
        self._bbox_valid = False

    def _bbox_may_hear(self, tx: Transmission) -> bool:
        """Could *any* resident hear this frame?  Conservative test of
        the radio disc against the resident population's bounding box
        (computed lazily from exact current positions, so skipping a
        frame that fails it is observably a no-op for every K)."""
        if not self._bbox_valid:
            self._bbox = self._compute_bbox()
            self._bbox_valid = True
        box = self._bbox
        if box is None:
            return False
        pos = tx.sender_pos
        dx = max(box[0] - pos.x, 0.0, pos.x - box[2])
        dy = max(box[1] - pos.y, 0.0, pos.y - box[3])
        reach = tx.range_m + _BBOX_SLACK_M
        return dx * dx + dy * dy <= reach * reach

    def _compute_bbox(self) -> Optional[Tuple[float, float, float, float]]:
        min_x = min_y = math.inf
        max_x = max_y = -math.inf
        for node in self._sorted_nodes:
            try:
                pos = node.position()
            except RuntimeError:
                # Unstarted mobility: position unknown, so the prune
                # must stand down entirely to stay conservative.
                return (-math.inf, -math.inf, math.inf, math.inf)
            min_x = min(min_x, pos.x)
            min_y = min(min_y, pos.y)
            max_x = max(max_x, pos.x)
            max_y = max(max_y, pos.y)
        if min_x is math.inf:
            return None   # no residents: every frame is skippable
        return (min_x, min_y, max_x, max_y)


class _ShardWorld:
    """One shard's complete sub-world and its barrier-stepping driver."""

    def __init__(self, config, shard_index: int, owners: Sequence[int]):
        # Imported here (not at module top) to keep this module
        # importable without dragging the harness in at package-import
        # time; run_scenario imports us lazily for the same reason.
        from repro.harness.scenario import make_protocol, select_subscribers

        self.config = config
        self.shard_index = shard_index
        self.sim = Simulator()
        self.rngs = RngRegistry(config.seed)
        wheel = TimerWheel(self.sim) if config.coalesced_timers else None
        self.medium = ShardMedium(
            self.sim, config.radio, config=config.medium,
            sizes=config.sizes,
            node_rng=lambda i: self.rngs.stream("shard-medium", i),
            loss_rng=lambda i: self.rngs.stream("shard-loss", i))
        self.collector = MetricsCollector(self.medium)
        self.energy = (EnergyAccountant(self.medium, config.energy)
                       if config.energy is not None else None)
        self.subscriber_ids = select_subscribers(config, self.rngs)
        subscriber_set = set(self.subscriber_ids)
        self.nodes: Dict[int, Node] = {}
        for i in range(config.n_processes):
            if owners[i] != shard_index:
                continue
            protocol = make_protocol(config)
            node = Node(i, self.sim, self.medium,
                        mobility=config.mobility.build(i),
                        protocol=protocol,
                        rng=self.rngs.stream("node", i),
                        speed_sensor=config.speed_sensor,
                        wheel=wheel)
            topic = (config.event_topic if i in subscriber_set
                     else config.other_topic)
            protocol.subscribe(topic)
            self.collector.track_node(node)
            if self.energy is not None:
                self.energy.track_node(node)
            self.nodes[i] = node
        self.faults = None
        if config.faults is not None:
            self.faults = FaultInjector(
                sim=self.sim, medium=self.medium,
                nodes=list(self.nodes.values()), rngs=self.rngs,
                config=config.faults, start=config.warmup,
                horizon=config.warmup + config.duration,
                population=range(config.n_processes),
                per_receiver_loss_rng=lambda i: self.rngs.stream(
                    "shard-fault-loss", i))
            self.faults.arm()
        for node in self.nodes.values():
            node.start()
        self.published: List[Tuple[int, Event]] = []
        self._factories: Dict[int, EventFactory] = {}
        for index, pub in enumerate(config.publications):
            idx = pub.publisher if pub.publisher is not None else 0
            publisher_id = self.subscriber_ids[
                idx % len(self.subscriber_ids)]
            if publisher_id in self.nodes:
                self.sim.call_at(config.warmup + pub.at,
                                 self._do_publish, index, publisher_id,
                                 pub)
        self._warmup_pending = config.warmup > 0
        if self._warmup_pending:
            self.collector.freeze()
        else:
            self.collector.mark_protocol_baseline(self.nodes.values())
            if self.energy is not None:
                self.energy.start_measurement()

    def _do_publish(self, index: int, publisher_id: int, pub) -> None:
        factory = self._factories.setdefault(publisher_id,
                                             EventFactory(publisher_id))
        event = factory.create(pub.topic or self.config.event_topic,
                               validity=pub.validity, now=self.sim.now,
                               payload_bytes=pub.payload_bytes)
        self.published.append((index, event))
        self.collector.record_publication(event)
        self.nodes[publisher_id].protocol.publish(event)

    # -- barrier protocol --------------------------------------------------

    def advance_to(self, barrier: float) -> List[ShardFrame]:
        """Run the local kernel up to the barrier; drain the outbox."""
        self.sim.run(until=barrier)
        return self.medium.collect_outbox()

    def ingest(self, barrier: float, merged: Sequence[ShardFrame]) -> None:
        """Fold the canonical batch in, deliver what is due, and (at
        the warm-up barrier) thaw metrics exactly as the classic run
        does after ``sim.run(until=warmup)``."""
        self.medium.ingest_committed(merged, barrier)
        self.medium.deliver_due(barrier)
        if self._warmup_pending and barrier == self.config.warmup:
            self._warmup_pending = False
            self.collector.resume()
            self.collector.mark_protocol_baseline(self.nodes.values())
            if self.energy is not None:
                self.energy.start_measurement()

    def finish(self) -> Dict[str, object]:
        """Finalise collectors and emit this shard's picklable payload."""
        if self.energy is not None:
            self.energy.finalize()
        if self.faults is not None:
            self.faults.finalize()
        self.collector.capture_protocol_totals(self.nodes.values())
        return {
            "collector": self.collector.__getstate__(),
            "published": self.published,
            "energy": (None if self.energy is None
                       else self.energy.__getstate__()),
            "timeline": None if self.faults is None
                        else self.faults.timeline,
            "events": self.sim.events_processed,
        }


# -- backends ---------------------------------------------------------------


def _select_backend(shards: int) -> str:
    """Pick spawn vs in-process (env override ``REPRO_SHARD_BACKEND``)."""
    choice = os.environ.get("REPRO_SHARD_BACKEND", "auto")
    if choice not in ("auto", "inproc", "spawn"):
        raise ValueError(
            f"REPRO_SHARD_BACKEND must be auto|inproc|spawn: {choice!r}")
    if choice != "auto":
        return choice
    if shards < 2:
        return "inproc"
    if multiprocessing.current_process().daemon:
        return "inproc"   # pool workers may not spawn children
    if (os.cpu_count() or 1) < 2:
        return "inproc"   # no parallel hardware: skip the IPC tax
    return "spawn"


def _run_inproc(config, owners: List[int],
                barriers: List[float]) -> List[Dict[str, object]]:
    """Round-robin the K shard worlds in this process.

    Bit-identical to the spawn backend by construction: the barrier
    protocol is schedule-independent, and each world owns a fresh
    ``RngRegistry(seed)`` exactly as a worker process would.
    """
    worlds = [_ShardWorld(config, s, owners) for s in range(config.shards)]
    for barrier in barriers:
        batches = [world.advance_to(barrier) for world in worlds]
        merged: List[ShardFrame] = []
        for batch in batches:
            merged.extend(batch)
        merged.sort(key=_frame_key)
        for world in worlds:
            world.ingest(barrier, merged)
    return [world.finish() for world in worlds]


def _shard_worker_main(conn, config, shard_index: int,
                       owners: List[int], barriers: List[float]) -> None:
    """Spawn-backend worker: one shard world driven over a pipe."""
    try:
        world = _ShardWorld(config, shard_index, owners)
        for barrier in barriers:
            conn.send(("frames", world.advance_to(barrier)))
            world.ingest(barrier, conn.recv())
        conn.send(("done", world.finish()))
    except Exception:   # noqa: BLE001 - forwarded verbatim to the parent
        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):   # pragma: no cover
            pass
    finally:
        conn.close()


def _run_spawn(config, owners: List[int],
               barriers: List[float]) -> List[Dict[str, object]]:
    """Run each shard in its own spawned process, barrier-stepped."""
    ctx = multiprocessing.get_context("spawn")
    conns = []
    procs = []
    try:
        for s in range(config.shards):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_shard_worker_main,
                args=(child_conn, config, s, owners, barriers),
                daemon=True)
            proc.start()
            child_conn.close()
            conns.append(parent_conn)
            procs.append(proc)
        for barrier in barriers:
            merged: List[ShardFrame] = []
            for s, conn in enumerate(conns):
                tag, data = conn.recv()
                if tag == "error":
                    raise RuntimeError(f"shard {s} failed:\n{data}")
                merged.extend(data)
            merged.sort(key=_frame_key)
            for conn in conns:
                conn.send(merged)
        payloads: List[Dict[str, object]] = []
        for s, conn in enumerate(conns):
            tag, data = conn.recv()
            if tag == "error":
                raise RuntimeError(f"shard {s} failed:\n{data}")
            payloads.append(data)
        return payloads
    finally:
        for conn in conns:
            conn.close()
        for proc in procs:
            proc.join(timeout=30)
            if proc.is_alive():   # pragma: no cover - crash cleanup
                proc.terminate()
                proc.join(timeout=5)


# -- merging ----------------------------------------------------------------


def _merge_collectors(states: List[dict]) -> MetricsCollector:
    """Union the per-shard collector states (disjoint node rows).

    Every union is rebuilt in a canonical key order (node id, event id)
    before it becomes the merged state: downstream summary statistics
    sum floats by dict iteration order, and only a canonical order makes
    that order — hence the last-ulp rounding — shard-count-invariant.
    Every K, including K=1, passes through this same normalisation.
    """
    stats: Dict[int, object] = {}
    times: Dict[object, Dict[int, float]] = {}
    published: Dict[object, Event] = {}
    seen = set()
    totals = []
    for state in states:
        stats.update(state["stats"])
        for event_id, per_node in state["delivery_times"].items():
            times.setdefault(event_id, {}).update(per_node)
        published.update(state["published"])
        seen |= state["_seen_receptions"]
        if state["protocol_totals"] is not None:
            totals.append(state["protocol_totals"])
    event_key = lambda eid: (eid.publisher, eid.seq)  # noqa: E731
    merged = MetricsCollector.__new__(MetricsCollector)
    merged.__setstate__({
        "medium": None,
        "stats": {nid: stats[nid] for nid in sorted(stats)},
        "delivery_times": {
            eid: {nid: times[eid][nid] for nid in sorted(times[eid])}
            for eid in sorted(times, key=event_key)},
        "published": {eid: published[eid]
                      for eid in sorted(published, key=event_key)},
        "_seen_receptions": seen,
        "_frozen": False,
        "protocol_totals":
            ProtocolCounters.total(totals) if totals else None,
        "_protocol_baseline": None,
    })
    return merged


def _merge_energy(states: List[dict]) -> EnergyAccountant:
    """Union the per-shard frozen energy states; deaths re-sorted into
    the canonical (time, node id) order."""
    models: Dict[int, object] = {}
    deaths: List[Tuple[float, int]] = []
    for state in states:
        models.update(state["models"])
        deaths.extend(state["deaths"])
    merged = EnergyAccountant.__new__(EnergyAccountant)
    merged.__setstate__({
        "config": states[0]["config"],
        "deaths": sorted(deaths),
        # Canonical node-id order: the aggregate sums joules by dict
        # iteration order, which must not depend on the shard count.
        "models": {nid: models[nid] for nid in sorted(models)},
    })
    return merged


def _merge_timelines(timelines: List[FaultTimeline]) -> FaultTimeline:
    """Union the per-shard fault timelines (disjoint node residency)."""
    merged = FaultTimeline(window=timelines[0].window,
                           n_nodes=sum(t.n_nodes for t in timelines))
    outage_counts: Dict[float, int] = {}
    intervals_by_node: Dict[int, List] = {}
    for timeline in timelines:
        for node_id, intervals in timeline.down_intervals.items():
            intervals_by_node.setdefault(node_id, []).extend(intervals)
        merged.recoveries.extend(timeline.recoveries)
        merged.down_transitions += timeline.down_transitions
        for at, count in timeline.outages:
            outage_counts[at] = outage_counts.get(at, 0) + count
    # Canonical node-id order (availability sums by iteration order).
    for node_id in sorted(intervals_by_node):
        merged.down_intervals[node_id] = intervals_by_node[node_id]
    merged.recoveries.sort()
    merged.outages.extend(sorted(outage_counts.items()))
    return merged


def run_sharded_scenario(config):
    """Run one scenario as ``config.shards`` cooperating shard worlds.

    The entry point ``run_scenario`` dispatches to for ``shards >= 1``;
    returns a fully merged :class:`~repro.harness.scenario.ScenarioResult`
    whose summary is invariant in the shard count.
    """
    from repro.harness.scenario import ScenarioResult, select_subscribers

    started = _wallclock.perf_counter()
    owners, _plan = compute_ownership(config)
    barriers = compute_barriers(config.warmup, config.duration)
    if _select_backend(config.shards) == "spawn":
        payloads = _run_spawn(config, owners, barriers)
    else:
        payloads = _run_inproc(config, owners, barriers)

    collector = _merge_collectors([p["collector"] for p in payloads])
    published = [event for _, event in
                 sorted((entry for p in payloads for entry in
                         p["published"]), key=lambda entry: entry[0])]
    energy = None
    if config.energy is not None:
        energy = _merge_energy([p["energy"] for p in payloads])
    timeline = None
    if config.faults is not None:
        timeline = _merge_timelines([p["timeline"] for p in payloads])
    subscriber_ids = select_subscribers(config, RngRegistry(config.seed))
    subscriber_set = set(subscriber_ids)
    non_subscribers = [i for i in range(config.n_processes)
                       if i not in subscriber_set]
    return ScenarioResult(
        config=config,
        collector=collector,
        published_events=published,
        subscriber_ids=subscriber_ids,
        non_subscriber_ids=non_subscribers,
        sim_events_processed=sum(p["events"] for p in payloads),
        wallclock_s=_wallclock.perf_counter() - started,
        energy=energy,
        faults=timeline)
