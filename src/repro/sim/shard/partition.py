"""Spatial partitioning of one world into an R x C grid of shard tiles.

A :class:`ShardPlan` slices the world's extent into ``shards = R * C``
tiles of whole grid cells, using the *same* cell geometry as
:class:`repro.sim.space.SpatialGrid`: cells are ``cell_size`` wide and
aligned to the origin (column ``c`` spans ``[c*cell, (c+1)*cell)``, the
half-open interval ``math.floor(x / cell_size)`` induces), and rows the
same along y.  Each axis gets the classic balanced integer split
(``i*T//N .. (i+1)*T//N`` over ``T`` cells), so band widths differ by at
most one cell and a world narrower than its band count simply leaves the
surplus bands empty.  ``rows=1`` — the default — reproduces the PR 8
vertical-stripe plan exactly: full-height stripes whose ownership and
audibility predicates never consult y.

The plan answers two geometric questions:

* :meth:`ShardPlan.shard_of` — which shard owns a position (positions
  outside the covered extent clamp to the nearest tile, so drifting
  mobility models never fall off the map);
* :meth:`ShardPlan.mirror_shards` — which *other* shards could hear a
  transmission from a position: every shard whose closed tile rectangle
  intersects the closed disc of the radio range around it.  This is the
  boundary-zone predicate of the sharded engine; the exchange layer
  additionally prunes by each shard's *resident* bounding region, since
  owned nodes drift out of their home tile over time.

Both predicates are pure float comparisons on the band edges, so every
worker computes the identical answers — the property suite in
``tests/test_space.py`` checks them against brute-force oracles for
stripes and tiles alike.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.sim.space import Vec2


def _bands(lo: float, hi: float, count: int,
           cell: float) -> Tuple[Tuple[int, int], ...]:
    """Balanced half-open cell-index ranges covering ``[lo, hi]``."""
    first = math.floor(lo / cell)
    last = math.floor(hi / cell)
    total = last - first + 1
    return tuple((first + (i * total) // count,
                  first + ((i + 1) * total) // count)
                 for i in range(count))


@dataclass(frozen=True)
class ShardPlan:
    """A fixed R x C tile partition of a world extent.

    Attributes
    ----------
    min_x, max_x:
        The x-extent to cover, metres (``max_x > min_x``).
    shards:
        Total tile count ``K = rows * cols >= 1``.
    cell_size:
        Grid-cell pitch, metres — callers pass the medium's inflated
        query radius (``range + anchor slack``) so tile borders line
        up with :class:`~repro.sim.space.SpatialGrid` cells.
    rows:
        Horizontal bands ``R`` (must divide ``shards``); ``1`` keeps
        the classic full-height vertical stripes.
    min_y, max_y:
        The y-extent to cover when ``rows > 1`` (ignored for stripes,
        whose bands span all of y).
    """

    min_x: float
    max_x: float
    shards: int
    cell_size: float
    rows: int = 1
    min_y: float = 0.0
    max_y: Optional[float] = None
    #: Half-open column index ranges ``[start, stop)`` per *shard* (not
    #: per column band), in absolute SpatialGrid column units — kept in
    #: per-shard form for compatibility with the stripe-era accessors.
    columns: Tuple[Tuple[int, int], ...] = field(init=False)
    #: Half-open row index ranges per shard (``rows=1``: every shard
    #: gets the unbounded sentinel ``(None, None)`` — full height).
    row_bands: Tuple[Tuple[Optional[int], Optional[int]], ...] = \
        field(init=False)

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1: {self.shards}")
        if self.rows < 1 or self.shards % self.rows:
            raise ValueError(
                f"rows must divide the shard count: "
                f"{self.shards} % {self.rows} != 0")
        if self.cell_size <= 0:
            raise ValueError(f"cell_size must be positive: {self.cell_size}")
        if not self.max_x > self.min_x:
            raise ValueError(
                f"need max_x > min_x: [{self.min_x}, {self.max_x}]")
        cols = self.shards // self.rows
        col_bands = _bands(self.min_x, self.max_x, cols, self.cell_size)
        if self.rows > 1:
            if self.max_y is None or not self.max_y > self.min_y:
                raise ValueError(
                    f"rows={self.rows} needs max_y > min_y: "
                    f"[{self.min_y}, {self.max_y}]")
            y_bands: Tuple[Tuple[Optional[int], Optional[int]], ...] = \
                _bands(self.min_y, self.max_y, self.rows, self.cell_size)
        else:
            y_bands = ((None, None),)
        # Row-major shard order: shard r*C + c is row band r, col band c.
        object.__setattr__(self, "columns", tuple(
            col_bands[s % cols] for s in range(self.shards)))
        object.__setattr__(self, "row_bands", tuple(
            y_bands[s // cols] for s in range(self.shards)))
        object.__setattr__(self, "_col_bands", col_bands)
        object.__setattr__(self, "_y_bands", y_bands)

    # -- derived geometry ---------------------------------------------------

    @property
    def cols(self) -> int:
        """Column bands ``C = shards // rows``."""
        return self.shards // self.rows

    def stripe(self, shard: int) -> Tuple[float, float]:
        """The half-open x-interval ``[lo, hi)`` of one shard's tile.

        Empty bands (a world narrower than its band count) return a
        zero-width interval; boundary positions therefore always
        resolve to exactly one owner.
        """
        start, stop = self.columns[shard]
        return start * self.cell_size, stop * self.cell_size

    def tile(self, shard: int) -> Tuple[float, float, float, float]:
        """One shard's half-open rectangle ``(x_lo, y_lo, x_hi, y_hi)``
        (stripes: y unbounded)."""
        x_lo, x_hi = self.stripe(shard)
        r_start, r_stop = self.row_bands[shard]
        if r_start is None:
            return (x_lo, -math.inf, x_hi, math.inf)
        return (x_lo, r_start * self.cell_size,
                x_hi, r_stop * self.cell_size)

    def _edges(self, bands) -> List[float]:
        # Interior band boundaries, ascending — bisection targets.
        return [bands[i][0] * self.cell_size for i in range(1, len(bands))]

    def shard_of(self, pos: Vec2) -> int:
        """The single shard owning ``pos`` (clamped into the extent).

        Each axis resolves independently by bisection on its interior
        band edges — positions left of the first band belong to band 0,
        positions at or right of the last boundary to the last band —
        and the owner is the row-major tile index.  Stripes (``rows=1``)
        never consult y, exactly as before.
        """
        col = bisect.bisect_right(self._edges(self._col_bands), pos.x)
        if self.rows == 1:
            return col
        row = bisect.bisect_right(self._edges(self._y_bands), pos.y)
        return row * self.cols + col

    def mirror_shards(self, pos: Vec2, range_m: float) -> List[int]:
        """Non-owner shards whose tile intersects the radio disc.

        The region tested is the shard's *ownership region*, not its
        bare tile: :meth:`shard_of` clamps out-of-extent positions into
        the boundary bands, so boundary tiles extend to infinity on
        their outer sides.  Each axis uses the classic closed-interval
        check (``lo <= pos + r and pos - r <= hi`` — bit-identical to
        the historical stripe predicate, which matters because band
        edges are exact cell multiples and ``lo - pos`` rounds
        differently from ``pos + r``); only when the point sits
        diagonally off an interior tile corner does the Euclidean
        ``hypot`` of the two axis gaps refine the verdict.  Empty tiles
        are never mirrored into.
        """
        if range_m < 0:
            raise ValueError(f"range_m must be >= 0: {range_m}")
        owner = self.shard_of(pos)
        cols = self.cols
        hits: List[int] = []
        for shard in range(self.shards):
            if shard == owner:
                continue
            c_start, c_stop = self.columns[shard]
            if c_start == c_stop:
                continue
            r_start, r_stop = self.row_bands[shard]
            if r_start is not None and r_start == r_stop:
                continue
            x_lo, y_lo, x_hi, y_hi = self.tile(shard)
            if shard % cols == 0:
                x_lo = -math.inf
            if shard % cols == cols - 1:
                x_hi = math.inf
            if not (x_lo <= pos.x + range_m
                    and pos.x - range_m <= x_hi):
                continue
            if r_start is not None:
                if shard // cols == 0:
                    y_lo = -math.inf
                if shard // cols == self.rows - 1:
                    y_hi = math.inf
                if not (y_lo <= pos.y + range_m
                        and pos.y - range_m <= y_hi):
                    continue
                dx = max(x_lo - pos.x, 0.0, pos.x - x_hi)
                dy = max(y_lo - pos.y, 0.0, pos.y - y_hi)
                if dx > 0.0 and dy > 0.0 \
                        and math.hypot(dx, dy) > range_m:
                    continue
            hits.append(shard)
        return hits

    def audible_shards(self, pos: Vec2, range_m: float) -> List[int]:
        """Owner plus mirrors, ascending — every shard that must see a
        frame transmitted from ``pos`` with radius ``range_m``."""
        return sorted([self.shard_of(pos)] +
                      self.mirror_shards(pos, range_m))
