"""Spatial partitioning of one world into vertical shard stripes.

A :class:`ShardPlan` slices the world's x-extent into ``K`` contiguous
stripes of whole grid-cell columns, using the *same* cell geometry as
:class:`repro.sim.space.SpatialGrid`: cells are ``cell_size`` wide and
aligned to the origin (column ``c`` spans ``[c*cell, (c+1)*cell)``, the
half-open interval ``math.floor(x / cell_size)`` induces).  Column
``i*C//K .. (i+1)*C//K`` goes to shard ``i`` — the classic balanced
integer split, so stripe widths differ by at most one cell and a world
narrower than ``K`` cells simply leaves the surplus shards empty.

The plan answers two geometric questions:

* :meth:`ShardPlan.shard_of` — which shard owns a position (positions
  outside the covered extent clamp to the nearest stripe, so drifting
  mobility models never fall off the map);
* :meth:`ShardPlan.mirror_shards` — which *other* shards could hear a
  transmission from a position: every shard whose closed stripe
  intersects the closed disc of the radio range around it.  This is the
  boundary-zone predicate of the sharded engine: a frame is shipped to
  its sender's own shard plus exactly its mirror shards.

Both predicates are pure float comparisons on the column edges, so every
worker computes the identical answers — the property suite in
``tests/test_space.py`` checks them against brute-force oracles.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field
from typing import List, Tuple

from repro.sim.space import Vec2


@dataclass(frozen=True)
class ShardPlan:
    """A fixed K-way vertical-stripe partition of an x-extent.

    Attributes
    ----------
    min_x, max_x:
        The world extent to cover, metres (``max_x > min_x``).
    shards:
        Number of stripes ``K >= 1``.
    cell_size:
        Grid-cell width, metres — callers pass the medium's inflated
        query radius (``range + anchor slack``) so stripe borders line
        up with :class:`~repro.sim.space.SpatialGrid` cells.
    """

    min_x: float
    max_x: float
    shards: int
    cell_size: float
    #: Half-open column index ranges ``[start, stop)`` per shard, in
    #: absolute SpatialGrid column units (derived, not passed).
    columns: Tuple[Tuple[int, int], ...] = field(init=False)

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1: {self.shards}")
        if self.cell_size <= 0:
            raise ValueError(f"cell_size must be positive: {self.cell_size}")
        if not self.max_x > self.min_x:
            raise ValueError(
                f"need max_x > min_x: [{self.min_x}, {self.max_x}]")
        first = math.floor(self.min_x / self.cell_size)
        last = math.floor(self.max_x / self.cell_size)
        total = last - first + 1
        ranges = tuple(
            (first + (i * total) // self.shards,
             first + ((i + 1) * total) // self.shards)
            for i in range(self.shards))
        object.__setattr__(self, "columns", ranges)

    # -- derived geometry ---------------------------------------------------

    def stripe(self, shard: int) -> Tuple[float, float]:
        """The half-open x-interval ``[lo, hi)`` of one shard's stripe.

        Empty shards (a world narrower than K cells) return a
        zero-width interval; boundary positions therefore always
        resolve to exactly one owner.
        """
        start, stop = self.columns[shard]
        return start * self.cell_size, stop * self.cell_size

    def _edges(self) -> List[float]:
        # Interior stripe boundaries, ascending — bisection targets.
        return [self.columns[i][0] * self.cell_size
                for i in range(1, self.shards)]

    def shard_of(self, pos: Vec2) -> int:
        """The single shard owning ``pos`` (clamped into the extent).

        Ownership is by x only — stripes span the full y range — and is
        total: positions left of the first stripe belong to shard 0,
        positions at or right of the last boundary to shard K-1.
        """
        return bisect.bisect_right(self._edges(), pos.x)

    def mirror_shards(self, pos: Vec2, range_m: float) -> List[int]:
        """Non-owner shards whose stripe intersects the radio disc.

        The closed disc of radius ``range_m`` around ``pos`` intersects
        the closed stripe ``[lo, hi]`` iff ``pos.x + r >= lo`` and
        ``pos.x - r <= hi`` (y never discriminates: stripes are
        full-height).  Empty stripes are never mirrored into.
        """
        if range_m < 0:
            raise ValueError(f"range_m must be >= 0: {range_m}")
        owner = self.shard_of(pos)
        hits: List[int] = []
        for shard in range(self.shards):
            if shard == owner:
                continue
            start, stop = self.columns[shard]
            if start == stop:
                continue
            lo, hi = self.stripe(shard)
            if pos.x + range_m >= lo and pos.x - range_m <= hi:
                hits.append(shard)
        return hits

    def audible_shards(self, pos: Vec2, range_m: float) -> List[int]:
        """Owner plus mirrors, ascending — every shard that must see a
        frame transmitted from ``pos`` with radius ``range_m``."""
        return sorted([self.shard_of(pos)] +
                      self.mirror_shards(pos, range_m))
