"""Sharded-execution configuration: tile shape, epoch length, latency.

:class:`ShardConfig` is the value of ``ScenarioConfig.shards``.  For
backward compatibility a plain integer ``K`` is accepted everywhere a
:class:`ShardConfig` is (``ScenarioConfig.__post_init__`` coerces it to
``ShardConfig(shards=K)``), so ``config.with_changes(shards=4)`` keeps
meaning "four vertical stripes".

The three knobs
---------------
* ``shards`` / ``rows`` — the tile grid.  ``shards=K`` total tiles,
  arranged as ``rows`` full-width bands of ``K // rows`` columns each
  (``rows=1``, the default, is the classic vertical-stripe plan; a
  ``2x2`` plan is ``shards=4, rows=2``).  The partition itself lives in
  :class:`~repro.sim.shard.partition.ShardPlan`.
* ``latency_s`` — the *semantic* knob: every cross-node frame is
  delivered (and occupies the channel, as heard by everyone but its
  sender) exactly ``latency_s`` seconds after the classic engine would
  deliver it.  This constant air-to-delivery latency is what makes the
  epoch length unobservable: a frame sent at ``s`` is committed at the
  first barrier after ``s`` — no later than ``s + epoch`` — and first
  *used* at ``s + latency_s``, so any ``epoch <= latency_s`` commits
  every frame before any shard can observe it.  The default of 1 s sits
  at the protocol stack's heartbeat cadence: one epoch of traffic is
  about one heartbeat round.
* ``epoch_s`` — the *performance* knob: barrier spacing.  Any value in
  ``(0, latency_s]`` produces bit-identical results (asserted by
  ``tests/test_shard.py``), so ``"auto"`` — the default — simply picks
  the cheapest sound value via :func:`resolve_epoch_s`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Union

#: Historical barrier spacing (PR 8), kept as the explicit-epoch example
#: value and the :func:`~repro.sim.shard.engine.compute_barriers`
#: default.  Binary-exact, so every shard computes bit-equal barriers.
DEFAULT_EPOCH_S = 0.25

#: Default cross-node delivery latency, seconds — see the module
#: docstring for why 1 s (one heartbeat round) is the reference point.
DEFAULT_LATENCY_S = 1.0


@dataclass(frozen=True)
class ShardConfig:
    """How (and whether) a scenario runs on the sharded engine.

    Attributes
    ----------
    shards:
        Total tile count ``K``; ``0`` (falsy) keeps the classic
        single-world engine.
    rows:
        Tile-grid rows ``R`` (must divide ``shards``); ``1`` gives the
        classic vertical stripes, ``R>1`` an ``R x (K/R)`` grid.
    epoch_s:
        Barrier spacing in seconds, or ``"auto"`` to derive it from the
        scenario via :func:`resolve_epoch_s`.  Explicit values must lie
        in ``(0, latency_s]`` — the soundness bound of the retimed
        exchange — and should be binary-exact so barrier instants are.
    latency_s:
        The constant cross-node delivery latency of the sharded
        universe, seconds (> 0).
    """

    shards: int = 0
    rows: int = 1
    epoch_s: Union[float, str] = "auto"
    latency_s: float = DEFAULT_LATENCY_S

    def __post_init__(self) -> None:
        if self.shards < 0:
            raise ValueError(f"shards must be >= 0: {self.shards}")
        if self.rows < 1:
            raise ValueError(f"rows must be >= 1: {self.rows}")
        if self.shards and self.shards % self.rows:
            raise ValueError(
                f"rows must divide the shard count: "
                f"{self.shards} % {self.rows} != 0")
        if self.latency_s <= 0 or not math.isfinite(self.latency_s):
            raise ValueError(
                f"latency_s must be positive and finite: {self.latency_s}")
        if isinstance(self.epoch_s, str):
            if self.epoch_s != "auto":
                raise ValueError(
                    f"epoch_s must be a float or 'auto': {self.epoch_s!r}")
        elif not 0.0 < self.epoch_s <= self.latency_s:
            raise ValueError(
                f"epoch_s must lie in (0, latency_s={self.latency_s}]: "
                f"{self.epoch_s} (longer epochs would let a frame be "
                f"used before the barrier that commits it)")

    def __bool__(self) -> bool:
        """Truthy iff the sharded engine is enabled — keeps the
        historical ``if config.shards:`` dispatch working."""
        return self.shards > 0

    @property
    def cols(self) -> int:
        """Tile-grid columns ``C = K // R`` (0 when disabled)."""
        return self.shards // self.rows if self.shards else 0

    @property
    def plan_label(self) -> str:
        """The ``RxC`` shape tag benches and metadata stamp per row."""
        return f"{self.rows}x{self.cols}" if self.shards else "off"

    @classmethod
    def coerce(cls, value: Union[int, "ShardConfig"]) -> "ShardConfig":
        """Normalise a ``ScenarioConfig.shards`` value: ints become
        stripe plans, existing configs pass through."""
        if isinstance(value, cls):
            return value
        if isinstance(value, bool) or not isinstance(value, int):
            raise ValueError(
                f"shards must be an int or ShardConfig: {value!r}")
        return cls(shards=value)

    @classmethod
    def parse(cls, text: str, epoch: Union[float, str, None] = None
              ) -> "ShardConfig":
        """Parse a CLI shard spec: ``"4"`` (stripes) or ``"2x2"`` (an
        ``RxC`` tile grid); ``epoch`` (``--epoch``) rides along."""
        raw = text.strip().lower()
        try:
            if "x" in raw:
                rows_s, cols_s = raw.split("x", 1)
                rows, cols = int(rows_s), int(cols_s)
                if rows < 1 or cols < 1:
                    raise ValueError
                parsed = cls(shards=rows * cols, rows=rows)
            else:
                parsed = cls(shards=int(raw))
        except ValueError:
            raise ValueError(
                f"shard spec must be an integer K or RxC grid "
                f"(e.g. '4' or '2x2'): {text!r}") from None
        if epoch is None:
            return parsed
        return ShardConfig(shards=parsed.shards, rows=parsed.rows,
                           epoch_s=epoch)


def resolve_epoch_s(shards: ShardConfig, duration: float,
                    warmup: float) -> float:
    """The barrier spacing one run actually uses, seconds.

    Explicit ``epoch_s`` values are returned verbatim.  ``"auto"``
    picks the largest power of two no longer than the soundness bound
    ``latency_s`` and no longer than half the run, so short scenarios
    still cross a couple of barriers.  Powers of two are binary-exact,
    hence every shard — and the cache key, which hashes the *config*,
    not this derived value — computes bit-equal barrier instants; and
    because any sound epoch yields bit-identical results (the retimed
    exchange, see :mod:`repro.sim.shard.engine`), auto-tuning is purely
    a wall-clock optimisation: fewer barriers, less drain/merge/ingest
    overhead per simulated second.
    """
    if shards.epoch_s != "auto":
        return float(shards.epoch_s)
    bound = min(shards.latency_s, max((warmup + duration) / 2.0, 2 ** -6))
    return 2.0 ** math.floor(math.log2(bound))
