"""Sharded-world execution: spatial partitioning + epoch-barrier engine.

Split one logical world into an R x C grid of tiles
(:class:`~repro.sim.shard.partition.ShardPlan`; ``rows=1`` gives the
classic vertical stripes), run each tile's resident nodes in its own
sub-world, and exchange radio traffic at epoch barriers in a canonical
merge order with retimed, epoch-exact deliveries
(:mod:`~repro.sim.shard.engine`) — bit-identical results for any shard
count, tile shape or (sound) epoch length.  Enabled per scenario with
``ScenarioConfig(shards=K)`` or a full
:class:`~repro.sim.shard.config.ShardConfig`; the default ``shards=0``
keeps the classic single-world engine.

The engine module is loaded lazily (PEP 562): it imports the harness
for world construction, while the harness imports *this* package for
:class:`ShardConfig` — eager loading would be circular, and the classic
engine should not pay for the sharded one anyway.
"""

from repro.sim.shard.config import (DEFAULT_EPOCH_S, DEFAULT_LATENCY_S,
                                    ShardConfig, resolve_epoch_s)
from repro.sim.shard.partition import ShardPlan

_ENGINE_EXPORTS = ("ShardFrame", "ShardMedium", "compute_barriers",
                   "compute_ownership", "run_sharded_scenario")

__all__ = [
    "DEFAULT_EPOCH_S",
    "DEFAULT_LATENCY_S",
    "ShardConfig",
    "ShardFrame",
    "ShardMedium",
    "ShardPlan",
    "compute_barriers",
    "compute_ownership",
    "resolve_epoch_s",
    "run_sharded_scenario",
]


def __getattr__(name: str):
    """Resolve engine exports on first touch (lazy import)."""
    if name in _ENGINE_EXPORTS:
        from repro.sim.shard import engine
        return getattr(engine, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")
