"""Sharded-world execution: spatial partitioning + epoch-barrier engine.

Split one logical world into K vertical stripes
(:class:`~repro.sim.shard.partition.ShardPlan`), run each stripe's
resident nodes in its own sub-world, and exchange radio frames at fixed
epoch barriers in a canonical merge order
(:mod:`~repro.sim.shard.engine`) — bit-identical results for any shard
count.  Enabled per scenario with ``ScenarioConfig(shards=K)``; the
default ``shards=0`` keeps the classic single-world engine.
"""

from repro.sim.shard.engine import (DEFAULT_EPOCH_S, ShardFrame,
                                    ShardMedium, compute_barriers,
                                    compute_ownership,
                                    run_sharded_scenario)
from repro.sim.shard.partition import ShardPlan

__all__ = [
    "DEFAULT_EPOCH_S",
    "ShardFrame",
    "ShardMedium",
    "ShardPlan",
    "compute_barriers",
    "compute_ownership",
    "run_sharded_scenario",
]
