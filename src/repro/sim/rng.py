"""Reproducible random-number streams.

Every stochastic component of the simulation (each node's mobility, each
node's protocol jitter, the medium's loss decisions, the workload
generator...) draws from its *own* named stream.  Streams are derived from a
single experiment seed with :func:`numpy.random.SeedSequence.spawn`-style
key hashing, so:

* the same experiment seed reproduces the same run bit-for-bit, and
* adding or removing one component never shifts the draws of another —
  which keeps A/B protocol comparisons paired (same mobility traces under
  both protocols, the property Fig. 17–20 comparisons rely on).
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Tuple


def derive_seed(root_seed: int, *key: object) -> int:
    """Derive a 64-bit child seed from ``root_seed`` and a hashable key.

    The derivation is stable across processes and Python versions (it uses
    SHA-256 over the repr of the key, not ``hash()``, which is salted).
    """
    material = repr((int(root_seed),) + tuple(key)).encode("utf-8")
    digest = hashlib.sha256(material).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """A factory of independent named :class:`random.Random` streams."""

    def __init__(self, root_seed: int):
        self.root_seed = int(root_seed)
        self._streams: Dict[Tuple[object, ...], random.Random] = {}

    def stream(self, *key: object) -> random.Random:
        """Return the stream for ``key``, creating it on first use.

        The same key always maps to the same stream object, so components
        may freely re-request their stream instead of storing it.
        """
        k = tuple(key)
        rng = self._streams.get(k)
        if rng is None:
            rng = random.Random(derive_seed(self.root_seed, *k))
            self._streams[k] = rng
        return rng

    def __len__(self) -> int:
        return len(self._streams)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<RngRegistry root_seed={self.root_seed} "
                f"streams={len(self._streams)}>")
