"""Vectorized batch engine for frame resolution (numpy-backed).

The wireless medium's hot path answers two geometric questions thousands
of times per simulated second: *who is within radio range of this
transmitter?* (receiver resolution) and *which overlapping frames were
audible at this receiver?* (collision resolution).  The scalar engine
answers them one candidate at a time — a Python-level interpolation and
``math.hypot`` per candidate.  This module answers them for *all*
candidates of a frame at once with numpy array arithmetic, while staying
**bit-identical** to the scalar engine.

Bit-identity strategy
---------------------
Two ingredients make the vectorized answers exactly equal to the scalar
ones, not merely close:

1. **Identical interpolation arithmetic.**  :class:`LegTable` stores each
   node's current movement leg as ``(x0, y0, x1, y1, t0, dur)`` and
   evaluates positions with elementwise float64 operations in exactly the
   expression order of :meth:`repro.mobility.base.MobilityModel.position`
   / :meth:`repro.sim.space.Vec2.lerp` — ``u = min(1, max(0,
   (now - t0) / dur))`` then ``x0 + (x1 - x0) * u``.  IEEE-754 double
   arithmetic is deterministic per operation, so the batched results are
   the same doubles the scalar path computes.

2. **Band prefilter + exact confirmation.**  Range predicates are *not*
   answered with ``np.hypot`` (whose last-ulp behaviour is not guaranteed
   to match ``math.hypot``).  Instead a vectorized squared-distance test
   against ``r² · (1 + 1e-9)`` selects a tiny superset of candidates (the
   band comfortably covers the ≤ 4-ulp error of the squared-distance
   form), and each survivor is confirmed with the *scalar* predicate —
   ``math.hypot(dx, dy) <= r`` on the very same doubles.  The decision
   procedure is therefore literally the scalar one; numpy only prunes
   candidates that both procedures would reject.

When numpy is unavailable (:data:`HAVE_NUMPY` is False) the medium
silently falls back to the scalar engine; results are identical either
way, only slower.

Small-batch fast path
---------------------
At the paper's density (6 processes/km²) a frame has only a handful of
candidate receivers, and numpy's per-call overhead dwarfs the work.
Below :data:`SMALL_BATCH` candidates each query therefore runs a plain
Python loop over the same stored doubles with the *identical* expression
order and the identical exact predicate — the answers are bitwise the
same as the array path's, chosen purely by batch size.  The array path
takes over exactly where it starts winning.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from repro.sim.space import Vec2

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as _np
    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - the CI image always has numpy
    _np = None
    HAVE_NUMPY = False

#: Relative squared-distance band for the vectorized prefilter.  The
#: exact predicate ``math.hypot(dx, dy) <= r`` can only accept points
#: with ``dx² + dy² <= r² · (1 + ~4 ulp)``; a relative band of 1e-9 is
#: six orders of magnitude wider, so the prefilter never rejects a point
#: the exact predicate would accept.
_BAND = 1.0 + 1e-9

#: Batches at or below this size run the scalar fast path (a Python
#: loop over the identical doubles); larger batches use numpy.  Chosen
#: empirically: numpy's fixed per-call cost (~20 µs of array setup)
#: only amortises once a few dozen candidates share it.
SMALL_BATCH = 24

#: Leg-state tuple: ``(x0, y0, x1, y1, t0, dur)`` — start point, end
#: point, leg start time and leg duration (``inf`` encodes "parked").
LegState = Tuple[float, float, float, float, float, float]


def static_state(x: float, y: float, t0: float) -> LegState:
    """The leg state of a node parked at ``(x, y)`` since ``t0``.

    ``dur = inf`` makes the interpolation parameter ``u`` exactly 0.0 for
    any finite elapsed time, and ``x1 == x0`` zeroes the delta term, so
    the evaluated position is bitwise ``(x, y)`` (modulo the sign of a
    floating-point zero, which no distance predicate can observe).
    """
    return (x, y, x, y, t0, math.inf)


class LegTable:
    """Current movement legs of every tracked node, as numpy columns.

    Nodes are stored in dense arrays with a side table mapping node id to
    array slot; removal swaps the last row into the hole, so the arrays
    stay gap-free and every batched query is one contiguous gather.
    Query results are returned in the caller's id order (the medium
    passes grid candidates sorted ascending, matching the scalar scan).
    """

    def __init__(self, capacity: int = 64):
        if not HAVE_NUMPY:  # pragma: no cover - guarded by the medium
            raise RuntimeError("LegTable requires numpy")
        self._slot: Dict[int, int] = {}
        self._ids: List[int] = []
        self._n = 0
        self._cols = _np.zeros((6, max(4, capacity)), dtype=_np.float64)
        # Plain-float mirror of the columns for the small-batch scalar
        # fast path (Python floats *are* float64, so both stores hold
        # the identical doubles).
        self._state: Dict[int, LegState] = {}

    def __len__(self) -> int:
        return self._n

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._slot

    def note(self, node_id: int, state: LegState) -> None:
        """Insert or replace ``node_id``'s current leg."""
        slot = self._slot.get(node_id)
        if slot is None:
            if self._n == self._cols.shape[1]:
                grown = _np.zeros((6, 2 * self._n), dtype=_np.float64)
                grown[:, :self._n] = self._cols
                self._cols = grown
            slot = self._n
            self._n += 1
            self._slot[node_id] = slot
            self._ids.append(node_id)
        self._cols[:, slot] = state
        self._state[node_id] = state

    def remove(self, node_id: int) -> None:
        """Forget a node (no-op if absent)."""
        slot = self._slot.pop(node_id, None)
        if slot is None:
            return
        self._state.pop(node_id, None)
        last = self._n - 1
        if slot != last:
            self._cols[:, slot] = self._cols[:, last]
            moved = self._ids[last]
            self._ids[slot] = moved
            self._slot[moved] = slot
        self._ids.pop()
        self._n = last

    def audible(self, ids: Sequence[int], now: float, cx: float, cy: float,
                radius: float) -> List[Tuple[int, Vec2]]:
        """The subset of ``ids`` within ``radius`` of ``(cx, cy)``.

        Positions are interpolated for all candidates at once; the range
        predicate is the band-prefilter + exact ``math.hypot`` confirm
        described in the module docstring, so the returned set — and the
        returned exact positions — equal the scalar per-node scan.
        Input order (ascending ids, as the grid yields them) is kept.
        """
        if not ids:
            return []
        if len(ids) <= SMALL_BATCH:
            # Scalar fast path: the same doubles, the same expression
            # order, the same final predicate — just without numpy's
            # per-call setup cost.  The band prefilter is skipped
            # because the exact predicate decides every candidate
            # anyway (the band only ever prunes rejects).
            out: List[Tuple[int, Vec2]] = []
            state = self._state
            for i in ids:
                x0, y0, x1, y1, t0, dur = state[i]
                u = (now - t0) / dur
                if u < 0.0:
                    u = 0.0
                elif u > 1.0:
                    u = 1.0
                px = x0 + (x1 - x0) * u
                py = y0 + (y1 - y0) * u
                if math.hypot(px - cx, py - cy) <= radius:
                    out.append((i, Vec2(px, py)))
            return out
        slots = _np.fromiter((self._slot[i] for i in ids),
                             dtype=_np.intp, count=len(ids))
        x0, y0, x1, y1, t0, dur = (col[slots] for col in self._cols)
        u = (now - t0) / dur
        _np.minimum(1.0, _np.maximum(0.0, u, out=u), out=u)
        xs = x0 + (x1 - x0) * u
        ys = y0 + (y1 - y0) * u
        dx = xs - cx
        dy = ys - cy
        d2 = dx * dx + dy * dy
        band = d2 <= (radius * radius) * _BAND
        out: List[Tuple[int, Vec2]] = []
        for k in _np.nonzero(band)[0]:
            px = xs[k].item()
            py = ys[k].item()
            if math.hypot(px - cx, py - cy) <= radius:
                out.append((ids[k], Vec2(px, py)))
        return out


class TxLog:
    """Ring buffer of recent transmissions, as numpy columns.

    Vectorized replacement for the medium's transmission history: one
    row per frame — sender id, sender position, range, airtime window —
    pruned from the head once a frame ages past the collision horizon.
    Serves the two history queries of the MAC:

    * :meth:`busy` — carrier sense ("any frame still on the air and
      audible here?");
    * :meth:`corrupt_verdicts` — collision resolution for a whole
      receiver batch of one frame at once.

    Both use the band-prefilter + exact-confirm predicate, so verdicts
    are bit-identical to the scalar history scans.
    """

    def __init__(self, horizon_s: float, capacity: int = 64):
        if not HAVE_NUMPY:  # pragma: no cover - guarded by the medium
            raise RuntimeError("TxLog requires numpy")
        self._horizon_s = float(horizon_s)
        cap = max(4, capacity)
        self._sender = _np.zeros(cap, dtype=_np.int64)
        self._seq = _np.zeros(cap, dtype=_np.int64)
        self._f = _np.zeros((6, cap), dtype=_np.float64)  # x y r r2b t0 t1
        self._head = 0
        self._tail = 0
        self._next_seq = 0

    def __len__(self) -> int:
        return self._tail - self._head

    def add(self, sender: int, x: float, y: float, range_m: float,
            start: float, end: float) -> int:
        """Record a frame; prunes expired rows; returns the frame's seq.

        The returned sequence number identifies the frame in later
        :meth:`corrupt_verdicts` calls (a frame never collides with
        itself), mirroring the scalar scan's ``other is tx`` identity
        check.
        """
        horizon = start - self._horizon_s
        while self._head < self._tail and \
                self._f[5, self._head] < horizon:
            self._head += 1
        if self._tail == self._f.shape[1]:
            self._compact()
        t = self._tail
        self._sender[t] = sender
        seq = self._next_seq
        self._next_seq += 1
        self._seq[t] = seq
        self._f[:, t] = (x, y, range_m, (range_m * range_m) * _BAND,
                         start, end)
        self._tail = t + 1
        return seq

    def _compact(self) -> None:
        n = self._tail - self._head
        cap = self._f.shape[1]
        if n > cap // 2:
            cap *= 2
            sender = _np.zeros(cap, dtype=_np.int64)
            seq = _np.zeros(cap, dtype=_np.int64)
            f = _np.zeros((6, cap), dtype=_np.float64)
        else:
            sender, seq, f = self._sender, self._seq, self._f
        window = slice(self._head, self._tail)
        sender[:n] = self._sender[window]
        seq[:n] = self._seq[window]
        f[:, :n] = self._f[:, window]
        self._sender, self._seq, self._f = sender, seq, f
        self._head, self._tail = 0, n

    def busy(self, px: float, py: float, now: float) -> bool:
        """Carrier sense: any frame still on the air audible at the point?

        Same predicate as the scalar scan (``end > now`` and
        ``hypot(sx - px, sy - py) <= r``); the short-circuit order does
        not matter because no RNG is consumed here.
        """
        if self._head == self._tail:
            return False
        window = slice(self._head, self._tail)
        f = self._f
        # Frames still on the air are a handful at any instant; find
        # them with one cheap vector compare, then confirm each with
        # the exact scalar predicate.
        active = _np.nonzero(f[5, window] > now)[0]
        base = self._head
        for k in active.tolist():
            row = base + k
            if math.hypot(f[0, row] - px, f[1, row] - py) <= f[2, row]:
                return True
        return False

    def corrupt_verdicts(self, tx_seq: int, tx_start: float, tx_end: float,
                         rx_ids: Sequence[int],
                         rx_pos: Sequence[Vec2]):
        """Collision verdicts for every receiver of one frame at once.

        Returns a boolean array aligned with ``rx_ids``: True when some
        *other* frame overlapping ``[tx_start, tx_end)`` was either sent
        by the receiver itself (half-duplex) or audible at the
        receiver's position — the exact predicate of the scalar history
        scan.  Time-overlap and half-duplex tests are exact integer /
        float comparisons; audibility uses the band + ``math.hypot``
        confirm on the identical subtraction results.
        """
        k_rx = len(rx_ids)
        out = _np.zeros(k_rx, dtype=bool)
        if k_rx == 0 or self._head == self._tail:
            return out
        window = slice(self._head, self._tail)
        overlap = ((self._f[4, window] < tx_end)
                   & (self._f[5, window] > tx_start)
                   & (self._seq[window] != tx_seq))
        rows = _np.nonzero(overlap)[0]
        if rows.size == 0:
            return out
        if rows.size * k_rx <= SMALL_BATCH * SMALL_BATCH:
            # Scalar fast path over the few overlapping rows: identical
            # predicate (half-duplex by sender id, else the exact
            # ``math.hypot`` range test), no broadcast matrices.
            f, sender = self._f, self._sender
            base = self._head
            for m in rows.tolist():
                row = base + m
                sx = f[0, row]
                sy = f[1, row]
                r = f[2, row]
                snd = sender[row]
                for k in range(k_rx):
                    if out[k]:
                        continue
                    if snd == rx_ids[k]:
                        out[k] = True
                        continue
                    p = rx_pos[k]
                    if math.hypot(sx - p.x, sy - p.y) <= r:
                        out[k] = True
            return out
        rx_id_arr = _np.fromiter(rx_ids, dtype=_np.int64, count=k_rx)
        rx_x = _np.fromiter((p.x for p in rx_pos),
                            dtype=_np.float64, count=k_rx)
        rx_y = _np.fromiter((p.y for p in rx_pos),
                            dtype=_np.float64, count=k_rx)
        senders = self._sender[window][rows]
        _np.logical_or.reduce(senders[:, None] == rx_id_arr[None, :],
                              axis=0, out=out)
        dx = self._f[0, window][rows][:, None] - rx_x[None, :]
        dy = self._f[1, window][rows][:, None] - rx_y[None, :]
        d2 = dx * dx + dy * dy
        band = d2 <= self._f[3, window][rows][:, None]
        r = self._f[2, window][rows]
        for m, k in zip(*_np.nonzero(band)):
            if not out[k] and math.hypot(dx[m, k], dy[m, k]) <= r[m]:
                out[k] = True
        return out
