"""2-D geometry and spatial indexing for the wireless medium.

The medium must answer "who is within radio range of this transmitter?"
for every transmission.  With up to a few hundred processes a brute-force
scan would work, but the uniform-grid index keeps large parameter sweeps
(150 processes x hundreds of seconds x 30 seeds) comfortably fast.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Set, Tuple


@dataclass(frozen=True, slots=True)
class Vec2:
    """An immutable 2-D point/vector in metres."""

    x: float
    y: float

    def __add__(self, other: "Vec2") -> "Vec2":
        return Vec2(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Vec2") -> "Vec2":
        return Vec2(self.x - other.x, self.y - other.y)

    def __mul__(self, k: float) -> "Vec2":
        return Vec2(self.x * k, self.y * k)

    __rmul__ = __mul__

    def dot(self, other: "Vec2") -> float:
        """Scalar (dot) product with ``other``."""
        return self.x * other.x + self.y * other.y

    def norm(self) -> float:
        """Euclidean length of the vector, in metres."""
        return math.hypot(self.x, self.y)

    def distance_to(self, other: "Vec2") -> float:
        """Euclidean distance to ``other``, in metres."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def normalized(self) -> "Vec2":
        """Unit-length vector with this direction (raises on zero)."""
        n = self.norm()
        if n == 0.0:
            raise ValueError("cannot normalise the zero vector")
        return Vec2(self.x / n, self.y / n)

    def lerp(self, other: "Vec2", t: float) -> "Vec2":
        """Linear interpolation: ``self`` at t=0, ``other`` at t=1."""
        return Vec2(self.x + (other.x - self.x) * t,
                    self.y + (other.y - self.y) * t)

    def as_tuple(self) -> Tuple[float, float]:
        """The ``(x, y)`` coordinates as a plain tuple (metres)."""
        return (self.x, self.y)


class SpatialGrid:
    """Uniform-grid index mapping object ids to positions.

    ``cell_size`` should be on the order of the query radius; range queries
    then only touch a 3x3 block of cells plus an exact distance filter.
    """

    def __init__(self, cell_size: float):
        if cell_size <= 0:
            raise ValueError(f"cell_size must be positive: {cell_size=}")
        self.cell_size = float(cell_size)
        self._cells: Dict[Tuple[int, int], Set[int]] = {}
        self._positions: Dict[int, Vec2] = {}

    def _cell_of(self, pos: Vec2) -> Tuple[int, int]:
        return (math.floor(pos.x / self.cell_size),
                math.floor(pos.y / self.cell_size))

    def __len__(self) -> int:
        return len(self._positions)

    def __contains__(self, obj_id: int) -> bool:
        return obj_id in self._positions

    def position(self, obj_id: int) -> Vec2:
        """Last indexed position of ``obj_id`` (raises KeyError if absent)."""
        return self._positions[obj_id]

    def insert(self, obj_id: int, pos: Vec2) -> None:
        """Insert or move an object."""
        old = self._positions.get(obj_id)
        if old is not None:
            old_cell = self._cell_of(old)
            new_cell = self._cell_of(pos)
            if old_cell == new_cell:
                self._positions[obj_id] = pos
                return
            bucket = self._cells[old_cell]
            bucket.discard(obj_id)
            if not bucket:
                del self._cells[old_cell]
        self._positions[obj_id] = pos
        self._cells.setdefault(self._cell_of(pos), set()).add(obj_id)

    update = insert

    def remove(self, obj_id: int) -> None:
        """Drop an object from the index (no-op if absent)."""
        pos = self._positions.pop(obj_id, None)
        if pos is None:
            return
        cell = self._cell_of(pos)
        bucket = self._cells.get(cell)
        if bucket is not None:
            bucket.discard(obj_id)
            if not bucket:
                del self._cells[cell]

    def query_radius(self, center: Vec2, radius: float,
                     exclude: int | None = None) -> List[int]:
        """Return ids of all objects within ``radius`` of ``center``.

        For radii larger than the cell size the scan widens accordingly, so
        correctness never depends on tuning ``cell_size``.
        """
        if radius < 0:
            raise ValueError(f"radius must be non-negative: {radius=}")
        reach = max(1, math.ceil(radius / self.cell_size))
        cx, cy = self._cell_of(center)
        r2 = radius * radius
        found: List[int] = []
        for ix in range(cx - reach, cx + reach + 1):
            for iy in range(cy - reach, cy + reach + 1):
                bucket = self._cells.get((ix, iy))
                if not bucket:
                    continue
                for obj_id in bucket:
                    if obj_id == exclude:
                        continue
                    p = self._positions[obj_id]
                    dx = p.x - center.x
                    dy = p.y - center.y
                    if dx * dx + dy * dy <= r2:
                        found.append(obj_id)
        found.sort()
        return found

    def items(self) -> Iterator[Tuple[int, Vec2]]:
        """Iterate ``(obj_id, position)`` pairs in insertion order."""
        return iter(self._positions.items())

    def ids(self) -> Iterable[int]:
        """All indexed object ids (a live view)."""
        return self._positions.keys()
