"""Deterministic discrete-event simulation kernel.

The kernel is a classic heap-based event loop.  All protocol behaviour in
this repository is driven exclusively through it: message deliveries,
heartbeat tasks, back-off expirations and garbage-collection periods are all
:class:`Timer` instances scheduled on one :class:`Simulator`.

Determinism guarantees
----------------------
Two events scheduled for the same instant fire in the order they were
scheduled (FIFO tie-breaking via a monotonically increasing sequence
number).  Given identical seeds and identical call sequences, a simulation
is bit-for-bit reproducible, which the test suite relies on.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional


class SimulationError(RuntimeError):
    """Raised on kernel misuse (scheduling in the past, running twice...)."""


class Timer:
    """A cancellable handle for a scheduled callback.

    Timers are returned by :meth:`Simulator.schedule` and
    :meth:`Simulator.call_at`.  Cancelling a fired or already-cancelled
    timer is a harmless no-op, which keeps protocol code free of
    bookkeeping branches.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "fired")

    def __init__(self, time: float, seq: int,
                 callback: Callable[..., None], args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False

    def cancel(self) -> None:
        """Prevent the callback from firing (no-op if already fired)."""
        self.cancelled = True

    @property
    def active(self) -> bool:
        """True while the timer is pending (not fired, not cancelled)."""
        return not (self.cancelled or self.fired)

    def __lt__(self, other: "Timer") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else (
            "fired" if self.fired else "pending")
        return f"<Timer t={self.time:.6f} seq={self.seq} {state}>"


class Simulator:
    """Heap-based discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> out = []
    >>> _ = sim.schedule(1.5, out.append, "hello")
    >>> sim.run(until=10.0)
    >>> out
    ['hello']
    >>> sim.now
    10.0
    """

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._queue: list[Timer] = []
        self._seq = itertools.count()
        self._running = False
        self._stopped = False
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of timers still in the queue (including cancelled ones)."""
        return len(self._queue)

    def schedule(self, delay: float, callback: Callable[..., None],
                 *args: Any) -> Timer:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: {delay=}")
        return self.call_at(self._now + delay, callback, *args)

    def call_at(self, time: float, callback: Callable[..., None],
                *args: Any) -> Timer:
        """Schedule ``callback(*args)`` at absolute simulation ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before now={self._now}")
        timer = Timer(time, next(self._seq), callback, args)
        heapq.heappush(self._queue, timer)
        return timer

    def _lease_seq(self) -> int:
        """Draw one sequence number without scheduling anything.

        Used by :class:`TimerWheel`: a wheel entry *leases* the sequence
        number a plain timer armed at the same moment would have
        received, so coalescing entries onto one service timer preserves
        the exact FIFO tie-order of the non-coalesced kernel.
        """
        return next(self._seq)

    def _call_at_seq(self, time: float, seq: int,
                     callback: Callable[..., None]) -> Timer:
        """Schedule with an explicit (leased) sequence number.

        :class:`TimerWheel` only — arms its service timer with the head
        entry's leased key so the kernel sorts the service exactly where
        the entry's own timer would have sorted.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before now={self._now}")
        timer = Timer(time, seq, callback, ())
        heapq.heappush(self._queue, timer)
        return timer

    def _peek_key(self) -> Optional[tuple]:
        """The ``(time, seq)`` key of the next live queued timer.

        Cancelled heads are purged on the way (exactly as :meth:`run`
        would).  :class:`TimerWheel` uses this mid-service to stop firing
        entries the moment an interleaved kernel event is due first.
        """
        queue = self._queue
        while queue and queue[0].cancelled:
            heapq.heappop(queue)
        if not queue:
            return None
        return (queue[0].time, queue[0].seq)

    def stop(self) -> None:
        """Stop a running simulation after the current event completes."""
        self._stopped = True

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Run the event loop.

        Parameters
        ----------
        until:
            Advance time to exactly ``until``, executing every event with
            ``time <= until``.  If omitted, runs until the queue drains.
        max_events:
            Safety valve for tests: raise :class:`SimulationError` after
            processing this many events.
        """
        if self._running:
            raise SimulationError("simulator is already running")
        if max_events is not None and max_events <= 0:
            # A zero budget used to process one event before raising
            # (the post-decrement check below fired one iteration late);
            # an exhausted budget must reject *before* any callback runs.
            raise SimulationError(
                f"max_events budget exhausted at t={self._now}")
        self._running = True
        self._stopped = False
        budget = max_events if max_events is not None else float("inf")
        try:
            while self._queue and not self._stopped:
                head = self._queue[0]
                if head.cancelled:
                    # Cancelled timers — including one sitting at exactly
                    # t == until — are purged without firing and never
                    # count against the max_events budget.
                    heapq.heappop(self._queue)
                    continue
                if until is not None and head.time > until:
                    break
                heapq.heappop(self._queue)
                self._now = head.time
                head.fired = True
                head.callback(*head.args)
                self.events_processed += 1
                budget -= 1
                if budget <= 0:
                    raise SimulationError(
                        f"max_events budget exhausted at t={self._now}")
            if until is not None and not self._stopped:
                self._now = max(self._now, until)
        finally:
            self._running = False

    def run_until_idle(self, max_events: Optional[int] = None) -> None:
        """Drain the queue entirely (convenience for unit tests)."""
        self.run(until=None, max_events=max_events)


class PeriodicTask:
    """A repeating task with optional per-tick jitter.

    Real wireless stacks never fire beacons at perfectly synchronised
    instants; a little jitter is what prevents pathological repeated
    collisions.  ``jitter`` adds ``U(0, jitter)`` seconds to every tick.

    The period can be changed on the fly with :meth:`set_period` — the
    frugal protocol adapts its heartbeat period to the observed neighbour
    speed (paper Fig. 8, ``computeHBDelay``), so this is a first-class
    operation: the new period takes effect from the next tick.
    """

    def __init__(self, sim: Simulator, period: float,
                 callback: Callable[[], None],
                 jitter: float = 0.0,
                 rng=None,
                 start_delay: Optional[float] = None):
        if period <= 0:
            raise SimulationError(f"period must be positive: {period=}")
        self._sim = sim
        self._period = float(period)
        self._callback = callback
        self._jitter = float(jitter)
        self._rng = rng
        self._timer: Optional[Timer] = None
        self._stopped = False
        first = self._period if start_delay is None else start_delay
        self._arm(first)

    def _draw_jitter(self) -> float:
        if self._jitter <= 0.0:
            return 0.0
        if self._rng is None:
            raise SimulationError("jitter requires an rng")
        return self._rng.uniform(0.0, self._jitter)

    def _arm(self, delay: float) -> None:
        self._timer = self._sim.schedule(
            max(0.0, delay + self._draw_jitter()), self._tick)

    def _tick(self) -> None:
        if self._stopped:
            return
        self._callback()
        if not self._stopped:
            self._arm(self._period)

    @property
    def period(self) -> float:
        """Current tick period in seconds (jitter excluded)."""
        return self._period

    def set_period(self, period: float) -> None:
        """Update the period; takes effect from the next re-arm."""
        if period <= 0:
            raise SimulationError(f"period must be positive: {period=}")
        self._period = float(period)

    @property
    def running(self) -> bool:
        """True until :meth:`stop` is called."""
        return not self._stopped

    def stop(self) -> None:
        """Stop the task and cancel its pending tick."""
        self._stopped = True
        if self._timer is not None:
            self._timer.cancel()


class WheelTimer:
    """A cancellable entry on a :class:`TimerWheel`.

    Mirrors the :class:`Timer` contract (``cancel`` is an idempotent
    no-op after firing; ``active`` while pending) so wheel-backed and
    kernel-backed periodics are interchangeable to protocol code.
    """

    __slots__ = ("time", "seq", "callback", "cancelled", "fired")

    def __init__(self, time: float, seq: int, callback: Callable[[], None]):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self.fired = False

    def cancel(self) -> None:
        """Prevent the callback from firing (no-op if already fired)."""
        self.cancelled = True

    @property
    def active(self) -> bool:
        """True while the entry is pending (not fired, not cancelled)."""
        return not (self.cancelled or self.fired)

    def __lt__(self, other: "WheelTimer") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class TimerWheel:
    """Coalesces many timers onto one kernel service timer.

    A population of N nodes arms N heartbeat + N garbage-collection
    periodics; uncoalesced, every tick is its own kernel timer — one
    heap push/pop and one dispatch each.  The wheel keeps those entries
    on a private heap and arms a *single* kernel timer for the earliest
    one; when it fires, the service loop pops **every** entry due at the
    current instant in one dispatch.  Fleets whose ticks coincide (zero
    jitter, synchronized starts — exactly the TTL-membership pattern)
    collapse to one kernel event per instant.

    Exact order-equivalence
    -----------------------
    Coalescing must not perturb the kernel's deterministic FIFO
    tie-order, and "almost never at the same float time" is not good
    enough: zero-jitter periodics tick at exact integer instants where
    publications and one-shot timers also land.  Three rules make the
    wheel *exactly* order-equivalent to per-entry kernel timers:

    * every entry **leases** its sequence number from the kernel's own
      counter at arm time (:meth:`Simulator._lease_seq`), i.e. the seq a
      plain timer armed at that moment would have received — all other
      timers' seqs are therefore also unchanged;
    * the service timer is scheduled with the head entry's leased
      ``(time, seq)`` key (:meth:`Simulator._call_at_seq`), so the
      kernel sorts the service exactly where the entry itself would
      have sorted;
    * mid-service, before each further entry fires, the wheel peeks the
      kernel queue and stops (re-arming at that entry's own key) the
      moment a kernel event with a smaller key is due — an interleaved
      same-instant timer runs exactly when it would have uncoalesced.

    Only ``Simulator.events_processed`` differs (one service event can
    cover many entries); no scenario metric is derived from it.
    """

    def __init__(self, sim: Simulator):
        self._sim = sim
        self._heap: List[WheelTimer] = []
        self._service_timer: Optional[Timer] = None

    @property
    def now(self) -> float:
        """Current simulation time (convenience passthrough)."""
        return self._sim.now

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) entries on the wheel."""
        return sum(1 for e in self._heap if not e.cancelled)

    def call_at(self, time: float,
                callback: Callable[[], None]) -> WheelTimer:
        """Arm ``callback`` at absolute ``time``; returns the entry."""
        if time < self._sim.now:
            raise SimulationError(
                f"cannot schedule at {time} before now={self._sim.now}")
        entry = WheelTimer(time, self._sim._lease_seq(), callback)
        heapq.heappush(self._heap, entry)
        self._sync_service()
        return entry

    def schedule(self, delay: float,
                 callback: Callable[[], None]) -> WheelTimer:
        """Arm ``callback`` ``delay`` seconds from now; returns the entry."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: {delay=}")
        return self.call_at(self._sim.now + delay, callback)

    def _sync_service(self) -> None:
        """(Re-)arm the kernel service timer at the head entry's key."""
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
        if not heap:
            return
        head = heap[0]
        st = self._service_timer
        if st is not None and not st.cancelled and not st.fired \
                and (st.time, st.seq) <= (head.time, head.seq):
            return
        if st is not None:
            st.cancel()
        self._service_timer = self._sim._call_at_seq(
            head.time, head.seq, self._service)

    def _service(self) -> None:
        self._service_timer = None
        sim = self._sim
        now = sim.now
        heap = self._heap
        while heap:
            entry = heap[0]
            if entry.cancelled:
                heapq.heappop(heap)
                continue
            if entry.time > now:
                break
            key = sim._peek_key()
            if key is not None and key < (entry.time, entry.seq):
                break  # an interleaved kernel event is due first
            heapq.heappop(heap)
            entry.fired = True
            entry.callback()
        self._sync_service()


class WheelPeriodicTask:
    """Drop-in :class:`PeriodicTask` equivalent backed by a wheel.

    Same period/jitter semantics, same rng consumption (one jitter draw
    per arm, from the same stream positions), same ``set_period`` /
    ``stop`` / ``running`` contract — only the timer substrate differs.
    """

    def __init__(self, wheel: TimerWheel, period: float,
                 callback: Callable[[], None],
                 jitter: float = 0.0,
                 rng=None,
                 start_delay: Optional[float] = None):
        if period <= 0:
            raise SimulationError(f"period must be positive: {period=}")
        self._wheel = wheel
        self._period = float(period)
        self._callback = callback
        self._jitter = float(jitter)
        self._rng = rng
        self._entry: Optional[WheelTimer] = None
        self._stopped = False
        first = self._period if start_delay is None else start_delay
        self._arm(first)

    def _draw_jitter(self) -> float:
        if self._jitter <= 0.0:
            return 0.0
        if self._rng is None:
            raise SimulationError("jitter requires an rng")
        return self._rng.uniform(0.0, self._jitter)

    def _arm(self, delay: float) -> None:
        self._entry = self._wheel.schedule(
            max(0.0, delay + self._draw_jitter()), self._tick)

    def _tick(self) -> None:
        if self._stopped:
            return
        self._callback()
        if not self._stopped:
            self._arm(self._period)

    @property
    def period(self) -> float:
        """Current tick period in seconds (jitter excluded)."""
        return self._period

    def set_period(self, period: float) -> None:
        """Update the period; takes effect from the next re-arm."""
        if period <= 0:
            raise SimulationError(f"period must be positive: {period=}")
        self._period = float(period)

    @property
    def running(self) -> bool:
        """True until :meth:`stop` is called."""
        return not self._stopped

    def stop(self) -> None:
        """Stop the task and cancel its pending tick."""
        self._stopped = True
        if self._entry is not None:
            self._entry.cancel()
