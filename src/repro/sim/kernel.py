"""Deterministic discrete-event simulation kernel.

The kernel is a classic heap-based event loop.  All protocol behaviour in
this repository is driven exclusively through it: message deliveries,
heartbeat tasks, back-off expirations and garbage-collection periods are all
:class:`Timer` instances scheduled on one :class:`Simulator`.

Determinism guarantees
----------------------
Two events scheduled for the same instant fire in the order they were
scheduled (FIFO tie-breaking via a monotonically increasing sequence
number).  Given identical seeds and identical call sequences, a simulation
is bit-for-bit reproducible, which the test suite relies on.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional


class SimulationError(RuntimeError):
    """Raised on kernel misuse (scheduling in the past, running twice...)."""


class Timer:
    """A cancellable handle for a scheduled callback.

    Timers are returned by :meth:`Simulator.schedule` and
    :meth:`Simulator.call_at`.  Cancelling a fired or already-cancelled
    timer is a harmless no-op, which keeps protocol code free of
    bookkeeping branches.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "fired")

    def __init__(self, time: float, seq: int,
                 callback: Callable[..., None], args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False

    def cancel(self) -> None:
        """Prevent the callback from firing (no-op if already fired)."""
        self.cancelled = True

    @property
    def active(self) -> bool:
        """True while the timer is pending (not fired, not cancelled)."""
        return not (self.cancelled or self.fired)

    def __lt__(self, other: "Timer") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else (
            "fired" if self.fired else "pending")
        return f"<Timer t={self.time:.6f} seq={self.seq} {state}>"


class Simulator:
    """Heap-based discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> out = []
    >>> _ = sim.schedule(1.5, out.append, "hello")
    >>> sim.run(until=10.0)
    >>> out
    ['hello']
    >>> sim.now
    10.0
    """

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._queue: list[Timer] = []
        self._seq = itertools.count()
        self._running = False
        self._stopped = False
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of timers still in the queue (including cancelled ones)."""
        return len(self._queue)

    def schedule(self, delay: float, callback: Callable[..., None],
                 *args: Any) -> Timer:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: {delay=}")
        return self.call_at(self._now + delay, callback, *args)

    def call_at(self, time: float, callback: Callable[..., None],
                *args: Any) -> Timer:
        """Schedule ``callback(*args)`` at absolute simulation ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before now={self._now}")
        timer = Timer(time, next(self._seq), callback, args)
        heapq.heappush(self._queue, timer)
        return timer

    def stop(self) -> None:
        """Stop a running simulation after the current event completes."""
        self._stopped = True

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Run the event loop.

        Parameters
        ----------
        until:
            Advance time to exactly ``until``, executing every event with
            ``time <= until``.  If omitted, runs until the queue drains.
        max_events:
            Safety valve for tests: raise :class:`SimulationError` after
            processing this many events.
        """
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        self._stopped = False
        budget = max_events if max_events is not None else float("inf")
        try:
            while self._queue and not self._stopped:
                head = self._queue[0]
                if head.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and head.time > until:
                    break
                heapq.heappop(self._queue)
                self._now = head.time
                head.fired = True
                head.callback(*head.args)
                self.events_processed += 1
                budget -= 1
                if budget <= 0:
                    raise SimulationError(
                        f"max_events budget exhausted at t={self._now}")
            if until is not None and not self._stopped:
                self._now = max(self._now, until)
        finally:
            self._running = False

    def run_until_idle(self, max_events: Optional[int] = None) -> None:
        """Drain the queue entirely (convenience for unit tests)."""
        self.run(until=None, max_events=max_events)


class PeriodicTask:
    """A repeating task with optional per-tick jitter.

    Real wireless stacks never fire beacons at perfectly synchronised
    instants; a little jitter is what prevents pathological repeated
    collisions.  ``jitter`` adds ``U(0, jitter)`` seconds to every tick.

    The period can be changed on the fly with :meth:`set_period` — the
    frugal protocol adapts its heartbeat period to the observed neighbour
    speed (paper Fig. 8, ``computeHBDelay``), so this is a first-class
    operation: the new period takes effect from the next tick.
    """

    def __init__(self, sim: Simulator, period: float,
                 callback: Callable[[], None],
                 jitter: float = 0.0,
                 rng=None,
                 start_delay: Optional[float] = None):
        if period <= 0:
            raise SimulationError(f"period must be positive: {period=}")
        self._sim = sim
        self._period = float(period)
        self._callback = callback
        self._jitter = float(jitter)
        self._rng = rng
        self._timer: Optional[Timer] = None
        self._stopped = False
        first = self._period if start_delay is None else start_delay
        self._arm(first)

    def _draw_jitter(self) -> float:
        if self._jitter <= 0.0:
            return 0.0
        if self._rng is None:
            raise SimulationError("jitter requires an rng")
        return self._rng.uniform(0.0, self._jitter)

    def _arm(self, delay: float) -> None:
        self._timer = self._sim.schedule(
            max(0.0, delay + self._draw_jitter()), self._tick)

    def _tick(self) -> None:
        if self._stopped:
            return
        self._callback()
        if not self._stopped:
            self._arm(self._period)

    @property
    def period(self) -> float:
        """Current tick period in seconds (jitter excluded)."""
        return self._period

    def set_period(self, period: float) -> None:
        """Update the period; takes effect from the next re-arm."""
        if period <= 0:
            raise SimulationError(f"period must be positive: {period=}")
        self._period = float(period)

    @property
    def running(self) -> bool:
        """True until :meth:`stop` is called."""
        return not self._stopped

    def stop(self) -> None:
        """Stop the task and cancel its pending tick."""
        self._stopped = True
        if self._timer is not None:
            self._timer.cancel()
