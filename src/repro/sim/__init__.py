"""Discrete-event simulation substrate.

This subpackage provides the deterministic discrete-event kernel the whole
reproduction runs on.  The paper evaluated its protocol inside Qualnet 3.7;
Qualnet is proprietary, so :mod:`repro.sim` supplies the equivalent
facilities the protocol layer actually observes:

* :class:`~repro.sim.kernel.Simulator` — a heap-based event loop with
  cancellable timers and periodic tasks,
* :class:`~repro.sim.rng.RngRegistry` — reproducible, independently seeded
  random streams (one per node/purpose, so adding a node never perturbs the
  draws of another),
* :mod:`repro.sim.space` — 2-D vector math and a uniform-grid spatial index
  used by the wireless medium for O(neighbourhood) range queries.
"""

from repro.sim.kernel import (Simulator, Timer, PeriodicTask,
                              SimulationError, TimerWheel, WheelPeriodicTask,
                              WheelTimer)
from repro.sim.rng import RngRegistry
from repro.sim.space import Vec2, SpatialGrid

__all__ = [
    "Simulator",
    "Timer",
    "PeriodicTask",
    "SimulationError",
    "TimerWheel",
    "WheelPeriodicTask",
    "WheelTimer",
    "RngRegistry",
    "Vec2",
    "SpatialGrid",
]
