"""Finite energy stores with exact depletion semantics.

The paper motivates frugality with the scarce resources of mobile devices
but never quantifies them; a :class:`Battery` is the missing resource.  It
holds joules, is discharged by the :class:`~repro.energy.model.EnergyModel`
as the radio burns power, and reports the instant it runs dry so the
owning node can be detached from the medium *mid-run* — which is what
turns every scenario into a network-lifetime experiment.
"""

from __future__ import annotations

import math


class Battery:
    """A finite reservoir of joules.

    ``capacity_j=None`` models mains power (never drains), so the same
    accounting code runs in both energy-audit and lifetime experiments.
    """

    def __init__(self, capacity_j: float | None = None,
                 initial_j: float | None = None):
        if capacity_j is not None and capacity_j <= 0:
            raise ValueError(f"capacity must be positive: {capacity_j=}")
        self.capacity_j = capacity_j
        if initial_j is None:
            initial_j = capacity_j
        if capacity_j is not None and initial_j > capacity_j:
            raise ValueError("initial charge exceeds capacity")
        self._remaining = (math.inf if capacity_j is None
                           else float(initial_j))

    @property
    def infinite(self) -> bool:
        return self.capacity_j is None

    @property
    def remaining_j(self) -> float:
        return self._remaining

    @property
    def drained(self) -> bool:
        return self._remaining <= 0.0

    def discharge(self, joules: float) -> float:
        """Draw ``joules``; returns how much was actually available.

        Draining past empty clamps at zero — the radio dies at the exact
        instant the reservoir hits the floor, not after.
        """
        if joules < 0:
            raise ValueError(f"cannot discharge a negative amount: {joules=}")
        if self.infinite:
            return joules
        drawn = min(joules, self._remaining)
        self._remaining -= drawn
        return drawn

    def recharge(self) -> None:
        """Refill to capacity (used at measurement-window start)."""
        self._remaining = (math.inf if self.capacity_j is None
                           else float(self.capacity_j))

    def time_to_empty_s(self, draw_w: float) -> float:
        """Seconds until empty at a constant ``draw_w`` watts (inf if the
        draw is zero or the battery is mains-backed)."""
        if draw_w < 0:
            raise ValueError(f"draw must be >= 0: {draw_w=}")
        if self.infinite or draw_w == 0.0:
            return math.inf
        return self._remaining / draw_w

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.infinite:
            return "<Battery mains>"
        return (f"<Battery {self._remaining:.1f}/"
                f"{self.capacity_j:.1f} J>")
