"""Network-level energy accounting: one accountant per simulated world.

The :class:`EnergyAccountant` is the energy twin of
:class:`~repro.metrics.collector.MetricsCollector`: it subscribes to the
medium's TX/RX window hooks and each node's radio-state callbacks, owns
one :class:`~repro.energy.model.EnergyModel` (and optional duty cycler)
per node, and handles battery depletion by powering the node down —
detaching it from the medium mid-run.  Protocols are never instrumented
directly, so the frugal protocol and the flooding baselines are billed by
exactly the same meter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.energy.battery import Battery
from repro.energy.dutycycle import DutyCycleConfig, DutyCycler
from repro.energy.model import EnergyModel, PowerProfile, RadioState
from repro.net.medium import WirelessMedium

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import Node


@dataclass(frozen=True)
class EnergyConfig:
    """Everything the harness needs to energy-instrument a scenario."""

    profile: PowerProfile = field(default_factory=PowerProfile.wifi_80211b)
    battery_capacity_j: Optional[float] = None     # None = mains power
    duty_cycle: DutyCycleConfig = field(default_factory=DutyCycleConfig)

    def __post_init__(self) -> None:
        if (self.battery_capacity_j is not None
                and self.battery_capacity_j <= 0):
            raise ValueError("battery_capacity_j must be positive")


@dataclass(frozen=True)
class _FrozenEnergyModel:
    """Immutable stand-in for an :class:`EnergyModel` after unpickling.

    Carries exactly the readings the accountant's aggregate methods
    consume; it has no simulator, battery or callbacks, so a detached
    accountant is a pure record of what the run cost.
    """

    node_id: int
    total_joules: float
    joules_by_state: Dict["RadioState", float]
    depleted: bool


class EnergyAccountant:
    """Meter every node on a medium; kill the ones that run dry."""

    def __init__(self, medium: WirelessMedium, config: EnergyConfig):
        self.medium = medium
        self.config = config
        self.models: Dict[int, EnergyModel] = {}
        self.cyclers: Dict[int, DutyCycler] = {}
        self.deaths: List[Tuple[float, int]] = []   # (time, node_id)
        # Own node registry: a depleted node leaves the medium, but the
        # accountant must still reach it (metrics, warm-up revival).
        self._nodes: Dict[int, "Node"] = {}
        medium.on_tx_window = self._on_tx_window
        medium.on_rx_window = self._on_rx_window

    # -- wiring ---------------------------------------------------------------

    def track_node(self, node: "Node") -> None:
        """Meter ``node`` (idempotent per id): build its energy model,
        subscribe to its sleep/wake transitions, start its duty cycler."""
        if node.id in self.models:
            return
        battery = Battery(self.config.battery_capacity_j)
        model = EnergyModel(node.id, node.sim, self.config.profile,
                            battery=battery, on_depleted=self._on_depleted)
        self.models[node.id] = model
        self._nodes[node.id] = node
        node.on_radio_state = self._on_radio_state
        if self.config.duty_cycle.enabled:
            self.cyclers[node.id] = DutyCycler(node.sim, node,
                                               self.config.duty_cycle)

    # -- medium hooks -----------------------------------------------------------

    def _on_tx_window(self, sender_id: int, duration_s: float) -> None:
        model = self.models.get(sender_id)
        if model is not None:
            model.note_tx(duration_s)

    def _on_rx_window(self, receiver_id: int, duration_s: float) -> None:
        model = self.models.get(receiver_id)
        if model is not None:
            model.note_rx(duration_s)

    # -- node hooks -------------------------------------------------------------

    def _on_radio_state(self, node: "Node", state: str) -> None:
        model = self.models.get(node.id)
        if model is None:
            return
        if state == "sleep":
            model.sleep()
        elif state == "wake":
            model.wake()

    def _on_depleted(self, node_id: int) -> None:
        model = self.models[node_id]
        self.deaths.append((model.sim.now, node_id))
        cycler = self.cyclers.pop(node_id, None)
        if cycler is not None:
            cycler.stop()
        node = self._nodes.get(node_id)
        if node is not None:
            node.power_down()

    # -- pickling (parallel execution / result cache) ---------------------------

    def __getstate__(self) -> dict:
        """Pickle frozen per-node meter readings, not live models.

        Each :class:`EnergyModel` references the simulator (pending
        depletion timers and all); shipping that across a process
        boundary would drag the whole world along.  The pickled form
        replaces every model with an immutable snapshot exposing the
        attributes the aggregate methods read (``total_joules``,
        ``joules_by_state``, ``depleted``), so an unpickled accountant
        answers every metrics question but cannot meter anything new.
        """
        return {
            "config": self.config,
            "deaths": list(self.deaths),
            "models": {
                node_id: _FrozenEnergyModel(
                    node_id=node_id,
                    total_joules=model.total_joules,
                    joules_by_state=dict(model.joules_by_state),
                    depleted=model.depleted)
                for node_id, model in self.models.items()
            },
        }

    def __setstate__(self, state: dict) -> None:
        self.config = state["config"]
        self.deaths = state["deaths"]
        self.models = state["models"]
        self.medium = None
        self.cyclers = {}
        self._nodes = {}

    # -- lifecycle ------------------------------------------------------------

    def start_measurement(self) -> None:
        """Zero tallies and refill batteries — warm-up traffic is free,
        mirroring the metrics collector's freeze/resume window.

        A node whose battery ran dry *during* warm-up gets a fresh one
        and rejoins the medium: lifetime clocks start here, and a
        network that is already dead at measurement start would
        otherwise be reported as never having died at all.
        """
        for node_id, model in self.models.items():
            was_off = model.depleted
            model.reset_tallies(recharge=True)
            if was_off:
                model.revive()
                self._nodes[node_id].repower()
            if (self.config.duty_cycle.enabled
                    and node_id not in self.cyclers):
                self.cyclers[node_id] = DutyCycler(
                    model.sim, self._nodes[node_id], self.config.duty_cycle)
        self.deaths.clear()

    def finalize(self) -> None:
        """Charge every node up to the current instant (end of run)."""
        for model in self.models.values():
            model.finalize()

    # -- aggregates ----------------------------------------------------------------

    @property
    def node_count(self) -> int:
        return len(self.models)

    def joules_of(self, node_id: int) -> float:
        return self.models[node_id].total_joules

    def total_joules(self) -> float:
        return sum(m.total_joules for m in self.models.values())

    def joules_per_node(self) -> float:
        n = self.node_count
        return self.total_joules() / n if n else 0.0

    def joules_by_state(self) -> Dict[RadioState, float]:
        out = {state: 0.0 for state in RadioState}
        for model in self.models.values():
            for state, joules in model.joules_by_state.items():
                out[state] += joules
        return out

    def depleted_ids(self) -> List[int]:
        return [node_id for _, node_id in self.deaths]

    def survivor_ids(self) -> List[int]:
        dead = set(self.depleted_ids())
        return sorted(i for i in self.models if i not in dead)

    def first_death_time(self) -> Optional[float]:
        return self.deaths[0][0] if self.deaths else None

    def network_lifetime_s(self, horizon_s: float) -> float:
        """Time until the first battery death — the classic lifetime
        metric — clamped to the observation ``horizon_s`` when every node
        survived the whole run."""
        first = self.first_death_time()
        return horizon_s if first is None else min(first, horizon_s)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<EnergyAccountant nodes={self.node_count} "
                f"joules={self.total_joules():.1f} "
                f"deaths={len(self.deaths)}>")
