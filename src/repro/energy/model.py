"""Per-node radio energy accounting: a TX/RX/IDLE/SLEEP state machine.

Wireless energy is dominated by which *state* the radio is in, not by how
many bits it moves: an 802.11 card burns nearly as much listening to an
idle channel as receiving, and only sleeping saves real power (Feeney &
Nilsson, INFOCOM 2001, measured 1.65/1.4/1.15/0.045 W for a 2.4 GHz WaveLAN
card).  The :class:`EnergyModel` therefore tracks a state machine on the
simulation clock:

* **TX** while one of the node's own frames is on the air (airtime from
  :meth:`RadioConfig.transmission_duration_s`, so the data rate matters);
* **RX** while any audible frame overlaps the node (even frames that end
  up collided — the radio front-end still burned the power);
* **SLEEP** while the duty-cycling policy has switched the radio off;
* **IDLE** otherwise (powered, carrier-sensing, hearing nothing).

States are charged lazily: joules accrue only at state *transitions*
(``power(state) × elapsed``), so the accounting adds O(1) work per frame
edge instead of per simulated second.  When a finite
:class:`~repro.energy.battery.Battery` is attached, the model additionally
keeps one kernel timer armed at the exact instant the battery would run
dry at the current draw — depletion is detected on time, deterministically,
not at the next transition.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.energy.battery import Battery
from repro.net.radio import RadioConfig, dbm_to_mw
from repro.sim.kernel import Simulator, Timer


class RadioState(enum.Enum):
    TX = "tx"
    RX = "rx"
    IDLE = "idle"
    SLEEP = "sleep"
    OFF = "off"          # battery drained: draws nothing, forever


@dataclass(frozen=True)
class PowerProfile:
    """Per-state power draws in watts.

    Use :meth:`from_radio` to derive the TX draw from a
    :class:`RadioConfig` power budget, or the measured presets for the
    two device classes the paper discusses (802.11 PDAs, sensor-class
    power-save radios).
    """

    tx_w: float = 1.65
    rx_w: float = 1.4
    idle_w: float = 1.15
    sleep_w: float = 0.045

    def __post_init__(self) -> None:
        for name in ("tx_w", "rx_w", "idle_w", "sleep_w"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")

    def draw_w(self, state: RadioState) -> float:
        if state is RadioState.TX:
            return self.tx_w
        if state is RadioState.RX:
            return self.rx_w
        if state is RadioState.IDLE:
            return self.idle_w
        if state is RadioState.SLEEP:
            return self.sleep_w
        return 0.0                       # OFF

    # -- presets ---------------------------------------------------------------

    @classmethod
    def wifi_80211b(cls) -> "PowerProfile":
        """Feeney & Nilsson's measured 802.11 WaveLAN draws — the radio
        the paper's Qualnet experiments model."""
        return cls(tx_w=1.65, rx_w=1.4, idle_w=1.15, sleep_w=0.045)

    @classmethod
    def power_save(cls) -> "PowerProfile":
        """A power-save-mode radio: cheap idle carrier sense, so TX/RX
        airtime dominates the budget.  This is the regime where protocol
        frugality translates most directly into lifetime."""
        return cls(tx_w=1.65, rx_w=1.4, idle_w=0.2, sleep_w=0.01)

    @classmethod
    def from_radio(cls, radio: RadioConfig, electronics_w: float = 1.4,
                   idle_w: float = 1.15,
                   sleep_w: float = 0.045) -> "PowerProfile":
        """Derive the TX draw from a radio's configured power budget:
        electronics plus the RF power actually radiated, scaled up by the
        antenna efficiency (an 0.8-efficiency antenna wastes a quarter of
        the amplifier's output as heat)."""
        radiated_w = dbm_to_mw(radio.tx_power_dbm) / 1000.0
        return cls(tx_w=electronics_w + radiated_w / radio.antenna_efficiency,
                   rx_w=electronics_w, idle_w=idle_w, sleep_w=sleep_w)


class EnergyModel:
    """One node's radio state machine, charged on the simulation clock.

    The medium reports TX/RX *windows* (``note_tx`` / ``note_rx``); the
    duty cycler reports ``sleep`` / ``wake``.  The effective state is
    resolved by priority — TX beats RX beats SLEEP beats IDLE — which is
    exactly half-duplex behaviour: a transmitting radio is not also
    paying to receive.
    """

    def __init__(self, node_id: int, sim: Simulator, profile: PowerProfile,
                 battery: Optional[Battery] = None,
                 on_depleted: Optional[Callable[[int], None]] = None):
        self.node_id = node_id
        self.sim = sim
        self.profile = profile
        self.battery = battery or Battery()
        self.on_depleted = on_depleted
        self.joules_by_state: Dict[RadioState, float] = {
            state: 0.0 for state in RadioState}
        self.transitions = 0
        self.depleted_at: Optional[float] = None
        self._since = sim.now
        self._tx_until = -math.inf
        self._rx_until = -math.inf
        self._asleep = False
        self._off = False
        self._depletion_timer: Optional[Timer] = None
        # Arm immediately: even a node that never transmits dies on time.
        self._rearm_depletion(sim.now)

    # -- inspection -----------------------------------------------------------

    @property
    def total_joules(self) -> float:
        return sum(self.joules_by_state.values())

    @property
    def state(self) -> RadioState:
        return self._effective_state(self.sim.now)

    @property
    def depleted(self) -> bool:
        return self._off

    def _effective_state(self, now: float) -> RadioState:
        if self._off:
            return RadioState.OFF
        if now < self._tx_until:
            return RadioState.TX
        if now < self._rx_until:
            return RadioState.RX
        if self._asleep:
            return RadioState.SLEEP
        return RadioState.IDLE

    # -- charging -------------------------------------------------------------

    def _sync(self) -> None:
        """Charge the interval since the last transition at the state that
        was in force *over* that interval, then re-arm depletion."""
        now = self.sim.now
        elapsed = now - self._since
        if elapsed > 0.0:
            # The state during [since, now) is whatever was effective at
            # its start: window edges always trigger a _sync, so the state
            # cannot have changed silently mid-interval.
            state = self._effective_state(self._since)
            joules = self.profile.draw_w(state) * elapsed
            drawn = self.battery.discharge(joules)
            self.joules_by_state[state] += drawn
            self._since = now
            if self.battery.drained and not self._off:
                self._power_off(now)
                return
        else:
            self._since = now
        self._rearm_depletion(now)

    def _power_off(self, now: float) -> None:
        self._off = True
        self.depleted_at = now
        self.transitions += 1
        if self._depletion_timer is not None:
            self._depletion_timer.cancel()
            self._depletion_timer = None
        if self.on_depleted is not None:
            self.on_depleted(self.node_id)

    def _rearm_depletion(self, now: float) -> None:
        if self._off or self.battery.infinite:
            return
        if self._depletion_timer is not None:
            self._depletion_timer.cancel()
            self._depletion_timer = None
        draw = self.profile.draw_w(self._effective_state(now))
        horizon = self.battery.time_to_empty_s(draw)
        if math.isinf(horizon):
            return
        if now + horizon <= now:
            # Float residue: the remaining charge buys less than one
            # representable slice of time — consider it spent, or the
            # rescheduled sync would spin forever at this timestamp.
            self.battery.discharge(self.battery.remaining_j)
            self._power_off(now)
            return
        # Next TX/RX/sleep edge re-syncs anyway; this timer only matters
        # when the node sits in one state long enough to die in it.
        self._depletion_timer = self.sim.schedule(horizon, self._sync)

    # -- transition notifications (medium / duty cycler) -----------------------

    def note_tx(self, duration_s: float) -> None:
        """The node's own frame occupies the air for ``duration_s``."""
        if self._off:
            return
        self._sync()
        end = self.sim.now + duration_s
        if end > self._tx_until:
            self._tx_until = end
            self.transitions += 1
            self.sim.schedule(duration_s, self._sync)
            self._rearm_depletion(self.sim.now)

    def note_rx(self, duration_s: float) -> None:
        """An audible frame overlaps the node for ``duration_s``."""
        if self._off or self._asleep:
            return
        self._sync()
        end = self.sim.now + duration_s
        if end > self._rx_until:
            self._rx_until = end
            self.transitions += 1
            self.sim.schedule(duration_s, self._sync)
            self._rearm_depletion(self.sim.now)

    def sleep(self) -> None:
        if self._off or self._asleep:
            return
        self._sync()
        if self._off:
            return
        self._asleep = True
        self.transitions += 1
        self._rearm_depletion(self.sim.now)

    def wake(self) -> None:
        if self._off or not self._asleep:
            return
        self._sync()
        if self._off:
            return
        self._asleep = False
        self.transitions += 1
        self._rearm_depletion(self.sim.now)

    # -- lifecycle ------------------------------------------------------------

    def reset_tallies(self, recharge: bool = True) -> None:
        """Zero the joule counters (and optionally refill the battery) —
        called at measurement-window start so warm-up traffic is free,
        mirroring :meth:`MetricsCollector.resume`."""
        self._sync()
        for state in self.joules_by_state:
            self.joules_by_state[state] = 0.0
        if recharge and not self._off:
            self.battery.recharge()
            self._rearm_depletion(self.sim.now)

    def revive(self) -> None:
        """A fresh battery was installed in a drained radio: leave OFF,
        refill, and resume accounting from the current instant."""
        if not self._off:
            return
        self._off = False
        self.depleted_at = None
        self._since = self.sim.now
        self._tx_until = -math.inf
        self._rx_until = -math.inf
        self._asleep = False
        self.transitions += 1
        self.battery.recharge()
        self._rearm_depletion(self.sim.now)

    def finalize(self) -> None:
        """Charge up to the current instant (end of run)."""
        self._sync()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<EnergyModel node={self.node_id} {self.state.value} "
                f"{self.total_joules:.2f} J>")
