"""Energy accounting: radio power states, batteries and duty cycling.

The paper's pitch is *frugal* dissemination on resource-poor mobile
devices, but its evaluation counts only bytes.  This subpackage prices
those bytes in joules so the frugality claim becomes quantitative:

* :mod:`repro.energy.model` — a per-node TX/RX/IDLE/SLEEP radio state
  machine charged on the simulation clock, with per-state power draws
  (measured 802.11 presets, or derived from a :class:`RadioConfig`),
* :mod:`repro.energy.battery` — finite energy stores with exact,
  timer-scheduled depletion,
* :mod:`repro.energy.dutycycle` — synchronised sleep schedules the frugal
  protocol can exploit and flooders cannot,
* :mod:`repro.energy.collector` — the per-world accountant that meters
  every node, powers down the drained ones mid-run, and aggregates
  joules-per-node / joules-per-delivery / network-lifetime metrics.
"""

from repro.energy.battery import Battery
from repro.energy.collector import EnergyAccountant, EnergyConfig
from repro.energy.dutycycle import DutyCycleConfig, DutyCycler
from repro.energy.model import EnergyModel, PowerProfile, RadioState

__all__ = [
    "Battery",
    "EnergyAccountant",
    "EnergyConfig",
    "DutyCycleConfig",
    "DutyCycler",
    "EnergyModel",
    "PowerProfile",
    "RadioState",
]
