"""Duty-cycling policies: trading listening time for lifetime.

The only state a radio can save real power in is SLEEP, but a sleeping
radio is deaf — so duty cycling is a *protocol-visible* policy, not a
free optimisation.  The policy here is the classic synchronised-window
schedule (S-MAC style): every node is awake during the first
``awake_fraction`` of each ``period_s`` window and asleep for the rest,
with all nodes sharing the same phase.

This is the schedule the frugal protocol can exploit and the flooding
baselines cannot: frugal traffic is *reactive* (id exchanges and event
back-offs are triggered by receptions, which can only happen inside an
awake window, so whole exchanges complete within the window — especially
when the period is aligned to the heartbeat period), while a flooder
keeps queueing frames on its own fixed timer and has them batch-released
at window start, colliding with every other flooder's backlog.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.sim.kernel import Simulator, Timer

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import Node


@dataclass(frozen=True)
class DutyCycleConfig:
    """Synchronised sleep schedule knobs.

    ``awake_fraction=1.0`` (the default) means always-on: no cycler is
    installed at all, so the hot path stays untouched.
    """

    period_s: float = 1.0
    awake_fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.period_s <= 0:
            raise ValueError(f"period_s must be positive: {self.period_s=}")
        if not 0.0 < self.awake_fraction <= 1.0:
            raise ValueError("awake_fraction must be in (0, 1]")

    @property
    def enabled(self) -> bool:
        return self.awake_fraction < 1.0

    @property
    def awake_s(self) -> float:
        return self.period_s * self.awake_fraction

    # -- presets ---------------------------------------------------------------

    @classmethod
    def always_on(cls) -> "DutyCycleConfig":
        return cls(period_s=1.0, awake_fraction=1.0)

    @classmethod
    def heartbeat_aligned(cls, hb_period_s: float,
                          awake_fraction: float = 0.5) -> "DutyCycleConfig":
        """Window period equal to the protocol's heartbeat period, so one
        beacon exchange (and the dissemination it triggers) fits every
        awake window."""
        return cls(period_s=hb_period_s, awake_fraction=awake_fraction)

    # -- schedule arithmetic ----------------------------------------------------

    def is_awake_at(self, time: float) -> bool:
        if not self.enabled:
            return True
        return (time % self.period_s) < self.awake_s

    def next_wake_after(self, time: float) -> float:
        """The next window start at or after ``time`` (identity while
        awake: the radio is already up)."""
        if self.is_awake_at(time):
            return time
        return math.ceil(time / self.period_s) * self.period_s


class DutyCycler:
    """Drives one node's sleep/wake schedule on the kernel clock."""

    def __init__(self, sim: Simulator, node: "Node",
                 config: DutyCycleConfig):
        if not config.enabled:
            raise ValueError("DutyCycler requires awake_fraction < 1")
        self.sim = sim
        self.node = node
        self.config = config
        self._stopped = False
        self._timer: Optional[Timer] = None
        # Phase-align to the global schedule regardless of start time.
        self._arm()

    def _arm(self) -> None:
        now = self.sim.now
        period = self.config.period_s
        offset = now % period
        if offset < self.config.awake_s:
            # Inside an awake window: make sure the node is up, then
            # sleep at the window's end.
            self.node.wake()
            delay = self.config.awake_s - offset
        else:
            self.node.sleep()
            delay = period - offset
        self._timer = self.sim.schedule(delay, self._flip)

    def _flip(self) -> None:
        # Keep re-arming even while the node is crashed: sleep()/wake()
        # no-op on a dead node, and a recovered one rejoins the global
        # schedule at the next window edge.
        if self._stopped:
            return
        self._arm()

    def stop(self) -> None:
        self._stopped = True
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
