"""Fault & churn benchmarks: delivery ratio and overhead vs churn rate.

``test_churn_resilience`` regenerates the churn-resilience sweep at the
selected scale (`paper` scale gives the paper-density 150-process grid):
frugal vs the flooding baselines across leave rates, with availability,
churn-aware reliability and recovery-latency columns.
``test_ablation_outage`` runs the regional-outage ablation.  The
micro-bench times the fault injector's bookkeeping on a heavily churned
world — the per-transition overhead the subsystem adds to a run.
"""

from __future__ import annotations

from common import publish, scale
from repro.faults import ChurnConfig, FaultConfig
from repro.harness.experiments import ablation_outage, churn_resilience
from repro.harness.scenario import (FixedPositionsSpec, ScenarioConfig,
                                    run_scenario)


def test_churn_resilience(benchmark):
    result = benchmark.pedantic(churn_resilience, args=(scale(),),
                                rounds=1, iterations=1)
    publish(result)
    for row in result.rows:
        # Churn-aware denominators only ever *remove* subscribers that
        # could not possibly have been served, so the churn-aware view
        # is never below the plain one.
        assert row["churn_reliability"] >= row["reliability"] - 1e-12
    churned = [r for r in result.rows if r["churn_per_min"] > 0]
    baseline = [r for r in result.rows if r["churn_per_min"] == 0]
    assert all(r["availability"] < 1.0 for r in churned)
    assert all(r["availability"] == 1.0 for r in baseline)
    # The frugality headline survives churn: frugal spends a fraction of
    # the flooders' bytes at every churn rate.
    for rate in sorted({r["churn_per_min"] for r in result.rows}):
        by_proto = {r["protocol"]: r for r in result.rows
                    if r["churn_per_min"] == rate}
        assert by_proto["frugal"]["bandwidth_bytes"] < \
            by_proto["simple-flooding"]["bandwidth_bytes"]


def test_ablation_outage(benchmark):
    result = benchmark.pedantic(ablation_outage, args=(scale(),),
                                rounds=1, iterations=1)
    publish(result)
    outaged = [r for r in result.rows if r["outage"] != "none"]
    assert all(r["availability"] < 1.0 for r in outaged)


def test_injector_transition_hot_path(benchmark):
    """A clockwork-churned 32-node line: every node flaps every 4 s for
    120 s — ~960 availability transitions of injector bookkeeping plus
    the protocol's re-sync traffic they trigger."""

    def churned_run() -> float:
        config = ScenarioConfig(
            n_processes=32,
            mobility=FixedPositionsSpec(
                positions=tuple((i * 40.0, 0.0) for i in range(32))),
            duration=120.0, warmup=0.0, seed=5,
            faults=FaultConfig(churn=ChurnConfig(
                mean_session_s=3.0, mean_rest_s=1.0,
                distribution="fixed")))
        result = run_scenario(config)
        return result.availability()

    availability = benchmark(churned_run)
    assert 0.0 < availability < 1.0
