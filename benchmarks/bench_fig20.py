"""Fig. 20 — parasite events received per process vs (#events x interest).

Paper anchors: the frugal protocol induces 20-50x fewer parasite events
than the shown flooding variants (and up to 800x fewer than simple
flooding); parasites peak around 60 % interest — enough traffic to leak,
enough non-subscribers to receive it — and fall as interest approaches
100 %.
"""

from __future__ import annotations

from common import publish, shared_frugality_sweep, view
from repro.harness.experiments import FIG20_PROTOCOLS


def test_fig20(benchmark):
    sweep = benchmark.pedantic(
        shared_frugality_sweep, args=(FIG20_PROTOCOLS,),
        rounds=1, iterations=1)
    result = view(sweep, "fig20",
                  "Parasite events received per process (random waypoint, "
                  "10 m/s)", "parasites")
    publish(result)
    events = max(result.column("events"))
    interest = sorted(result.column("interest"))[1]   # a middle fraction
    frugal = result.filter(protocol="frugal", events=events,
                           interest=interest)[0]
    flood = result.filter(protocol="interest-flooding", events=events,
                          interest=interest)[0]
    assert frugal["parasites"] * 5 < flood["parasites"], \
        "paper reports a 20-50x parasite reduction"
