"""bench_scale — the frame engines at large populations.

Sweeps N ∈ {100, 300, 500, 1000} random-waypoint processes at the
paper's density (6 processes/km², 442 m radio range) and times the same
scenario on the three rungs of the engine ladder:

* **vec** — the default stack: spatial grid + numpy batch engine +
  coalesced timer wheel;
* **grid** — ``with_scalar_engine()``: spatial grid, scalar per-candidate
  resolution, one kernel timer per periodic task (the PR-3 baseline);
* **flat** — ``with_flat_medium()``: the naive O(N) full scan.

and asserts

* **exact equality**: per-seed summaries from all three engines are
  equal with ``==`` on floats — on this sweep *and* (in
  ``test_equality_on_figure_families``) on representatives of the
  fig11/fig14/fig17/energy/faults scenario families (the flat leg of
  the sweep equality check is capped at N ≤ 300; O(N²) makes it the
  whole bill);
* **speedup**: vec must beat flat by ≥ 10× in µs/frame at N = 1000
  (measures ~13× here), the grid alone must be worth ≥ 3× at N = 500,
  and vec must beat the scalar grid engine wherever N ≥ 300 — in smoke
  runs (``REPRO_BENCH_SCALE_MAX_N``) the vec-vs-scalar > 1 assertion is
  applied at the largest measured N instead.

Every full sweep appends a rev-keyed entry to
``benchmarks/results/bench_scale.json`` via ``publish_bench_json`` (the
BENCH trajectory convention; ``benchmarks/check_trajectory.py`` fails CI
loudly when the append is skipped).

Scale knobs: ``REPRO_SCALE=paper`` lengthens the measurement window;
``REPRO_BENCH_SCALE_MAX_N`` caps the sweep (e.g. 300 in smoke CI).
"""

from __future__ import annotations

import math
import os
import time
from typing import Dict, List

from common import publish_bench_json, publish_text, scale
from repro.harness.experiments import (city_scenario, energy_scenario,
                                       rwp_scenario)
from repro.harness.scenario import (Publication, RandomWaypointSpec,
                                    ScenarioConfig, run_scenario)
from repro.net import RadioConfig

#: Paper density: 150 processes over 25 km².
DENSITY_PER_KM2 = 6.0

POPULATIONS = [100, 300, 500, 1000]

#: Above this N the flat medium is timed but no longer also re-run for
#: the (redundant) equality assertion — O(N²) makes it the whole bill.
EQUALITY_MAX_N = 300


def population_scenario(n: int, duration: float, seed: int = 0
                        ) -> ScenarioConfig:
    """An N-process random-waypoint trial at constant paper density."""
    side = math.sqrt(n / DENSITY_PER_KM2) * 1000.0
    return ScenarioConfig(
        n_processes=n,
        mobility=RandomWaypointSpec(width=side, height=side,
                                    speed_min=10.0, speed_max=10.0),
        duration=duration, warmup=10.0, seed=seed,
        radio=RadioConfig.paper_random_waypoint(),
        subscriber_fraction=0.8,
        publications=(Publication(at=2.0, validity=duration - 4.0),))


def _timed(config: ScenarioConfig) -> Dict[str, object]:
    started = time.perf_counter()
    result = run_scenario(config)
    wallclock = time.perf_counter() - started
    frames = result.collector.medium.frames_sent
    return {"wallclock": wallclock,
            "frames": frames,
            "us_per_frame": 1e6 * wallclock / max(1, frames),
            "summary": result.summary()}


def test_scaling_sweep(benchmark):
    s = scale()
    duration = 60.0 if s.name == "paper" else 25.0
    max_n = int(os.environ.get("REPRO_BENCH_SCALE_MAX_N", POPULATIONS[-1]))
    populations = [n for n in POPULATIONS if n <= max_n]

    rows: List[Dict[str, object]] = []

    def sweep():
        rows.clear()
        for n in populations:
            cfg = population_scenario(n, duration)
            vec = _timed(cfg)
            grid = _timed(cfg.with_scalar_engine())
            flat = _timed(cfg.with_flat_medium())
            if n <= EQUALITY_MAX_N:
                assert vec["summary"] == grid["summary"], \
                    f"vec and grid summaries diverged at N={n}"
                assert vec["summary"] == flat["summary"], \
                    f"vec and flat summaries diverged at N={n}"
            rows.append({
                "n": n, "frames": vec["frames"],
                "vec_s": vec["wallclock"], "grid_s": grid["wallclock"],
                "flat_s": flat["wallclock"],
                "vec_us_per_frame": vec["us_per_frame"],
                "grid_us_per_frame": grid["us_per_frame"],
                "flat_us_per_frame": flat["us_per_frame"],
                "speedup_vec_vs_flat":
                    flat["wallclock"] / vec["wallclock"],
                "speedup_vec_vs_grid":
                    grid["wallclock"] / vec["wallclock"],
                "speedup_grid_vs_flat":
                    flat["wallclock"] / grid["wallclock"]})
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [f"bench_scale — vec vs grid vs flat engines, "
             f"{duration:.0f}s window, density {DENSITY_PER_KM2:.0f}/km²",
             f"{'N':>6} {'vec [s]':>9} {'grid [s]':>9} {'flat [s]':>9} "
             f"{'vec µs/f':>9} {'v/flat':>7} {'v/grid':>7}"]
    for row in rows:
        lines.append(
            f"{row['n']:>6} {row['vec_s']:>9.2f} {row['grid_s']:>9.2f} "
            f"{row['flat_s']:>9.2f} {row['vec_us_per_frame']:>9.1f} "
            f"{row['speedup_vec_vs_flat']:>6.1f}x "
            f"{row['speedup_vec_vs_grid']:>6.1f}x")
    publish_text("\n".join(lines))
    publish_bench_json("bench_scale", rows, meta={
        "scale": s.name, "duration_s": duration,
        "density_per_km2": DENSITY_PER_KM2,
        "populations": populations})

    by_n = {row["n"]: row for row in rows}
    if 1000 in by_n:
        assert by_n[1000]["speedup_vec_vs_flat"] >= 10.0, \
            f"vectorized engine must be ≥10x over the flat scan at " \
            f"N=1000, got {by_n[1000]['speedup_vec_vs_flat']:.1f}x"
    if 500 in by_n:
        assert by_n[500]["speedup_grid_vs_flat"] >= 3.0, \
            f"spatial index must be ≥3x at N=500, got " \
            f"{by_n[500]['speedup_grid_vs_flat']:.1f}x"
    for row in rows:
        if row["n"] >= 300:
            assert row["speedup_vec_vs_grid"] > 1.0, \
                f"vectorized engine slower than scalar grid at " \
                f"N={row['n']}: {row['speedup_vec_vs_grid']:.2f}x"
    # Smoke runs cap the sweep below the N≥300 rows; still require the
    # vectorized engine to win at the largest N actually measured.
    assert rows[-1]["speedup_vec_vs_grid"] > 1.0, \
        f"vectorized engine slower than scalar grid at " \
        f"N={rows[-1]['n']}: {rows[-1]['speedup_vec_vs_grid']:.2f}x"


def test_equality_on_figure_families(benchmark):
    """vec == grid == flat, exactly, on all five scenario families."""
    s = scale()
    families = {
        "fig11": rwp_scenario(s, 10.0, 10.0, validity=60.0, interest=0.8),
        "fig14": city_scenario(s, validity=100.0, interest=0.6),
        "fig17": rwp_scenario(s, 10.0, 10.0, validity=60.0, interest=0.8,
                              protocol="simple-flooding"),
        "energy": energy_scenario(s, "neighbor-flooding", battery_j=28.0,
                                  duration=60.0),
        "faults": churn_faults_scenario(s),
    }
    seeds = s.seed_list()[:2]

    def compare_all():
        mismatches = []
        for name, family_cfg in sorted(families.items()):
            for seed in seeds:
                cfg = family_cfg.with_changes(seed=seed)
                want = run_scenario(cfg).summary()
                if want != run_scenario(cfg.with_scalar_engine()).summary():
                    mismatches.append((name, seed, "grid"))
                if want != run_scenario(cfg.with_flat_medium()).summary():
                    mismatches.append((name, seed, "flat"))
        return mismatches

    mismatches = benchmark.pedantic(compare_all, rounds=1, iterations=1)
    assert mismatches == []
    publish_text("bench_scale equality: vec == grid == flat summaries on "
                 f"{sorted(families)} x seeds {seeds}")


def churn_faults_scenario(s) -> ScenarioConfig:
    """The rwp-churn-faults family: crash plan + churn + outage + loss."""
    from repro.faults import (ChurnConfig, FaultConfig, FaultEvent,
                              FaultPlan, LinkLossConfig, RegionalOutage)
    base = rwp_scenario(s, 10.0, 10.0, validity=60.0, interest=0.8)
    return base.with_changes(faults=FaultConfig(
        plan=FaultPlan((FaultEvent(at=5.0, kind="crash", fraction=0.25,
                                   duration=10.0),)),
        churn=ChurnConfig(mean_session_s=20.0, mean_rest_s=6.0,
                          fraction=0.5),
        outages=(RegionalOutage(at=8.0, duration=6.0,
                                center=(450.0, 450.0), radius_m=300.0),),
        loss=LinkLossConfig(link_loss_min=0.05, link_loss_max=0.15,
                            burst_rate_per_s=0.05,
                            burst_mean_duration_s=2.0,
                            burst_loss_probability=0.8)))
