"""bench_scale — the spatially-indexed medium at large populations.

Sweeps N ∈ {100, 300, 500, 1000} random-waypoint processes at the
paper's density (6 processes/km², 442 m radio range) and times the same
scenario on the grid-backed medium vs the flat O(N) full scan, asserting

* **exact equality**: per-seed summaries from the two media are equal
  with ``==`` on floats — on this sweep *and* on representatives of the
  fig11 (random waypoint), fig14 (city section) and energy scenario
  families (the flat leg of the equality checks is capped at N ≤ 300 to
  keep the suite's wall-clock sane; the timing sweep covers the rest);
* **speedup**: the grid resolves receivers/collisions by range query
  instead of scanning every node per frame, which must be worth ≥ 3× at
  N = 500 (it measures ~8× here; the gap widens with N).

Scale knobs: ``REPRO_SCALE=paper`` lengthens the measurement window;
``REPRO_BENCH_SCALE_MAX_N`` caps the sweep (e.g. 300 in smoke CI).
"""

from __future__ import annotations

import math
import os
import time
from typing import Dict, List

from common import publish_text, scale
from repro.harness.experiments import (city_scenario, energy_scenario,
                                       rwp_scenario)
from repro.harness.scenario import (Publication, RandomWaypointSpec,
                                    ScenarioConfig, run_scenario)
from repro.net import RadioConfig

#: Paper density: 150 processes over 25 km².
DENSITY_PER_KM2 = 6.0

POPULATIONS = [100, 300, 500, 1000]

#: Above this N the flat medium is timed but no longer also re-run for
#: the (redundant) equality assertion — O(N²) makes it the whole bill.
EQUALITY_MAX_N = 300


def population_scenario(n: int, duration: float, seed: int = 0
                        ) -> ScenarioConfig:
    """An N-process random-waypoint trial at constant paper density."""
    side = math.sqrt(n / DENSITY_PER_KM2) * 1000.0
    return ScenarioConfig(
        n_processes=n,
        mobility=RandomWaypointSpec(width=side, height=side,
                                    speed_min=10.0, speed_max=10.0),
        duration=duration, warmup=10.0, seed=seed,
        radio=RadioConfig.paper_random_waypoint(),
        subscriber_fraction=0.8,
        publications=(Publication(at=2.0, validity=duration - 4.0),))


def _timed(config: ScenarioConfig) -> Dict[str, object]:
    started = time.perf_counter()
    result = run_scenario(config)
    return {"wallclock": time.perf_counter() - started,
            "summary": result.summary()}


def test_scaling_sweep(benchmark):
    s = scale()
    duration = 60.0 if s.name == "paper" else 25.0
    max_n = int(os.environ.get("REPRO_BENCH_SCALE_MAX_N", POPULATIONS[-1]))
    populations = [n for n in POPULATIONS if n <= max_n]

    rows: List[Dict[str, object]] = []

    def sweep():
        rows.clear()
        for n in populations:
            cfg = population_scenario(n, duration)
            grid = _timed(cfg)
            flat = _timed(cfg.with_flat_medium())
            if n <= EQUALITY_MAX_N:
                assert grid["summary"] == flat["summary"], \
                    f"grid and flat medium summaries diverged at N={n}"
            rows.append({"n": n, "grid_s": grid["wallclock"],
                         "flat_s": flat["wallclock"],
                         "speedup": flat["wallclock"] / grid["wallclock"]})
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [f"bench_scale — grid vs flat medium, {duration:.0f}s window, "
             f"density {DENSITY_PER_KM2:.0f}/km²",
             f"{'N':>6} {'grid [s]':>10} {'flat [s]':>10} {'speedup':>9}"]
    for row in rows:
        lines.append(f"{row['n']:>6} {row['grid_s']:>10.2f} "
                     f"{row['flat_s']:>10.2f} {row['speedup']:>8.1f}x")
    publish_text("\n".join(lines))

    by_n = {row["n"]: row for row in rows}
    if 500 in by_n:
        assert by_n[500]["speedup"] >= 3.0, \
            f"spatial index must be ≥3x at N=500, got " \
            f"{by_n[500]['speedup']:.1f}x"
    for row in rows:
        if row["n"] >= 300:
            assert row["speedup"] > 1.0


def test_equality_on_figure_families(benchmark):
    """Grid == flat, exactly, on the fig11/fig14/energy families."""
    s = scale()
    families = {
        "fig11": rwp_scenario(s, 10.0, 10.0, validity=60.0, interest=0.8),
        "fig14": city_scenario(s, validity=100.0, interest=0.6),
        "energy": energy_scenario(s, "neighbor-flooding", battery_j=28.0,
                                  duration=60.0),
    }
    seeds = s.seed_list()[:2]

    def compare_all():
        mismatches = []
        for name, family_cfg in sorted(families.items()):
            for seed in seeds:
                cfg = family_cfg.with_changes(seed=seed)
                if run_scenario(cfg).summary() != \
                        run_scenario(cfg.with_flat_medium()).summary():
                    mismatches.append((name, seed))
        return mismatches

    mismatches = benchmark.pedantic(compare_all, rounds=1, iterations=1)
    assert mismatches == []
    publish_text("bench_scale equality: grid == flat summaries on "
                 f"{sorted(families)} x seeds {seeds}")
