"""bench_study — the declarative layer's cost model, priced and asserted.

Two claims the study subsystem makes about itself, measured:

* **expansion is declaration-cheap**: expanding the ``study-frontier``
  spec (the largest registered grid) into its full cell cross product
  is pure config construction — no simulation — and must stay under a
  millisecond per cell, so declaring big grids never costs more than
  writing the nested loops did;
* **warm-cache re-runs are free**: re-running a study against a warm
  result cache must execute **exactly 0 scenarios** (every cell
  answered from disk) — the property that makes studies cheap to
  iterate on.  The cold run is timed alongside so the trajectory
  records what the cache is saving.

Every run appends a rev-keyed entry to
``benchmarks/results/bench_study.json`` via ``publish_bench_json`` (the
BENCH trajectory convention; ``benchmarks/check_trajectory.py`` fails
CI loudly when the append is skipped).  ``REPRO_SCALE`` sizes the
cold/warm study run exactly as it does everywhere else.
"""

from __future__ import annotations

import os
import time

from common import publish_bench_json, scale
from repro.harness import parallel
from repro.harness.cache import ResultCache
from repro.study import expand, run_study
from repro.study.studies import build_study

#: Expansion repetitions per timing sample (expansion is microseconds
#: per cell, so one expand is too short to time honestly).
EXPAND_REPEATS = int(os.environ.get("REPRO_BENCH_STUDY_REPEATS", "20"))
#: Ceiling asserted on spec expansion, seconds per cell.
EXPAND_CEILING_S_PER_CELL = 1e-3
#: The study timed cold-vs-warm (small on purpose: the point is the
#: cache behaviour, not the simulation cost).
RUN_STUDY_ID = "abl-ids"


def test_study_expansion_and_cache(tmp_path):
    """Time spec expansion, then a cold vs warm cached study run."""
    s = scale()
    frontier = build_study("study-frontier", s)
    started = time.perf_counter()
    for _ in range(EXPAND_REPEATS):
        cells = expand(frontier)
    per_expand = (time.perf_counter() - started) / EXPAND_REPEATS
    per_cell = per_expand / len(cells)
    assert per_cell < EXPAND_CEILING_S_PER_CELL, (
        f"spec expansion costs {per_cell:.2e} s/cell "
        f"(ceiling {EXPAND_CEILING_S_PER_CELL:.0e})")

    spec = build_study(RUN_STUDY_ID, s)
    runner = parallel.ParallelRunner(
        jobs=parallel.resolve_jobs(),
        cache=ResultCache(tmp_path / "cache"))
    started = time.perf_counter()
    cold = run_study(spec, runner)
    cold_s = time.perf_counter() - started
    executed_cold = runner.stats.executed

    runner.stats.reset()
    started = time.perf_counter()
    warm = run_study(spec, runner)
    warm_s = time.perf_counter() - started
    assert warm.experiment.rows == cold.experiment.rows
    assert runner.stats.executed == 0, (
        f"warm-cache study re-run executed {runner.stats.executed} "
        f"scenarios; every cell must come from the cache")

    publish_bench_json("bench_study", rows=[
        {"phase": "expand", "study": "study-frontier",
         "cells": len(cells), "s_per_expand": round(per_expand, 6),
         "s_per_cell": round(per_cell, 9)},
        {"phase": "cold", "study": RUN_STUDY_ID,
         "scenarios_executed": executed_cold,
         "wallclock_s": round(cold_s, 4)},
        {"phase": "warm", "study": RUN_STUDY_ID,
         "scenarios_executed": 0,
         "cache_hits": runner.stats.cache_hits,
         "wallclock_s": round(warm_s, 4)},
    ], meta={"scale": s.name, "jobs": runner.jobs,
             "expand_repeats": EXPAND_REPEATS})
