"""Fig. 16 — city-section reliability vs event validity period.

Paper anchors (heartbeat bound 1 s, 100 % subscribers): 25 s -> 11 %,
50 s -> 27 %, 75 s -> 44 %, 100 s -> 52 %, 125 s -> 69 %, 150 s -> 77 %.
Validity is the dominant factor: processes meet at social hot-spots, so
events must live long enough to reach the next encounter.
"""

from __future__ import annotations

from common import publish, scale
from repro.harness.experiments import fig16

PAPER_ROWS = {25.0: 0.11, 50.0: 0.27, 75.0: 0.44, 100.0: 0.52,
              125.0: 0.69, 150.0: 0.77}


def test_fig16(benchmark):
    result = benchmark.pedantic(fig16, args=(scale(),),
                                rounds=1, iterations=1)
    for row in result.rows:
        row["paper"] = PAPER_ROWS.get(row["validity"], float("nan"))
    publish(result)
    by_validity = {r["validity"]: r["reliability"] for r in result.rows}
    assert by_validity[max(by_validity)] >= by_validity[min(by_validity)], \
        "longer validity must not reduce reliability"
