"""Micro-benchmarks of the substrate: kernel, spatial index, topics,
event table and medium.  These are real pytest-benchmark timings (many
rounds), unlike the figure benches which time one experiment sweep."""

from __future__ import annotations

import random

from repro.core.events import Event, EventId
from repro.core.tables import EventTable
from repro.core.topics import Topic, subscriptions_related
from repro.net.medium import WirelessMedium
from repro.net.messages import Heartbeat
from repro.net.radio import RadioConfig
from repro.sim.kernel import Simulator
from repro.sim.space import SpatialGrid, Vec2


def test_kernel_schedule_run_throughput(benchmark):
    def run_1000_events():
        sim = Simulator()
        for i in range(1000):
            sim.schedule(float(i % 100), lambda: None)
        sim.run_until_idle()
        return sim.events_processed

    assert benchmark(run_1000_events) == 1000


def test_spatial_grid_query(benchmark):
    rng = random.Random(1)
    grid = SpatialGrid(cell_size=442.0)
    for i in range(150):
        grid.insert(i, Vec2(rng.uniform(0, 5000), rng.uniform(0, 5000)))
    center = Vec2(2500.0, 2500.0)

    found = benchmark(grid.query_radius, center, 442.0)
    assert isinstance(found, list)


def test_topic_matching(benchmark):
    mine = [Topic(".epfl.conferences.middleware"), Topic(".epfl.parking")]
    theirs = [Topic(".epfl.conferences"), Topic(".epfl.cafeteria.menu"),
              Topic(".city.transport")]

    assert benchmark(subscriptions_related, mine, theirs) is True


def test_event_table_store_evict_cycle(benchmark):
    def churn():
        table = EventTable(capacity=64)
        for i in range(256):
            e = Event(EventId(1, i), Topic(".t"),
                      validity=10.0 + (i % 50), published_at=float(i))
            row = table.store(e, now=float(i))
            row.forward_count = i % 7
        return len(table)

    assert benchmark(churn) == 64


def test_medium_broadcast_150_nodes(benchmark):
    class Stub:
        def __init__(self, node_id, pos):
            self.id = node_id
            self.pos = pos
            self.alive = True
            self.asleep = False
        @property
        def listening(self):
            return self.alive and not self.asleep
        def position(self):
            return self.pos
        def receive(self, message):
            pass

    def broadcast_round():
        sim = Simulator()
        medium = WirelessMedium(
            sim, RadioConfig.paper_random_waypoint(),
            rng=random.Random(0))
        rng = random.Random(1)
        for i in range(150):
            medium.register(Stub(i, Vec2(rng.uniform(0, 5000),
                                         rng.uniform(0, 5000))))
        hb = Heartbeat(sender=0, subscriptions=frozenset())
        for i in range(0, 150, 10):
            medium.broadcast(i, Heartbeat(sender=i,
                                          subscriptions=frozenset()))
        sim.run_until_idle()
        return medium.frames_sent

    assert benchmark(broadcast_round) == 15
