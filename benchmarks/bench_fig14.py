"""Fig. 14 — city-section reliability vs subscriber fraction.

Paper anchors (validity 150 s, heartbeat bound 1 s): 20 % -> 58.1 %,
40 % -> 59.7 %, 60 % -> 62.5 %, 80 % -> 68.6 %, 100 % -> 76.9 %.  Unlike
the random-waypoint model, even 20 % subscribers reach decent reliability
because constrained streets create meeting hot-spots.
"""

from __future__ import annotations

from common import publish, scale
from repro.harness.experiments import fig14

PAPER_ROWS = {0.2: 0.581, 0.4: 0.597, 0.6: 0.625, 0.8: 0.686, 1.0: 0.769}


def test_fig14(benchmark):
    result = benchmark.pedantic(fig14, args=(scale(),),
                                rounds=1, iterations=1)
    for row in result.rows:
        row["paper"] = PAPER_ROWS.get(row["interest"], float("nan"))
    publish(result)
    by_interest = {r["interest"]: r["reliability"] for r in result.rows}
    assert by_interest[max(by_interest)] >= \
        by_interest[min(by_interest)] - 0.05, \
        "more subscribers should not hurt reliability"
