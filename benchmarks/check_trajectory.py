"""Fail loudly when a bench skipped its perf-trajectory append.

The BENCH trajectory convention (``benchmarks/common.py:
publish_bench_json``) requires every timing benchmark to append a
``{rev, meta, rows}`` entry to ``benchmarks/results/<name>.json``, keyed
by git revision.  The convention is only useful if it cannot silently
rot: CI runs this checker *after* the bench steps, and it exits non-zero
— naming the missing bench — when the current revision has no entry (or
an empty one) in a bench's trajectory file.

Usage::

    python benchmarks/check_trajectory.py bench_protocols bench_scale

``REPRO_GIT_REV`` overrides revision discovery exactly as it does for
the benches themselves, so the checker and the benches always agree on
the key they are talking about.
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"

#: Per-bench row requirements beyond mere existence: ``bench_shard``
#: entries must carry the per-barrier overhead breakdown rows (the
#: drain / merge / ingest / retime split of the barrier tax), so the
#: trajectory can answer *where* a regression came from, not just that
#: one happened.
REQUIRED_ROW_KEYS = {
    "bench_shard": ("drain_s", "merge_s", "ingest_s", "retime_s"),
}


def current_rev() -> str:
    """The short revision the trajectory entry must be keyed by."""
    env = os.environ.get("REPRO_GIT_REV")
    if env:
        return env
    out = subprocess.run(
        ["git", "rev-parse", "--short", "HEAD"],
        cwd=pathlib.Path(__file__).resolve().parent.parent,
        capture_output=True, text=True, timeout=10)
    rev = out.stdout.strip()
    if out.returncode != 0 or not rev:
        sys.exit("check_trajectory: cannot determine the current revision "
                 "(set REPRO_GIT_REV or run inside a git checkout)")
    return rev


def check(name: str, rev: str) -> str | None:
    """One bench's verdict: None when its trajectory has ``rev``."""
    path = RESULTS_DIR / f"{name}.json"
    if not path.exists():
        return f"{name}: {path} does not exist — the bench never appended"
    try:
        doc = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        return f"{name}: {path} is not valid JSON ({exc})"
    trajectory = doc.get("trajectory") if isinstance(doc, dict) else None
    if not isinstance(trajectory, list) or not trajectory:
        return f"{name}: {path} has no trajectory entries"
    entry = next((e for e in trajectory if e.get("rev") == rev), None)
    if entry is None:
        revs = [e.get("rev", "?") for e in trajectory]
        return (f"{name}: no trajectory entry for rev {rev} "
                f"(recorded revs: {revs}) — the bench ran without "
                f"appending, or REPRO_GIT_REV disagreed")
    if not entry.get("rows"):
        return f"{name}: rev {rev} entry has no rows"
    required = REQUIRED_ROW_KEYS.get(name)
    if required and not any(
            all(key in row for key in required)
            for row in entry["rows"] if isinstance(row, dict)):
        return (f"{name}: rev {rev} entry has no row carrying the "
                f"required keys {list(required)} — the per-barrier "
                f"overhead breakdown was not recorded")
    return None


def main(argv: list[str]) -> int:
    """Check every named bench; print verdicts; non-zero on any failure."""
    if not argv:
        sys.exit("usage: check_trajectory.py <bench-name> [...]")
    rev = current_rev()
    failures = [msg for name in argv if (msg := check(name, rev))]
    for msg in failures:
        print(f"TRAJECTORY MISSING — {msg}", file=sys.stderr)
    if not failures:
        print(f"trajectory ok: {', '.join(argv)} all carry rev {rev}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
