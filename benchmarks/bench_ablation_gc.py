"""abl-gc — Equation-1 eviction vs FIFO / random / remaining-validity.

DESIGN.md calls out the eviction policy as a core design choice: under
memory pressure the policy decides which events survive to be
re-disseminated at future encounters.  Equation 1 protects short-validity,
rarely-forwarded events (they still have work to do) at the expense of
long-validity, much-forwarded ones.
"""

from __future__ import annotations

from common import publish, scale
from repro.harness.experiments import ablation_gc


def test_ablation_gc(benchmark):
    result = benchmark.pedantic(ablation_gc, args=(scale(),),
                                rounds=1, iterations=1)
    publish(result)
    assert {r["policy"] for r in result.rows} == {
        "validity-forward", "remaining-validity", "fifo", "random"}
    for row in result.rows:
        assert 0.0 <= row["reliability"] <= 1.0
