"""Fig. 12 — reliability vs (validity x interest) under heterogeneous
speeds U(1, 40) m/s.

Paper anchor: with 60 % interest and 120 s validity every subscriber
receives the event; overall reliability tracks the *average* network
speed, not individual speeds.
"""

from __future__ import annotations

from common import publish, publish_text, scale
from repro.harness.experiments import fig12
from repro.harness.reporting import reliability_grid


def test_fig12(benchmark):
    result = benchmark.pedantic(fig12, args=(scale(),),
                                rounds=1, iterations=1)
    publish(result)
    grid = reliability_grid(result, row_key="interest", col_key="validity")
    publish_text(f"fig12 reliability grid:\n{grid}")
    # Longest validity x highest interest must be the best cell.
    best_cell = max(result.rows, key=lambda r: r["reliability"])
    top = [r for r in result.rows
           if r["validity"] == max(result.column("validity"))
           and r["interest"] == max(result.column("interest"))][0]
    assert top["reliability"] >= best_cell["reliability"] - 0.15
