"""related-work — frugal vs the broadcast-storm schemes of Section 6.

The paper argues (Section 6) that one-shot storm mitigation (probabilistic
/ counter-based rebroadcast) does not fit MANET pub/sub: without
store-and-forward over the validity period, processes outside the
publisher's connected component at publish time never catch up.  This
bench quantifies that: the storm schemes spend less bandwidth but cap out
at whatever the instantaneous component covered.
"""

from __future__ import annotations

from common import publish, scale
from repro.harness.experiments import related_work_comparison


def test_related_work(benchmark):
    result = benchmark.pedantic(related_work_comparison, args=(scale(),),
                                rounds=1, iterations=1)
    publish(result)
    rows = {r["protocol"]: r for r in result.rows}
    # Storm schemes must not beat the frugal protocol on reliability...
    assert rows["frugal"]["reliability"] >= \
        rows["gossip-flooding"]["reliability"] - 0.05
    assert rows["frugal"]["reliability"] >= \
        rows["counter-flooding"]["reliability"] - 0.05
    # ... and the frugal protocol stays far below simple flooding's cost.
    assert rows["frugal"]["bandwidth_bytes"] < \
        rows["simple-flooding"]["bandwidth_bytes"] / 3
