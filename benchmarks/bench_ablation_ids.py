"""abl-ids — exchanging event identifiers first vs pushing events blindly.

Sending 16-byte ids before 400-byte events is the paper's key bandwidth
lever: a neighbour that already holds the events costs one id list instead
of the payloads.  The blind-push variant must pay for it in duplicates
and/or bandwidth.
"""

from __future__ import annotations

from common import publish, scale
from repro.harness.experiments import ablation_ids


def test_ablation_ids(benchmark):
    result = benchmark.pedantic(ablation_ids, args=(scale(),),
                                rounds=1, iterations=1)
    publish(result)
    with_ids = result.filter(id_exchange=True)[0]
    blind = result.filter(id_exchange=False)[0]
    assert with_ids["duplicates"] <= blind["duplicates"] * 1.25, \
        "dropping the id exchange should not reduce duplicates"
