"""abl-adaptive-hb — the speed-adaptive heartbeat (``x / avgSpeed``).

With a loose 5 s upper bound, the adaptive rule shortens the beacon period
as the network speeds up (40 m/s -> 1 s), detecting short encounters a
static 5 s beacon would miss.  The cost is beacon bandwidth — exactly the
trade-off Fig. 13 explores from the other side.
"""

from __future__ import annotations

from common import publish, scale
from repro.harness.experiments import ablation_heartbeat


def test_ablation_heartbeat(benchmark):
    result = benchmark.pedantic(ablation_heartbeat, args=(scale(),),
                                rounds=1, iterations=1)
    publish(result)
    fast = max(result.column("speed"))
    adaptive = result.filter(adaptive=True, speed=fast)[0]
    static = result.filter(adaptive=False, speed=fast)[0]
    assert adaptive["reliability"] >= static["reliability"] - 0.10, \
        "adaptive beacons should help (or at least not hurt) at speed"
