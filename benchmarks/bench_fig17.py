"""Fig. 17 — bandwidth used per process vs (#events x interest).

Paper anchors: the frugal protocol saves 300-450 % of the bandwidth of the
flooding variants at equal reliability; interests-aware flooding only wins
in the corner where total event volume is under ~1.5 kB and interest
<= 20 %.  Figs. 17-19 are three views of one simulation campaign, so the
sweep is computed once and shared (see benchmarks/common.py).
"""

from __future__ import annotations

from common import publish, shared_frugality_sweep, view
from repro.harness.experiments import FIG17_PROTOCOLS


def test_fig17(benchmark):
    sweep = benchmark.pedantic(
        shared_frugality_sweep, args=(FIG17_PROTOCOLS,),
        rounds=1, iterations=1)
    result = view(sweep, "fig17",
                  "Bandwidth used per process (random waypoint, 10 m/s)",
                  "bandwidth_bytes")
    publish(result)
    # Shape: at the largest workload the frugal protocol wins on bandwidth.
    events = max(result.column("events"))
    frugal = result.filter(protocol="frugal", events=events, interest=1.0)
    flood = result.filter(protocol="simple-flooding", events=events,
                          interest=1.0)
    assert frugal[0]["bandwidth_bytes"] < flood[0]["bandwidth_bytes"] / 3, \
        "paper reports a 300-450% bandwidth saving"
