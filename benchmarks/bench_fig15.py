"""Fig. 15 — max-min reliability spread across publishers (city section).

Paper anchors: the spread between the best- and worst-placed original
publisher is large — 40.9 % at 20 % subscribers up to 60.0 % at 100 % —
because the path a publisher drives determines whom it can seed.
"""

from __future__ import annotations

from common import publish, scale
from repro.harness.experiments import fig15

PAPER_ROWS = {0.2: 0.409, 0.4: 0.447, 0.6: 0.479, 0.8: 0.539, 1.0: 0.600}


def test_fig15(benchmark):
    result = benchmark.pedantic(fig15, args=(scale(),),
                                rounds=1, iterations=1)
    for row in result.rows:
        row["paper"] = PAPER_ROWS.get(row["interest"], float("nan"))
    publish(result)
    # Shape: publisher identity must matter (non-trivial spread somewhere).
    assert max(result.column("spread")) > 0.0, \
        "city-section publishers should differ in achieved reliability"
