"""Fig. 18 — events sent per process vs (#events x interest).

Paper anchor: the frugal protocol sends 50-100x fewer event transmissions
than any flooding variant (flooders rebroadcast every second for the whole
validity; the frugal protocol transmits only when a neighbour provably
lacks an event).
"""

from __future__ import annotations

from common import publish, shared_frugality_sweep, view
from repro.harness.experiments import FIG18_PROTOCOLS


def test_fig18(benchmark):
    sweep = benchmark.pedantic(
        shared_frugality_sweep, args=(FIG18_PROTOCOLS,),
        rounds=1, iterations=1)
    result = view(sweep, "fig18",
                  "Events sent per process (random waypoint, 10 m/s)",
                  "events_sent")
    publish(result)
    events = max(result.column("events"))
    frugal = result.filter(protocol="frugal", events=events,
                           interest=1.0)[0]
    flood = result.filter(protocol="simple-flooding", events=events,
                          interest=1.0)[0]
    assert frugal["events_sent"] * 10 < flood["events_sent"], \
        "paper reports 50-100x fewer event transmissions"
