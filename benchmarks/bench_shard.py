"""bench_shard — the sharded engine: K-invariance priced in wall-clock.

Runs one large city-scale world (``city_scale_scenario``: a street grid
at the paper's city density, N = 2000 by default) on the classic
single-world engine and on the sharded engine at K ∈ {1, 2, 4}, and
asserts

* **exact K-invariance**: the per-seed summaries at K = 1, 2 and 4 are
  equal with ``==`` on floats — the tentpole guarantee of
  ``repro.sim.shard`` (the classic engine is timed as a reference but
  not compared: sharding replaces the medium's shared RNG streams with
  per-node streams, so classic and sharded are two distinct, each
  internally deterministic, universes);
* **speedup**: K = 4 must beat K = 1 by ≥ 2.5× in wall-clock — asserted
  only when the host exposes ≥ 4 cores *and* the full N was measured.
  On smaller hosts (this repo's CI runner included) the measured
  numbers are still recorded honestly; a single core cannot pay for
  process parallelism, and pretending otherwise would poison the
  trajectory.

Every run appends a rev-keyed entry to
``benchmarks/results/bench_shard.json`` via ``publish_bench_json`` (the
BENCH trajectory convention; ``benchmarks/check_trajectory.py`` fails CI
loudly when the append is skipped).  ``meta`` records the visible core
count and the shard backend so entries compare like against like.

Scale knobs: ``REPRO_BENCH_SHARD_MAX_N`` caps the population (e.g. 120
in smoke CI); ``REPRO_SHARD_BACKEND`` picks the worker backend exactly
as it does for the engine itself (default ``auto``).
"""

from __future__ import annotations

import os
import time
from typing import Dict, List

from common import publish_bench_json, publish_text, scale
from repro.harness.experiments import city_scale_scenario
from repro.harness.scenario import ScenarioConfig, run_scenario

#: The tentpole population and the shard counts it is priced at.
DEFAULT_N = 2000
SHARD_COUNTS = [1, 2, 4]
#: K=4-vs-K=1 wall-clock floor, asserted on hosts with >= 4 cores.
SPEEDUP_FLOOR = 2.5


def _visible_cores() -> int:
    """Cores this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def _timed(config: ScenarioConfig) -> Dict[str, object]:
    started = time.perf_counter()
    result = run_scenario(config)
    return {"wallclock": time.perf_counter() - started,
            "summary": result.summary()}


def test_shard_scaling(benchmark):
    s = scale()
    n = min(DEFAULT_N, int(os.environ.get("REPRO_BENCH_SHARD_MAX_N",
                                          DEFAULT_N)))
    base = city_scale_scenario(s, n)
    cores = _visible_cores()
    backend = os.environ.get("REPRO_SHARD_BACKEND", "auto")

    rows: List[Dict[str, object]] = []
    summaries: Dict[int, Dict[str, float]] = {}

    def sweep():
        rows.clear()
        summaries.clear()
        classic = _timed(base)
        rows.append({"n": n, "shards": 0, "engine": "classic",
                     "wallclock_s": classic["wallclock"]})
        baseline = None
        for k in SHARD_COUNTS:
            timed = _timed(base.with_changes(shards=k))
            summaries[k] = timed["summary"]
            if baseline is None:
                baseline = timed["wallclock"]
            rows.append({
                "n": n, "shards": k, "engine": "sharded",
                "wallclock_s": timed["wallclock"],
                "speedup_vs_1shard": baseline / timed["wallclock"]})
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    # The tentpole guarantee, asserted unconditionally: summaries are
    # bit-identical for every shard count.
    for k in SHARD_COUNTS[1:]:
        assert summaries[k] == summaries[SHARD_COUNTS[0]], \
            f"sharded summaries diverged: K={k} vs K={SHARD_COUNTS[0]}"

    lines = [f"bench_shard — city-scale world, N={n}, "
             f"{cores} visible core(s), backend={backend}",
             f"{'shards':>7} {'engine':>8} {'wall [s]':>9} {'vs K=1':>7}"]
    for row in rows:
        speed = row.get("speedup_vs_1shard")
        lines.append(
            f"{row['shards']:>7} {row['engine']:>8} "
            f"{row['wallclock_s']:>9.2f} "
            + (f"{speed:>6.2f}x" if speed is not None else f"{'—':>7}"))
    publish_text("\n".join(lines))
    publish_bench_json("bench_shard", rows, meta={
        "scale": s.name, "n": n, "shard_counts": SHARD_COUNTS,
        "cpu_count": cores, "backend": backend,
        "speedup_floor": SPEEDUP_FLOOR,
        "speedup_asserted": cores >= 4 and n == DEFAULT_N})

    # Process parallelism cannot beat 2.5x without at least 4 cores to
    # spread over; the invariance assertion above ran regardless.
    if cores >= 4 and n == DEFAULT_N:
        by_k = {row["shards"]: row for row in rows if row["shards"]}
        got = by_k[4]["speedup_vs_1shard"]
        assert got >= SPEEDUP_FLOOR, \
            f"4 shards must be ≥{SPEEDUP_FLOOR}x over 1 shard at " \
            f"N={DEFAULT_N} on a {cores}-core host, got {got:.2f}x"
