"""bench_shard — the sharded engine: invariance priced in wall-clock.

Runs one large city-scale world (``city_scale_scenario``: a street grid
at the paper's city density, N = 2000 by default) on the classic
single-world engine and on the sharded engine across shard counts, tile
shapes and epoch lengths, and asserts

* **exact plan invariance**: the summaries at K ∈ {1, 2, 4} stripes and
  on a 2x2 tile grid are equal with ``==`` on floats — the tentpole
  guarantee of ``repro.sim.shard`` (the classic engine is timed as a
  reference but not compared: sharding replaces the medium's shared RNG
  streams with per-node streams, so classic and sharded are two
  distinct, each internally deterministic, universes);
* **exact epoch invariance**: sweeping the barrier spacing (0.25 s and
  the 1 s soundness bound) does not move a single bit — the retimed
  exchange makes barrier placement unobservable;
* **barrier tax**: K = 1 must land within 5 % of the classic engine's
  wall-clock — the whole point of audibility routing, sorted-merge log
  ingestion and epoch-exact deliveries is that the sharded machinery is
  nearly free before parallelism starts paying; asserted only at the
  full N = 2000 (small worlds are noise-dominated);
* **speedup**: K = 4 must beat K = 1 by ≥ 2.5× in wall-clock — asserted
  only when the host exposes ≥ 4 usable cores *and* the full N was
  measured.  On smaller hosts (this repo's CI runner included) the
  measured numbers are still recorded honestly; a single core cannot
  pay for process parallelism, and pretending otherwise would poison
  the trajectory.

Every run appends a rev-keyed entry to
``benchmarks/results/bench_shard.json`` via ``publish_bench_json`` (the
BENCH trajectory convention; ``benchmarks/check_trajectory.py`` fails CI
loudly when the append is skipped — and, for this bench, when the entry
lacks the per-barrier overhead breakdown rows).  Each timing row stamps
the tile-plan label and the resolved epoch; each sharded run also
contributes a ``barrier_overhead`` row splitting the barrier tax into
its drain / merge / ingest / retime phases.  ``meta`` records the
*usable* core count (affinity-aware via ``available_cpu_count``, so a
container quota is reported honestly) and the shard backend so entries
compare like against like.

Scale knobs: ``REPRO_BENCH_SHARD_MAX_N`` caps the population (e.g. 120
in smoke CI); ``REPRO_SHARD_BACKEND`` picks the worker backend exactly
as it does for the engine itself (default ``auto``).
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional

from common import publish_bench_json, publish_text, scale
from repro.harness.experiments import city_scale_scenario
from repro.harness.parallel import available_cpu_count
from repro.harness.scenario import ScenarioConfig, run_scenario
from repro.sim.shard import ShardConfig

#: The tentpole population and the plans it is priced at: the stripe
#: ladder plus one genuinely 2-D tile grid.
DEFAULT_N = 2000
PLANS = [ShardConfig(shards=1), ShardConfig(shards=2),
         ShardConfig(shards=4), ShardConfig(shards=4, rows=2)]
#: Epoch sweep at K=2: the historical 0.25 s spacing and the 1 s
#: soundness bound — results must be bit-identical across both.
EPOCH_SWEEP = [0.25, 1.0]
#: K=4-vs-K=1 wall-clock floor, asserted on hosts with >= 4 cores.
SPEEDUP_FLOOR = 2.5
#: K=1-vs-classic wall-clock ceiling (the barrier tax), asserted at
#: the full N where the signal dominates the noise.
OVERHEAD_CEILING = 1.05


def _timed(config: ScenarioConfig) -> Dict[str, object]:
    started = time.perf_counter()
    result = run_scenario(config)
    return {"wallclock": time.perf_counter() - started,
            "summary": result.summary(),
            "barrier_stats": result.barrier_stats}


def _breakdown_row(n: int, plan: str,
                   stats: Dict[str, float]) -> Dict[str, object]:
    """One ``barrier_overhead`` trajectory row: where the barrier tax
    goes, in total seconds and per-barrier milliseconds."""
    barriers = max(stats["barriers"], 1.0)
    phases = {phase: stats[phase]
              for phase in ("drain_s", "merge_s", "ingest_s", "retime_s")}
    return {"n": n, "row_type": "barrier_overhead", "plan": plan,
            "epoch_s": stats["epoch_s"], "barriers": stats["barriers"],
            "frames_exchanged": stats["frames_exchanged"], **phases,
            "per_barrier_overhead_ms":
                sum(phases.values()) / barriers * 1e3}


def test_shard_scaling(benchmark):
    s = scale()
    n = min(DEFAULT_N, int(os.environ.get("REPRO_BENCH_SHARD_MAX_N",
                                          DEFAULT_N)))
    base = city_scale_scenario(s, n)
    cores = available_cpu_count()
    backend = os.environ.get("REPRO_SHARD_BACKEND", "auto")

    rows: List[Dict[str, object]] = []
    summaries: Dict[str, Dict[str, float]] = {}

    def sharded_run(tag: str, shards: ShardConfig,
                    baseline: Optional[float]) -> float:
        timed = _timed(base.with_changes(shards=shards))
        summaries[tag] = timed["summary"]
        stats = timed["barrier_stats"]
        row = {"n": n, "shards": shards.shards,
               "plan": shards.plan_label, "epoch_s": stats["epoch_s"],
               "engine": "sharded", "wallclock_s": timed["wallclock"]}
        if baseline is not None:
            row["speedup_vs_1shard"] = baseline / timed["wallclock"]
        rows.append(row)
        rows.append(_breakdown_row(n, shards.plan_label, stats))
        return timed["wallclock"]

    def sweep():
        rows.clear()
        summaries.clear()
        classic = _timed(base)
        rows.append({"n": n, "shards": 0, "plan": "off", "epoch_s": None,
                     "engine": "classic",
                     "wallclock_s": classic["wallclock"]})
        baseline = None
        for shards in PLANS:
            wall = sharded_run(shards.plan_label, shards, baseline)
            if baseline is None:
                baseline = wall
        for epoch in EPOCH_SWEEP:
            sharded_run(f"1x2@{epoch}",
                        ShardConfig(shards=2, epoch_s=epoch), baseline)
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    # The tentpole guarantees, asserted unconditionally: summaries are
    # bit-identical for every shard count, tile shape and epoch length.
    want_tag = PLANS[0].plan_label
    for tag, summary in summaries.items():
        assert summary == summaries[want_tag], \
            f"sharded summaries diverged: {tag} vs {want_tag}"

    lines = [f"bench_shard — city-scale world, N={n}, "
             f"{cores} usable core(s), backend={backend}",
             f"{'plan':>9} {'epoch':>6} {'engine':>8} {'wall [s]':>9} "
             f"{'vs K=1':>7} {'tax/barrier':>12}"]
    by_plan = {}
    for row in rows:
        if row.get("row_type") == "barrier_overhead":
            by_plan[(row["plan"], row["epoch_s"])] = row
    for row in rows:
        if row.get("row_type"):
            continue
        speed = row.get("speedup_vs_1shard")
        tax = by_plan.get((row["plan"], row["epoch_s"]))
        epoch = row["epoch_s"]
        lines.append(
            f"{row['plan']:>9} "
            + (f"{epoch:>6.2f} " if epoch is not None else f"{'—':>6} ")
            + f"{row['engine']:>8} {row['wallclock_s']:>9.2f} "
            + (f"{speed:>6.2f}x" if speed is not None else f"{'—':>7}")
            + (f" {tax['per_barrier_overhead_ms']:>10.2f}ms"
               if tax else ""))
    publish_text("\n".join(lines))
    publish_bench_json("bench_shard", rows, meta={
        "scale": s.name, "n": n,
        "plans": [p.plan_label for p in PLANS],
        "epoch_sweep": EPOCH_SWEEP,
        "cpu_count": cores, "backend": backend,
        "speedup_floor": SPEEDUP_FLOOR,
        "overhead_ceiling": OVERHEAD_CEILING,
        "speedup_asserted": cores >= 4 and n == DEFAULT_N,
        "overhead_asserted": n == DEFAULT_N})

    timing = [row for row in rows if not row.get("row_type")]
    classic_wall = timing[0]["wallclock_s"]
    k1_wall = timing[1]["wallclock_s"]
    # The barrier tax: one shard must ride within 5% of the classic
    # engine at the full N (small worlds are noise-dominated).
    if n == DEFAULT_N:
        assert k1_wall <= classic_wall * OVERHEAD_CEILING, \
            f"K=1 must be within {OVERHEAD_CEILING:.0%} of classic at " \
            f"N={DEFAULT_N}: {k1_wall:.2f}s vs {classic_wall:.2f}s " \
            f"({k1_wall / classic_wall:.2%})"
    # Process parallelism cannot beat 2.5x without at least 4 cores to
    # spread over; the invariance assertions above ran regardless.
    if cores >= 4 and n == DEFAULT_N:
        by_plan_row = {row["plan"]: row for row in timing}
        got = by_plan_row["1x4"]["speedup_vs_1shard"]
        assert got >= SPEEDUP_FLOOR, \
            f"4 shards must be ≥{SPEEDUP_FLOOR}x over 1 shard at " \
            f"N={DEFAULT_N} on a {cores}-core host, got {got:.2f}x"
