"""bench_protocols — per-frame hot-path cost of every registered protocol.

Runs each *visible* entry of the protocol registry on the same
random-waypoint scenario at the paper's density (6 processes/km², 442 m
range) for N ∈ {100, 300} and measures what one simulated frame and one
kernel event cost in wall-clock — the number that tells you which
dissemination strategy you can afford at scale, and the baseline any
future hot-path optimisation is judged against.

Emits the repo's standard BENCH json
(``benchmarks/results/bench_protocols.json`` plus a greppable
``BENCH {...}`` stdout line; see ``common.publish_bench_json``): one row
per (protocol, N) with wall-clock seconds, kernel events, frames put on
the air, and the derived µs/event and µs/frame.

Scale knobs: ``REPRO_SCALE=paper`` lengthens the measurement window;
``REPRO_BENCH_PROTOCOLS_MAX_N`` caps the population sweep (e.g. 100 in
smoke CI).
"""

from __future__ import annotations

import math
import os
import time
from typing import Dict, List

from common import publish_bench_json, publish_text, scale
from repro.core import registry
from repro.harness.scenario import (Publication, RandomWaypointSpec,
                                    ScenarioConfig, run_scenario)
from repro.net import RadioConfig

#: Paper density: 150 processes over 25 km².
DENSITY_PER_KM2 = 6.0

POPULATIONS = [100, 300]


def protocol_scenario(protocol: str, n: int, duration: float,
                      seed: int = 0) -> ScenarioConfig:
    """An N-process trial at paper density running ``protocol``."""
    side = math.sqrt(n / DENSITY_PER_KM2) * 1000.0
    return ScenarioConfig(
        n_processes=n,
        mobility=RandomWaypointSpec(width=side, height=side,
                                    speed_min=10.0, speed_max=10.0),
        duration=duration, warmup=5.0, seed=seed,
        protocol=protocol,
        radio=RadioConfig.paper_random_waypoint(),
        subscriber_fraction=0.8,
        publications=tuple(
            Publication(at=1.0 + i, validity=duration - 2.0, publisher=i)
            for i in range(3)))


def test_protocol_hot_paths(benchmark):
    s = scale()
    duration = 60.0 if s.name == "paper" else 20.0
    max_n = int(os.environ.get("REPRO_BENCH_PROTOCOLS_MAX_N",
                               POPULATIONS[-1]))
    populations = [n for n in POPULATIONS if n <= max_n]
    protocols = registry.names()          # hidden references excluded

    rows: List[Dict[str, object]] = []

    def sweep():
        rows.clear()
        for protocol in protocols:
            for n in populations:
                cfg = protocol_scenario(protocol, n, duration)
                started = time.perf_counter()
                result = run_scenario(cfg)
                wallclock = time.perf_counter() - started
                frames = sum(st.frames_sent
                             for st in result.collector.stats.values())
                events = result.sim_events_processed
                rows.append({
                    "protocol": protocol, "n": n,
                    "wallclock_s": round(wallclock, 4),
                    "sim_events": events,
                    "frames": frames,
                    "us_per_event": round(1e6 * wallclock / events, 3),
                    "us_per_frame": (round(1e6 * wallclock / frames, 3)
                                     if frames else float("inf")),
                    "reliability": result.reliability(),
                })
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [f"bench_protocols — {duration:.0f}s window, density "
             f"{DENSITY_PER_KM2:.0f}/km², N in {populations}",
             f"{'protocol':>18} {'N':>5} {'wall [s]':>9} {'frames':>9} "
             f"{'µs/event':>9} {'µs/frame':>9} {'rel':>5}"]
    for row in rows:
        lines.append(
            f"{row['protocol']:>18} {row['n']:>5} "
            f"{row['wallclock_s']:>9.2f} {row['frames']:>9} "
            f"{row['us_per_event']:>9.1f} {row['us_per_frame']:>9.1f} "
            f"{row['reliability']:>5.2f}")
    publish_text("\n".join(lines))
    publish_bench_json(
        "bench_protocols", rows,
        meta={"scale": s.name, "duration_s": duration,
              "density_per_km2": DENSITY_PER_KM2,
              "populations": populations})

    # Sanity: every registered protocol completed and moved traffic.
    measured = {row["protocol"] for row in rows}
    assert measured == set(protocols)
    for row in rows:
        assert 0.0 <= row["reliability"] <= 1.0
        assert row["frames"] > 0
