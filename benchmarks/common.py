"""Shared infrastructure for the figure benchmarks.

Every ``bench_figNN.py`` regenerates one of the paper's figures at the
scale selected by ``REPRO_SCALE`` (quick by default, paper for the full
grids) and:

* prints the reproduced rows as an ASCII table (captured into
  ``bench_output.txt`` when run with ``tee``),
* writes the full rows (including std-dev columns) to
  ``benchmarks/results/<figure>.csv`` for EXPERIMENTS.md bookkeeping.

Figures 17-19 plot different metrics of the *same* simulation campaign
(the paper ran one sweep and reported four views of it), so the underlying
sweep is computed once per scale and shared across those benchmarks via
:func:`shared_frugality_sweep`.
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys
from typing import Dict, List, Tuple

from repro.harness import parallel
from repro.harness.cache import ResultCache, default_cache_dir
from repro.harness.experiments import (ExperimentResult,
                                       frugality_comparison)
from repro.harness.presets import Scale, get_scale
from repro.harness.reporting import (format_engine_stats, format_experiment,
                                     to_csv)

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"

_SWEEP_CACHE: Dict[Tuple[str, Tuple[str, ...]], ExperimentResult] = {}


def configure_engine() -> parallel.ParallelRunner:
    """Install the benchmark execution engine from the environment.

    ``REPRO_JOBS`` selects the worker count (0 = all CPUs, default 1).
    Every ``bench_fig*`` sweep goes through
    :func:`repro.harness.parallel.run_seeds`, so this single
    configuration parallelises the whole suite.

    The result cache is **opt-in** here (``REPRO_CACHE=1``), the
    opposite of the CLI's default: this is a *timing* suite, and a warm
    cache would silently turn every benchmark into a measurement of
    pickle loads, hiding real simulation regressions.
    """
    jobs = parallel.resolve_jobs()
    cache = (ResultCache(default_cache_dir())
             if os.environ.get("REPRO_CACHE") else None)
    return parallel.configure(jobs=jobs, cache=cache)


ENGINE = configure_engine()


def engine_stats_line() -> str:
    """The engine's cache-hit report for the session so far."""
    return format_engine_stats(ENGINE.stats, jobs=ENGINE.jobs,
                               cached=ENGINE.cache is not None)


def scale() -> Scale:
    return get_scale()


def shared_frugality_sweep(protocols: Tuple[str, ...]) -> ExperimentResult:
    """The Figs. 17-20 sweep, computed once per (scale, protocol set)."""
    s = scale()
    key = (s.name, tuple(sorted(protocols)))
    cached = _SWEEP_CACHE.get(key)
    if cached is None:
        cached = frugality_comparison(s, protocols=protocols,
                                      experiment_id="fig17-20",
                                      title="Frugality sweep")
        _SWEEP_CACHE[key] = cached
    return cached


def view(sweep: ExperimentResult, experiment_id: str, title: str,
         metric: str) -> ExperimentResult:
    """Project one figure's metric out of the shared sweep."""
    result = ExperimentResult(experiment_id=experiment_id, title=title,
                              parameters=dict(sweep.parameters))
    for row in sweep.rows:
        result.rows.append({
            "protocol": row["protocol"], "events": row["events"],
            "interest": row["interest"],
            metric: row[metric], metric + "_std": row[metric + "_std"],
            "reliability": row["reliability"]})
    return result


#: Tables rendered during this session; the conftest terminal-summary hook
#: replays them after pytest's capture ends, so a plain
#: ``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` records
#: every reproduced figure.
PUBLISHED: list = []


def publish_text(text: str) -> None:
    """Queue free-form text (e.g. a pivoted grid) for the end-of-session
    replay alongside the figure tables."""
    print("\n" + text, flush=True)
    PUBLISHED.append(text)


def git_rev() -> str:
    """The short revision this measurement belongs to.

    ``REPRO_GIT_REV`` wins (CI sets it from the checkout SHA so detached
    or shallow clones report the right rev); otherwise ask git;
    ``unknown`` when neither is available.
    """
    env = os.environ.get("REPRO_GIT_REV")
    if env:
        return env
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=pathlib.Path(__file__).resolve().parent.parent,
            capture_output=True, text=True, timeout=10)
    except OSError:
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


def publish_bench_json(name: str, rows: List[Dict],
                       meta: Dict | None = None) -> pathlib.Path:
    """Record a perf measurement in the repo's standard BENCH format.

    The perf trajectory convention: every timing benchmark emits one
    ``BENCH {...}`` line to stdout (greppable from any captured log) and
    *appends* the measurement to ``benchmarks/results/<name>.json``,
    keyed by git revision —
    ``{"bench": name, "trajectory": [{"rev": ..., "meta": {...},
    "rows": [...]}, ...]}`` with one flat dict per measured cell.
    Re-measuring the same rev replaces that rev's entry instead of
    duplicating it, so the committed file *is* the trajectory: one entry
    per measured revision, oldest first.  Compare like against like
    (same scale, same machine class — both recorded in ``meta``).
    """
    entry = {"rev": git_rev(), "meta": meta or {}, "rows": rows}
    line = json.dumps({"bench": name, **entry}, sort_keys=True)
    print(f"\nBENCH {line}", flush=True)
    PUBLISHED.append(f"BENCH {line}")
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    trajectory: List[Dict] = []
    if path.exists():
        try:
            doc = json.loads(path.read_text())
        except json.JSONDecodeError:
            doc = {}
        if isinstance(doc, dict):
            if isinstance(doc.get("trajectory"), list):
                trajectory = doc["trajectory"]
            elif "rows" in doc:
                # Legacy single-payload file: adopt it as the first
                # trajectory entry so no measurement is thrown away.
                trajectory = [{"rev": doc.get("rev", "unknown"),
                               "meta": doc.get("meta", {}),
                               "rows": doc.get("rows", [])}]
    trajectory = [e for e in trajectory if e.get("rev") != entry["rev"]]
    trajectory.append(entry)
    path.write_text(json.dumps({"bench": name, "trajectory": trajectory},
                               sort_keys=True, indent=1) + "\n")
    return path


def publish(result: ExperimentResult) -> None:
    """Render the table, persist CSV + .txt, and queue it for the
    end-of-session replay."""
    text = format_experiment(result)
    print("\n" + text, flush=True)
    PUBLISHED.append(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    to_csv(result, str(RESULTS_DIR / f"{result.experiment_id}.csv"))
    (RESULTS_DIR / f"{result.experiment_id}.txt").write_text(text + "\n")
