"""Energy experiments benchmark: the lifetime sweep plus the accounting
hot path.

``test_energy_lifetime`` regenerates the energy-lifetime figure at the
selected scale (like the ``bench_figNN`` benchmarks).  The micro-bench
times the :class:`EnergyModel` transition machinery — every frame on the
air costs one TX window and one RX window per audible receiver, so this
is the per-frame overhead the subsystem adds to the medium's hot path.
"""

from __future__ import annotations

from common import publish, scale
from repro.energy import Battery, EnergyModel, PowerProfile
from repro.harness.experiments import ablation_dutycycle, energy_lifetime
from repro.sim.kernel import Simulator


def test_energy_lifetime(benchmark):
    result = benchmark.pedantic(energy_lifetime, args=(scale(),),
                                rounds=1, iterations=1)
    publish(result)
    frugal = [r for r in result.rows if r["protocol"] == "frugal"]
    flood = [r for r in result.rows
             if r["protocol"] == "neighbor-flooding"]
    # The headline: frugal is cheaper per delivered event on mains power.
    assert frugal[0]["joules_per_delivery"] < flood[0]["joules_per_delivery"]


def test_ablation_dutycycle(benchmark):
    result = benchmark.pedantic(ablation_dutycycle, args=(scale(),),
                                rounds=1, iterations=1)
    publish(result)
    for protocol in ("frugal", "neighbor-flooding"):
        rows = [r for r in result.rows if r["protocol"] == protocol]
        full = [r for r in rows if r["awake_fraction"] == 1.0][0]
        least = min(rows, key=lambda r: r["awake_fraction"])
        assert least["joules_per_node"] < full["joules_per_node"], \
            "sleeping must save energy"


def test_energy_model_transition_hot_path(benchmark):
    """1000 alternating TX/RX windows on one metered, battery-backed
    radio — the accounting work a busy medium generates per node."""

    def churn() -> float:
        sim = Simulator()
        model = EnergyModel(0, sim, PowerProfile.wifi_80211b(),
                            battery=Battery(capacity_j=10_000.0))
        airtime = 3.4e-3
        for i in range(1000):
            if i % 2 == 0:
                model.note_tx(airtime)
            else:
                model.note_rx(airtime)
            sim.run(until=(i + 1) * 5e-3)
        model.finalize()
        return model.total_joules

    joules = benchmark(churn)
    assert joules > 0.0
