"""abl-backoff — the contention back-off and overhearing suppression.

The paper's back-off (shorter for better-provisioned senders, cancelled
when an event of interest arrives) is what keeps duplicates near one per
minute.  Removing suppression, or the back-off entirely, must not improve
the duplicate count.
"""

from __future__ import annotations

from common import publish, scale
from repro.harness.experiments import ablation_backoff


def test_ablation_backoff(benchmark):
    result = benchmark.pedantic(ablation_backoff, args=(scale(),),
                                rounds=1, iterations=1)
    publish(result)
    rows = {r["variant"]: r for r in result.rows}
    full = rows["backoff+suppression"]
    none = rows["no-backoff"]
    assert full["duplicates"] <= none["duplicates"] * 1.25, \
        "removing the back-off should not reduce duplicates"
