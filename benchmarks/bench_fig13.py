"""Fig. 13 — city-section reliability vs heartbeat upper-bound period.

Paper anchors (validity 150 s, 100 % subscribers): 1 s -> 76.9 %,
2 s -> 75.1 %, 3 s -> 65.5 %, 4 s -> 69.9 %, 5 s -> 54.0 %.  The trend is
downward with a non-monotonic bump the paper attributes to beacon
collisions at the 3 s period.
"""

from __future__ import annotations

from common import publish, scale
from repro.harness.experiments import fig13

PAPER_ROWS = {1.0: 0.769, 2.0: 0.751, 3.0: 0.655, 4.0: 0.699, 5.0: 0.540}


def test_fig13(benchmark):
    result = benchmark.pedantic(fig13, args=(scale(),),
                                rounds=1, iterations=1)
    for row in result.rows:
        row["paper"] = PAPER_ROWS.get(row["hb_upper"], float("nan"))
    publish(result)
    # Shape: the fastest beacons must not be the worst configuration.
    by_bound = {r["hb_upper"]: r["reliability"] for r in result.rows}
    fastest = by_bound[min(by_bound)]
    slowest = by_bound[max(by_bound)]
    assert fastest >= slowest - 0.10, \
        "1 s heartbeats should beat (or match) 5 s heartbeats"
