"""Benchmark-suite configuration.

Puts the benchmarks directory on the import path (so ``common`` imports
work regardless of invocation directory) and prints the active scale once.
"""

from __future__ import annotations

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from repro.harness.presets import get_scale   # noqa: E402


def pytest_report_header(config):
    scale = get_scale()
    return (f"repro experiment scale: {scale.name} "
            f"(REPRO_SCALE=paper for the full paper grids)")


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Replay every reproduced figure after capture ends, so the tables
    land in ``bench_output.txt`` without needing ``-s``."""
    import common
    if not common.PUBLISHED:
        return
    terminalreporter.write_sep("=", "reproduced figures")
    for text in common.PUBLISHED:
        terminalreporter.write_line("")
        for line in text.splitlines():
            terminalreporter.write_line(line)
