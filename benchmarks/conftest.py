"""Benchmark-suite configuration.

Puts the benchmarks directory on the import path (so ``common`` imports
work regardless of invocation directory) and prints the active scale once.
"""

from __future__ import annotations

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from repro.harness.presets import get_scale   # noqa: E402


def pytest_report_header(config):
    import common
    scale = get_scale()
    engine = common.ENGINE
    cache = ("cache on (timings measure cache reads!)"
             if engine.cache is not None
             else "cache off (REPRO_CACHE=1 to enable)")
    return (f"repro experiment scale: {scale.name} "
            f"(REPRO_SCALE=paper for the full paper grids); "
            f"engine: {engine.jobs} job(s) (REPRO_JOBS=N), {cache}")


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Replay every reproduced figure after capture ends, so the tables
    land in ``bench_output.txt`` without needing ``-s``."""
    import common
    # Engine teardown + stats always run, even when no figure published
    # (a failed or deselected session must still reap the worker pool).
    if common.ENGINE.stats.total:
        terminalreporter.write_line(common.engine_stats_line())
    common.ENGINE.close()
    if not common.PUBLISHED:
        return
    terminalreporter.write_sep("=", "reproduced figures")
    for text in common.PUBLISHED:
        terminalreporter.write_line("")
        for line in text.splitlines():
            terminalreporter.write_line(line)
