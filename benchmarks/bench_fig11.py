"""Fig. 11 — reliability vs (speed x validity) at 20 % / 80 % interest.

Paper anchors: at 80 % interest, 10 m/s with 180 s validity reaches ~95 %
reliability, matching 30 m/s with 90 s; at 20 % interest the 25 km² area
is too sparse for high reliability at low speed.
"""

from __future__ import annotations

from common import publish, publish_text, scale
from repro.harness.experiments import fig11
from repro.harness.reporting import reliability_grid


def test_fig11(benchmark):
    result = benchmark.pedantic(fig11, args=(scale(),),
                                rounds=1, iterations=1)
    publish(result)
    for interest in (0.2, 0.8):
        grid = reliability_grid(result, row_key="speed",
                                col_key="validity", interest=interest)
        publish_text(f"fig11 reliability grid at interest="
                     f"{interest:.0%}:\n{grid}")
    # Shape assertions (the paper's qualitative claims).
    high = [r["reliability"] for r in result.filter(interest=0.8)]
    low = [r["reliability"] for r in result.filter(interest=0.2)]
    assert sum(high) / len(high) >= sum(low) / len(low), \
        "80% interest should dominate 20% (sparse-network effect)"
