"""Fig. 19 — duplicates received per process vs (#events x interest).

Paper anchors: the frugal protocol beats interests-aware flooding by
50-80x and the other variants by 80-700x; in the worst case (everyone
subscribed, 20 events) a process receives each event at most ~4 times in
180 s — about one duplicate per minute.
"""

from __future__ import annotations

from common import publish, shared_frugality_sweep, view
from repro.harness.experiments import FIG19_PROTOCOLS


def test_fig19(benchmark):
    sweep = benchmark.pedantic(
        shared_frugality_sweep, args=(FIG19_PROTOCOLS,),
        rounds=1, iterations=1)
    result = view(sweep, "fig19",
                  "Duplicates received per process (random waypoint, "
                  "10 m/s)", "duplicates")
    publish(result)
    events = max(result.column("events"))
    frugal = result.filter(protocol="frugal", events=events,
                           interest=1.0)[0]
    flood = result.filter(protocol="interest-flooding", events=events,
                          interest=1.0)[0]
    assert frugal["duplicates"] * 5 < flood["duplicates"], \
        "paper reports a 50-80x duplicate reduction vs the best flooder"
