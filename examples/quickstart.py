#!/usr/bin/env python
"""Quickstart: disseminate one event through a small mobile network.

Twenty devices move through a 1.5 x 1.5 km area at 10 m/s (random
waypoint); 80 % subscribe to ``.sports.football``, the rest to an
unrelated topic.  One device publishes a match report with a 90-second
validity period; the frugal protocol carries it through the network via
one-hop broadcasts, id exchanges and back-off suppression.

Run::

    python examples/quickstart.py [seed]
"""

from __future__ import annotations

import sys

from repro.harness import ScenarioConfig, run_scenario
from repro.harness.reporting import format_table


def main(seed: int = 1) -> None:
    config = ScenarioConfig.random_waypoint_demo(seed=seed)
    print(f"Running {config.n_processes} processes, "
          f"{config.subscriber_fraction:.0%} subscribers, seed {seed} ...")
    result = run_scenario(config)

    report = result.per_event_reports()[0]
    event = result.published_events[0]
    print(f"\nPublished {event} by process "
          f"{event.event_id.publisher}")
    print(f"Reliability: {report.delivered_in_time}/{report.subscribers} "
          f"subscribers = {report.reliability:.1%}")

    print("\nPer-process cost over the measurement window:")
    print(format_table([{
        "bandwidth [bytes]": result.bandwidth_per_process_bytes(),
        "events sent": result.events_sent_per_process(),
        "duplicates": result.duplicates_per_process(),
        "parasites": result.parasites_per_process(),
    }]))

    times = result.collector.deliveries_of(event.event_id)
    published_at = event.published_at
    latencies = sorted(t - published_at for n, t in times.items()
                       if n != event.event_id.publisher)
    if latencies:
        mid = latencies[len(latencies) // 2]
        print(f"\nDelivery latency: median {mid:.1f}s, "
              f"max {latencies[-1]:.1f}s over {len(latencies)} receivers")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 1)
