#!/usr/bin/env python
"""Energy budget: how long does a battery-powered campus network live?

The same campus scenario twice — once under the frugal protocol, once
under neighbours'-interests flooding — with every device on a small
battery and a power-save radio.  Announcements are published over the
run; we meter every radio in joules (TX/RX/IDLE split), watch batteries
drain, and compare what one delivered event *costs* and how many devices
are still alive at the end.

The point the paper argues in bytes, made in joules: flooding listeners
pay for every frame in the air, so the flooding campus browns out while
the frugal one keeps running on the same batteries.

Run::

    python examples/energy_budget.py [seed]
"""

from __future__ import annotations

import sys

from repro.energy import EnergyConfig, PowerProfile, RadioState
from repro.harness import (Publication, ScenarioConfig, depletion_timeline,
                          format_table, run_scenario)
from repro.harness.scenario import CitySectionSpec

DURATION = 150.0
BATTERY_J = 33.0      # ~2.75 min of idle listening at 0.2 W — tight


def campus_config(protocol: str, seed: int) -> ScenarioConfig:
    """12 battery-powered devices roaming the campus streets; four
    announcements with long validities, 2/3 of the devices subscribed."""
    pubs = tuple(Publication(at=10.0 + 25.0 * i, validity=120.0,
                             publisher=i) for i in range(4))
    return ScenarioConfig(
        n_processes=12,
        mobility=CitySectionSpec(),
        duration=DURATION,
        warmup=15.0,
        seed=seed,
        protocol=protocol,
        subscriber_fraction=0.66,
        publications=pubs,
        energy=EnergyConfig(profile=PowerProfile.power_save(),
                            battery_capacity_j=BATTERY_J))


def main(seed: int = 2) -> None:
    print(f"Campus on batteries: {BATTERY_J:.0f} J each, "
          f"{DURATION:.0f} s window, seed {seed}")
    rows = []
    results = {}
    for protocol in ("frugal", "neighbor-flooding"):
        result = run_scenario(campus_config(protocol, seed))
        results[protocol] = result
        by_state = result.energy.joules_by_state()
        rows.append({
            "protocol": protocol,
            "reliability": result.reliability(),
            "J/node": result.joules_per_node(),
            "J/delivery": result.joules_per_delivery(),
            "TX [J]": by_state[RadioState.TX],
            "RX [J]": by_state[RadioState.RX],
            "lifetime [s]": result.network_lifetime_s(),
            "survivors": f"{len(result.energy.survivor_ids())}"
                         f"/{result.config.n_processes}",
        })
    print()
    print(format_table(rows))

    for protocol, result in results.items():
        deaths = [(t - result.config.warmup, nid)
                  for t, nid in result.energy.deaths]
        print(f"\nSurvivors over time — {protocol}:")
        print(depletion_timeline(deaths, result.config.n_processes,
                                 DURATION, buckets=6))

    frugal, flood = results["frugal"], results["neighbor-flooding"]
    saved = flood.joules_per_delivery() - frugal.joules_per_delivery()
    print(f"\nFrugal saves {saved:.2f} J per delivered event and keeps "
          f"{len(frugal.energy.survivor_ids())} of "
          f"{frugal.config.n_processes} devices alive "
          f"(flooding: {len(flood.energy.survivor_ids())}).")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 2)
