#!/usr/bin/env python
"""Compose your own dissemination protocol from the public stack layers.

The protocol stack (:mod:`repro.core.stack`) splits every dissemination
strategy into four swappable layers — membership, store, delivery,
forwarding — and the registry (:mod:`repro.core.registry`) plugs any
composition into the experiment harness by name.  This example builds
**selective gossip**: the lpbcast-style gossip rounds of the built-in
``gossip`` baseline, but with the frugal protocol's TTL membership bolted
on so a node only spends a round when some *current* neighbour is
interested — a hybrid no built-in offers, in ~80 lines, none of which
touch the harness.

Run::

    python examples/custom_protocol.py [seed]
"""

from __future__ import annotations

import sys

from repro.core import registry
from repro.core.base import PubSubProtocol
from repro.core.stack import (DeliveryLayer, EventStore, GossipForwarding,
                              TTLMembership)
from repro.harness import QUICK, run_matrix, rwp_scenario
from repro.harness.reporting import format_table
from repro.net.messages import EventBatch, Heartbeat


class SelectiveGossip(PubSubProtocol):
    """Gossip rounds, but only while an interested neighbour is around.

    Composition: TTL membership (heartbeats + lazily pruned neighbour
    view), a bounded FIFO digest buffer, exactly-once delivery, and
    probabilistic gossip forwarding whose rounds this class gates on the
    membership view.
    """

    def __init__(self, probability: float = 0.75, fanout: int = 8,
                 buffer_capacity: int = 32):
        # Defaults mirror the built-in GossipConfig, so the comparison
        # below isolates exactly one variable: the membership gate.
        super().__init__()
        self.delivery = DeliveryLayer(self.counters)
        self.membership = TTLMembership(
            self.counters, heartbeat_period=1.0, ttl=2.5,
            subscriptions=lambda: self.delivery.subscriptions,
            jitter=0.05)
        self.buffer = EventStore.bounded_fifo(buffer_capacity)
        self.forwarding = GossipForwarding(
            self.counters, period=1.0, jitter=0.05,
            forward_probability=probability, fanout=fanout)
        self._round_task = None
        self._running = False

    # -- lifecycle ---------------------------------------------------------

    def attach(self, host) -> None:
        super().attach(host)
        self.delivery.attach(host)
        self.membership.attach(host)
        self.forwarding.attach(host, self.buffer)

    def on_start(self) -> None:
        self._running = True
        self.membership.start()
        # The gossip task is *not* started: rounds are driven manually
        # from the membership-gated tick below.
        self._round_task = self.host.periodic(1.0, self._gated_round,
                                              jitter=0.05)

    def on_stop(self) -> None:
        self._running = False
        self.membership.stop()
        if self._round_task is not None:
            self._round_task.stop()
            self._round_task = None
        self.buffer.clear()
        self.delivery.reset()

    # -- the hybrid: membership-gated gossip rounds -------------------------

    def _gated_round(self) -> None:
        now = self.host.now
        self.buffer.purge_expired(now)
        self.membership.prune(now)
        rows = [row for row in self.buffer
                if self.membership.any_interested(row.topic)]
        if not rows:
            return
        if self.host.rng.random() >= self.forwarding.forward_probability:
            return
        newest = rows[-self.forwarding.fanout:]
        self.forwarding.broadcast(tuple(row.event for row in newest))

    # -- pub/sub surface ----------------------------------------------------

    @property
    def subscriptions(self):
        return self.delivery.subscriptions

    def subscribe(self, topic) -> None:
        self.delivery.subscribe(topic)

    def unsubscribe(self, topic) -> None:
        self.delivery.unsubscribe(topic)

    def publish(self, event) -> None:
        host = self._require_attached()
        self.buffer.store(event, host.now)
        self.delivery.deliver_once(event)
        self.forwarding.broadcast((event,))

    def on_message(self, message) -> None:
        if not self._running:
            return
        if isinstance(message, Heartbeat):
            self.membership.on_heartbeat(message)
            return
        if not isinstance(message, EventBatch):
            return
        now = self.host.now
        for event in message.events:
            subscribed = self.delivery.matches(event.topic)
            if not subscribed:
                self.counters.parasites_dropped += 1
            if event.event_id in self.buffer:
                if subscribed:
                    self.counters.duplicates_dropped += 1
                continue
            if not event.is_valid(now):
                continue
            self.buffer.store(event, now)
            if subscribed:
                self.delivery.deliver_once(event)


def main(seed: int = 0) -> None:
    """Register the custom stack and race it against two built-ins."""
    registry.register("selective-gossip", lambda cfg: SelectiveGossip(),
                      description="example: membership-gated gossip",
                      replace=True)
    try:
        scale = QUICK.with_seed_base(seed)
        protocols = ["frugal", "gossip", "selective-gossip"]
        # 20 % subscribers: most neighbourhoods contain no interested
        # node, which is exactly when gating rounds on membership pays
        # off.
        configs = {
            proto: rwp_scenario(scale, 10.0, 10.0, validity=120.0,
                                interest=0.2, n_events=5,
                                protocol=proto, duration=120.0)
            for proto in protocols
        }
        print(f"Custom protocol 'selective-gossip' vs two built-ins "
              f"({scale.rwp_processes} processes, 20% subscribers, "
              f"{len(scale.seed_list())} seeds)\n")
        outcomes = run_matrix(configs, scale.seed_list())

        rows = []
        for proto in protocols:
            summary = outcomes[proto].summary()
            rows.append({
                "protocol": proto,
                "reliability": round(summary["reliability"].mean, 3),
                "bandwidth [kB]": round(
                    summary["bandwidth_bytes"].mean / 1000.0, 2),
                "duplicates": round(summary["duplicates"].mean, 1),
                "parasites": round(summary["parasites"].mean, 1),
            })
        print(format_table(rows))

        blind = rows[1]
        gated = rows[2]
        if gated["bandwidth [kB]"] > 0:
            factor = blind["bandwidth [kB]"] / gated["bandwidth [kB]"]
            print(f"\nMembership gating changes selective-gossip's "
                  f"airtime by {factor:.1f}x vs blind gossip on this "
                  f"scenario (heartbeats included in its bill).")
    finally:
        registry.unregister("selective-gossip")


if __name__ == "__main__":
    main(seed=int(sys.argv[1]) if len(sys.argv) > 1 else 0)
