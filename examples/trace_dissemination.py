#!/usr/bin/env python
"""Watch one event travel: a full air-interface trace of a dissemination.

Builds a 6-node line topology where the event must be store-and-forwarded
hop by hop, attaches a :class:`repro.metrics.ProtocolTracer`, publishes
one event and prints its complete journey — every transmission, reception,
collision and delivery, in order.  Useful both as a debugging recipe and
as a concrete illustration of the protocol's three phases.

Run::

    python examples/trace_dissemination.py [seed]
"""

from __future__ import annotations

import sys

from repro.core import FrugalConfig, FrugalPubSub
from repro.core.events import EventFactory
from repro.metrics import ProtocolTracer
from repro.mobility import Stationary
from repro.net import Node, RadioConfig, WirelessMedium
from repro.sim import RngRegistry, Simulator
from repro.sim.space import Vec2

N_NODES = 6
SPACING = 90.0          # just under the 100 m radio range: a true chain


def main(seed: int = 2) -> None:
    sim = Simulator()
    rngs = RngRegistry(seed)
    medium = WirelessMedium(sim, RadioConfig(range_override_m=100.0),
                            rng=rngs.stream("medium"))
    tracer = ProtocolTracer(medium)

    nodes = []
    for i in range(N_NODES):
        protocol = FrugalPubSub(FrugalConfig())
        node = Node(i, sim, medium,
                    Stationary(position=Vec2(i * SPACING, 0.0)),
                    protocol, rngs.stream("node", i))
        protocol.subscribe(".chain")
        tracer.track_node(node)
        nodes.append(node)
    for node in nodes:
        node.start()

    sim.run(until=3.0)          # neighbourhoods form
    event = EventFactory(0).create(".chain.msg", validity=120.0,
                                   now=sim.now)
    nodes[0].protocol.publish(event)
    sim.run(until=30.0)

    print(f"Topology: {N_NODES} nodes in a line, {SPACING:.0f} m apart, "
          f"100 m radio range — multi-hop is mandatory.\n")
    print(f"Journey of {event.event_id} (topic {event.topic}):\n")
    print(tracer.dissemination_timeline(event.event_id))

    deliveries = [r for r in tracer.of_kind("deliver")
                  if r.event_ids == (event.event_id,)]
    print(f"\n{len(deliveries)}/{N_NODES} nodes delivered; "
          f"hop-by-hop delivery times:")
    for record in sorted(deliveries, key=lambda r: r.time):
        hops = record.node
        print(f"  node {record.node} (hop {hops}): "
              f"t = {record.time - event.published_at:6.2f}s after publish")

    collided = tracer.collisions()
    print(f"\nframes collided during the run: {len(collided)}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 2)
