#!/usr/bin/env python
"""Declaring a custom study: popularity x id-exchange, Pareto-priced.

What does the event-id exchange buy once announcements get popular?
Instead of writing nested sweep loops, declare the question: one
`Toggles` dimension flips the id-exchange component (blind push vs
announce-first), one `Axis` sweeps how many devices care
(`subscriber_fraction`), and the declared objectives extract the
reliability-vs-duplicates Pareto frontier automatically.  The engine expands the cross product, batches every
(cell, seed) job through the cached parallel engine, and attaches the
pivot / component-delta / frontier tables to the result — a warm-cache
re-run of this script executes zero scenarios.

Run::

    python examples/custom_study.py [seed]
"""

from __future__ import annotations

import sys

from repro.harness import format_table
from repro.harness.experiments import rwp_scenario
from repro.harness.presets import SMOKE
from repro.study import (Axis, Component, Metric, Objective, PivotSpec,
                         StudySpec, Toggles, run_study)


def build_spec(seed: int) -> StudySpec:
    """Popularity x id-exchange over a small random-waypoint world."""
    base = rwp_scenario(SMOKE, 10.0, 10.0, validity=60.0, interest=0.5,
                        n_events=4, duration=60.0)
    return StudySpec(
        study_id="popularity-x-ids",
        title="Does the id exchange still pay when everyone subscribes?",
        base=base,
        grid=(
            Toggles(components=(Component(
                "id-exchange",
                off={"frugal.announce_on_new_neighbor": False}),)),
            Axis(name="interest", path="subscriber_fraction",
                 values=(0.3, 0.9)),
        ),
        seeds=(seed, seed + 1),
        metrics=(Metric("reliability"), Metric("bandwidth_bytes"),
                 Metric("duplicates")),
        objectives=(Objective("reliability", "max"),
                    Objective("duplicates", "min")),
        pivot=PivotSpec(rows="variant", cols="interest",
                        value="reliability"))


def main(seed: int = 7) -> None:
    """Expand, run and analyse the study; print every attached note."""
    spec = build_spec(seed)
    result = run_study(spec)
    print(f"Study {spec.study_id!r}: {spec.title}")
    print(f"{len(result.cells)} cells x {len(spec.seeds)} seeds\n")
    print(format_table(result.experiment.rows))
    for note in result.experiment.notes:
        print("\n" + note)

    front = result.frontier()
    label = ", ".join(
        f"({r['variant']}, interest={r['interest']})"
        for r in front.frontier)
    print(f"\n{len(front.frontier)} of {len(result.experiment.rows)} "
          f"settings are Pareto-optimal: {label}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 7)
