#!/usr/bin/env python
"""Reproduce the paper's frugality argument on one shared scenario.

Runs the frugal protocol and the three flooding baselines (Section 5.2)
over the *same* mobility traces and subscriber draw (paired seeds), then
prints the four measurements of Figs. 17-20 side by side: bandwidth,
events sent, duplicates and parasites — plus the reliability every
approach achieved.

Run::

    python examples/protocol_comparison.py [n_events] [interest%]
"""

from __future__ import annotations

import sys

from repro.harness import (QUICK, run_matrix, rwp_scenario)
from repro.harness.reporting import format_table

PROTOCOLS = ["frugal", "interest-flooding", "neighbor-flooding",
             "simple-flooding"]


def main(n_events: int = 5, interest: float = 0.6) -> None:
    scale = QUICK
    seeds = scale.seed_list()
    print(f"Comparing {len(PROTOCOLS)} protocols: {n_events} events, "
          f"{interest:.0%} subscribers, {len(seeds)} seeds "
          f"({scale.rwp_processes} processes, 10 m/s random waypoint)\n")

    configs = {
        proto: rwp_scenario(scale, 10.0, 10.0, validity=180.0,
                            interest=interest, n_events=n_events,
                            protocol=proto, duration=180.0)
        for proto in PROTOCOLS
    }
    outcomes = run_matrix(configs, seeds)

    rows = []
    for proto in PROTOCOLS:
        summary = outcomes[proto].summary()
        rows.append({
            "protocol": proto,
            "reliability": round(summary["reliability"].mean, 3),
            "bandwidth [kB]": round(
                summary["bandwidth_bytes"].mean / 1000.0, 2),
            "events sent": round(summary["events_sent"].mean, 1),
            "duplicates": round(summary["duplicates"].mean, 1),
            "parasites": round(summary["parasites"].mean, 1),
        })
    print(format_table(rows))

    frugal = rows[0]
    flood = rows[-1]
    if frugal["bandwidth [kB]"] > 0:
        factor = flood["bandwidth [kB]"] / frugal["bandwidth [kB]"]
        print(f"\nSimple flooding spends {factor:.1f}x the bandwidth of "
              f"the frugal protocol for the same scenario.")


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 5
    pct = float(sys.argv[2]) / 100.0 if len(sys.argv) > 2 else 0.6
    main(n, pct)
