#!/usr/bin/env python
"""The paper's motivating application: free-parking-spot dissemination.

"The cars leaving the car parks act as publishers and propagate the
information of free parking spots.  When receiving such information, other
cars, acting as subscribers, are able to locate the free place that is
closest to their destination" (paper, footnote 1 — the EPFL Free Car Parks
application).

Cars drive the synthetic campus street map (city-section mobility).  Each
car subscribes to the parking branch of the topic hierarchy — some to all
of campus (``.epfl.parking``), some only to one lot.  Cars that leave a
lot publish a free-spot event with a short validity (a spot does not stay
free for long); the run reports which cars learned of which spots in time.

Run::

    python examples/car_park.py [seed]
"""

from __future__ import annotations

import sys
from collections import defaultdict

from repro.core import FrugalConfig, FrugalPubSub
from repro.core.events import EventFactory
from repro.harness.scenario import CitySectionSpec
from repro.metrics import MetricsCollector
from repro.net import Node, RadioConfig, WirelessMedium
from repro.sim import RngRegistry, Simulator

LOTS = ["riponne", "ouchy", "flon"]
N_CARS = 12
SPOT_VALIDITY = 120.0          # a freed spot stays relevant for 2 minutes


def main(seed: int = 3) -> None:
    sim = Simulator()
    rngs = RngRegistry(seed)
    medium = WirelessMedium(sim, RadioConfig.paper_city_section(),
                            rng=rngs.stream("medium"))
    collector = MetricsCollector(medium)
    spec = CitySectionSpec(map_seed=7)

    # Build the fleet: car i subscribes to one lot, or to all of parking.
    nodes = []
    subscriptions = {}
    for i in range(N_CARS):
        protocol = FrugalPubSub(FrugalConfig.paper_city_section())
        node = Node(i, sim, medium, spec.build(i), protocol,
                    rngs.stream("node", i))
        if i % 3 == 0:
            topic = ".epfl.parking"                   # wants every lot
        else:
            topic = f".epfl.parking.{LOTS[i % len(LOTS)]}"
        protocol.subscribe(topic)
        subscriptions[i] = topic
        collector.track_node(node)
        nodes.append(node)

    for node in nodes:
        node.start()
    sim.run(until=30.0)                               # let traffic mix

    # Three cars leave their lots at different times and announce the spot.
    departures = [(0, "riponne", 10.0), (4, "ouchy", 40.0),
                  (8, "flon", 80.0)]
    published = []

    def leave(car: int, lot: str) -> None:
        factory = EventFactory(car)
        event = factory.create(f".epfl.parking.{lot}",
                               validity=SPOT_VALIDITY, now=sim.now,
                               payload={"lot": lot, "spot": f"{lot}-17"})
        published.append(event)
        collector.record_publication(event)
        nodes[car].protocol.publish(event)
        print(f"t={sim.now:6.1f}s  car {car} leaves '{lot}' "
              f"and publishes a free spot")

    base = sim.now
    for car, lot, at in departures:
        sim.call_at(base + at, leave, car, lot)
    sim.run(until=base + 250.0)

    print("\nWho learned of which spot (within its validity):")
    learned = defaultdict(list)
    for event in published:
        times = collector.deliveries_of(event.event_id)
        for car, t in sorted(times.items()):
            if car != event.event_id.publisher and t <= event.expires_at:
                learned[event.payload["lot"]].append(car)
    for lot in LOTS:
        cars = learned.get(lot, [])
        names = ", ".join(f"car {c} ({subscriptions[c]})" for c in cars)
        print(f"  {lot:10s}: {len(cars)} cars  [{names}]")

    print(f"\nTotal bytes on air: {collector.total_bytes()} "
          f"({collector.bandwidth_per_process_bytes():.0f} per car); "
          f"parasites/car: {collector.parasites_per_process():.1f}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 3)
