#!/usr/bin/env python
"""Topic hierarchies at work: conference announcements across a campus.

The paper's running example is a hierarchy like
``.grenoble.conferences.middleware``: subscribing to a topic entitles you
to *all its subtopics*.  This example drives that semantics end to end on
the city-section campus:

* some attendees subscribe broadly (``.epfl.conferences``) and receive
  everything below it,
* some narrowly (``.epfl.conferences.middleware.keynotes``),
* one process only cares about ``.epfl.cafeteria`` — every conference
  event is a parasite for it, and the frugal protocol keeps it untouched.

Events are published on three different levels of the hierarchy and the
run prints, per process, what it received versus what it was entitled to.

Run::

    python examples/campus_conference.py [seed]
"""

from __future__ import annotations

import sys

from repro.core import FrugalConfig, FrugalPubSub, Topic
from repro.core.events import EventFactory
from repro.core.topics import subscription_matches_event
from repro.harness.scenario import CitySectionSpec
from repro.metrics import MetricsCollector
from repro.net import Node, RadioConfig, WirelessMedium
from repro.sim import RngRegistry, Simulator

ATTENDEES = [
    # (name, subscription)
    ("ana",   ".epfl.conferences"),
    ("bram",  ".epfl.conferences.middleware"),
    ("chloe", ".epfl.conferences.middleware.keynotes"),
    ("dani",  ".epfl.conferences"),
    ("emil",  ".epfl.conferences.middleware"),
    ("fay",   ".epfl.conferences.middleware.keynotes"),
    ("gus",   ".epfl.cafeteria"),          # not interested in conferences
    ("hana",  ".epfl.conferences"),
]

ANNOUNCEMENTS = [
    # (publisher index, topic, what)
    (0, ".epfl.conferences.middleware",
     "Registration desk moved to BC building"),
    (1, ".epfl.conferences.middleware.keynotes",
     "Keynote starts 10 minutes late"),
    (3, ".epfl.conferences",
     "Shuttle to the banquet leaves at 19:00"),
]


def main(seed: int = 5) -> None:
    sim = Simulator()
    rngs = RngRegistry(seed)
    medium = WirelessMedium(sim, RadioConfig.paper_city_section(),
                            rng=rngs.stream("medium"))
    collector = MetricsCollector(medium)
    spec = CitySectionSpec(map_seed=7)

    nodes = []
    for i, (name, sub) in enumerate(ATTENDEES):
        protocol = FrugalPubSub(FrugalConfig.paper_city_section())
        node = Node(i, sim, medium, spec.build(i), protocol,
                    rngs.stream("node", i))
        protocol.subscribe(sub)
        collector.track_node(node)
        nodes.append(node)
    for node in nodes:
        node.start()
    sim.run(until=30.0)

    published = []

    def announce(publisher: int, topic: str, text: str) -> None:
        factory = EventFactory(publisher)
        event = factory.create(topic, validity=180.0, now=sim.now,
                               payload=text)
        published.append(event)
        collector.record_publication(event)
        nodes[publisher].protocol.publish(event)

    base = sim.now
    for offset, (publisher, topic, text) in enumerate(ANNOUNCEMENTS):
        sim.call_at(base + 5.0 + 25.0 * offset, announce, publisher,
                    topic, text)
    sim.run(until=base + 240.0)

    print("Announcements published:")
    for event in published:
        print(f"  {event.topic}  ->  {event.payload!r}")

    print("\nPer-attendee outcome (. = entitled+received, "
          "MISS = entitled but not received, - = not entitled):")
    for i, (name, sub) in enumerate(ATTENDEES):
        marks = []
        for event in published:
            entitled = subscription_matches_event([Topic(sub)], event.topic)
            got = i in collector.deliveries_of(event.event_id)
            marks.append("." if entitled and got
                         else ("MISS" if entitled else "-"))
        stats = collector.stats[i]
        print(f"  {name:6s} {sub:42s} {' '.join(m.ljust(4) for m in marks)}"
              f"  parasites={stats.parasites_received}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 5)
