"""Tests for protocol tracing (repro.metrics.trace) and the bounded
neighbourhood table (paper footnote 5)."""

from __future__ import annotations

import pytest

from repro.core import FrugalConfig, FrugalPubSub
from repro.core.events import EventFactory
from repro.core.tables import NeighborhoodTable
from repro.core.topics import Topic
from repro.metrics import MetricsCollector, ProtocolTracer
from repro.mobility import Stationary
from repro.net import Node, RadioConfig, WirelessMedium
from repro.sim import RngRegistry, Simulator
from repro.sim.space import Vec2


def build_traced_pair(sim, rngs):
    medium = WirelessMedium(sim, RadioConfig(range_override_m=100.0),
                            rng=rngs.stream("medium"))
    collector = MetricsCollector(medium)
    tracer = ProtocolTracer(medium)
    nodes = []
    for i in range(2):
        proto = FrugalPubSub(FrugalConfig())
        node = Node(i, sim, medium,
                    Stationary(position=Vec2(i * 50.0, 0.0)), proto,
                    rngs.stream("node", i))
        proto.subscribe(".a")
        collector.track_node(node)
        tracer.track_node(node)
        nodes.append(node)
    for n in nodes:
        n.start()
    return medium, collector, tracer, nodes


class TestTracer:
    def test_records_transmissions_and_receptions(self, sim, rngs):
        _, _, tracer, _ = build_traced_pair(sim, rngs)
        sim.run(until=2.5)
        assert tracer.of_kind("tx")
        assert tracer.of_kind("rx")
        kinds = {r.detail for r in tracer.of_kind("tx")}
        assert "Heartbeat" in kinds

    def test_chains_existing_hooks(self, sim, rngs):
        """Installing the tracer after a collector must keep the collector
        counting."""
        _, collector, tracer, _ = build_traced_pair(sim, rngs)
        sim.run(until=2.5)
        assert collector.total_bytes() > 0         # still counting
        assert len(tracer) > 0

    def test_delivery_records_event_id(self, sim, rngs):
        _, _, tracer, nodes = build_traced_pair(sim, rngs)
        sim.run(until=2.5)
        event = EventFactory(0).create(".a.x", validity=60.0, now=sim.now)
        nodes[0].protocol.publish(event)
        sim.run(until=6.0)
        deliveries = tracer.of_kind("deliver")
        assert {r.node for r in deliveries} == {0, 1}
        assert all(r.event_ids == (event.event_id,) for r in deliveries)

    def test_timeline_tells_the_story(self, sim, rngs):
        _, _, tracer, nodes = build_traced_pair(sim, rngs)
        sim.run(until=2.5)
        event = EventFactory(0).create(".a.x", validity=60.0, now=sim.now)
        nodes[0].protocol.publish(event)
        sim.run(until=6.0)
        timeline = tracer.dissemination_timeline(event.event_id)
        assert "tx" in timeline and "deliver" in timeline
        assert str(event.event_id) in timeline

    def test_timeline_empty_for_unknown_event(self, sim, rngs):
        _, _, tracer, _ = build_traced_pair(sim, rngs)
        from repro.core.events import EventId
        assert "no trace records" in \
            tracer.dissemination_timeline(EventId(99, 99))

    def test_max_records_bound(self, sim, rngs):
        medium = WirelessMedium(sim, RadioConfig(range_override_m=100.0),
                                rng=rngs.stream("medium"))
        tracer = ProtocolTracer(medium, max_records=5)
        proto = FrugalPubSub(FrugalConfig())
        node = Node(0, sim, medium, Stationary(position=Vec2(0, 0)),
                    proto, rngs.stream("node", 0))
        proto.subscribe(".a")
        node.start()
        sim.run(until=30.0)
        assert len(tracer) == 5


class TestBoundedNeighborhood:
    def test_capacity_evicts_stalest(self):
        table = NeighborhoodTable(capacity=2)
        table.upsert(1, [Topic(".a")], None, now=1.0)
        table.upsert(2, [Topic(".a")], None, now=2.0)
        table.upsert(3, [Topic(".a")], None, now=3.0)
        assert table.ids() == [2, 3]

    def test_refresh_does_not_evict(self):
        table = NeighborhoodTable(capacity=2)
        table.upsert(1, [Topic(".a")], None, now=1.0)
        table.upsert(2, [Topic(".a")], None, now=2.0)
        table.upsert(1, [Topic(".a")], None, now=3.0)   # refresh, not new
        assert table.ids() == [1, 2]

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            NeighborhoodTable(capacity=0)

    def test_config_plumbs_capacity_into_protocol(self):
        proto = FrugalPubSub(FrugalConfig(neighborhood_capacity=3))
        assert proto.neighborhood.capacity == 3

    def test_config_validates_capacity(self):
        with pytest.raises(ValueError):
            FrugalConfig(neighborhood_capacity=0)

    def test_protocol_with_tiny_table_still_disseminates(self, sim, rngs):
        """Four neighbours through a 2-slot table: eviction churn causes
        re-announcements but must not break delivery."""
        medium = WirelessMedium(sim, RadioConfig(range_override_m=300.0),
                                rng=rngs.stream("medium"))
        nodes = []
        for i in range(5):
            proto = FrugalPubSub(FrugalConfig(neighborhood_capacity=2))
            node = Node(i, sim, medium,
                        Stationary(position=Vec2(i * 40.0, 0.0)), proto,
                        rngs.stream("node", i))
            proto.subscribe(".a")
            nodes.append(node)
        for n in nodes:
            n.start()
        sim.run(until=3.3)
        event = EventFactory(0).create(".a.x", validity=300.0, now=sim.now)
        nodes[0].protocol.publish(event)
        sim.run(until=60.0)
        delivered = sum(1 for n in nodes if event in n.delivered_events)
        assert delivered == 5
