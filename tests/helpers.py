"""Shared test utilities.

:class:`FakeHost` drives a protocol instance without any radio, mobility
or medium: sent messages accumulate in ``sent``, timers run on a private
simulator kernel, and the test advances time explicitly.  This is what
lets the protocol unit tests exercise the paper's pseudocode line by line.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.core.events import Event, EventFactory
from repro.net.messages import Message
from repro.sim.kernel import PeriodicTask, Simulator


class FakeHost:
    """A scripted :class:`repro.core.base.Host` implementation."""

    def __init__(self, host_id: int = 0, seed: int = 0,
                 speed: Optional[float] = None):
        self.id = host_id
        self.sim = Simulator()
        self._rng = random.Random(seed)
        self.speed: Optional[float] = speed
        self.sent: List[Message] = []
        self.delivered: List[Event] = []

    # -- Host interface --------------------------------------------------------

    @property
    def now(self) -> float:
        return self.sim.now

    @property
    def rng(self) -> random.Random:
        return self._rng

    def send(self, message: Message) -> None:
        self.sent.append(message)

    def schedule(self, delay: float, callback, *args):
        return self.sim.schedule(delay, callback, *args)

    def periodic(self, period: float, callback, jitter: float = 0.0):
        return PeriodicTask(self.sim, period, callback, jitter=jitter,
                            rng=self._rng)

    def deliver(self, event: Event) -> None:
        self.delivered.append(event)

    def current_speed(self) -> Optional[float]:
        return self.speed

    # -- test conveniences ----------------------------------------------------------

    def advance(self, seconds: float) -> None:
        """Run the private kernel forward by ``seconds``."""
        self.sim.run(until=self.sim.now + seconds)

    def sent_of_kind(self, kind: type) -> List[Message]:
        return [m for m in self.sent if isinstance(m, kind)]

    def clear(self) -> None:
        self.sent.clear()
        self.delivered.clear()


def make_event(publisher: int = 99, seq: int = 0, topic: str = ".t",
               validity: float = 60.0, now: float = 0.0,
               payload_bytes: int = 400) -> Event:
    """One-liner event construction for tests."""
    factory = EventFactory(publisher)
    factory._next_seq = seq
    return factory.create(topic, validity=validity, now=now,
                          payload_bytes=payload_bytes)
