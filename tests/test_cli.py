"""Tests for the experiment CLI (repro.harness.cli)."""

from __future__ import annotations

import csv

import pytest

from repro.harness.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["fig13"])
        assert args.experiment == "fig13"
        assert args.scale is None and args.csv is None

    def test_scale_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig13", "--scale", "huge"])

    def test_seed_flag_parsed(self):
        args = build_parser().parse_args(["fig13", "--seed", "7"])
        assert args.seed == 7
        assert build_parser().parse_args(["fig13"]).seed is None


class TestMain:
    def test_list_prints_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for figure in ("fig11", "fig20", "abl-gc"):
            assert figure in out

    def test_unknown_experiment_fails(self, capsys):
        assert main(["figXX"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_runs_experiment_and_writes_csv(self, capsys, tmp_path,
                                            monkeypatch):
        # Pin the run to a tiny scale so the test stays fast: the CLI looks
        # the experiment up in ALL_EXPERIMENTS, which we can patch.
        from repro.harness import cli
        from repro.harness.experiments import fig13
        from tests.test_experiments import TINY
        monkeypatch.setitem(cli.ALL_EXPERIMENTS, "fig13",
                            lambda scale: fig13(TINY))
        path = tmp_path / "fig13.csv"
        assert main(["fig13", "--csv", str(path)]) == 0
        out = capsys.readouterr().out
        assert "fig13" in out
        assert "hb_upper" in out
        with open(path) as f:
            rows = list(csv.DictReader(f))
        assert len(rows) == 3          # TINY sweeps 1/3/5 s bounds

    def test_study_lists_registered_declarations(self, capsys):
        assert main(["study"]) == 0
        out = capsys.readouterr().out
        for study_id in ("abl-gc", "abl-dutycycle", "study-frontier"):
            assert study_id in out
        assert main(["study", "--list"]) == 0
        assert "study-frontier" in capsys.readouterr().out

    def test_study_unknown_id_fails(self, capsys):
        assert main(["study", "--run", "abl-typo"]) == 2
        assert "unknown study" in capsys.readouterr().err

    def test_study_run_prints_notes(self, capsys, monkeypatch):
        # Route the registered entry to a tiny-scale run so the test
        # stays fast; the study path reuses the ALL_EXPERIMENTS flow.
        from repro.harness import cli
        from repro.harness.experiments import ALL_EXPERIMENTS
        from tests.test_experiments import TINY
        real = ALL_EXPERIMENTS["abl-ids"]
        monkeypatch.setitem(cli.ALL_EXPERIMENTS, "abl-ids",
                            lambda scale: real(TINY))
        assert main(["study", "--run", "abl-ids"]) == 0
        out = capsys.readouterr().out
        assert "abl-ids" in out
        assert "component deltas" in out

    def test_seed_flag_rebases_the_seed_list(self, capsys, monkeypatch):
        """--seed must reach the experiment as the scale's seed_base, so
        every run_seeds() call starts from the requested seed."""
        from repro.harness import cli
        seen = {}

        def probe(scale):
            seen["seeds"] = scale.seed_list()
            from repro.harness.experiments import ExperimentResult
            return ExperimentResult(experiment_id="fig13", title="probe",
                                    parameters={},
                                    rows=[{"reliability": 1.0}])

        monkeypatch.setitem(cli.ALL_EXPERIMENTS, "fig13", probe)
        assert main(["fig13", "--seed", "100"]) == 0
        assert seen["seeds"][0] == 100
        assert seen["seeds"] == sorted(seen["seeds"])
