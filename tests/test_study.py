"""Tests for the declarative study subsystem (repro.study).

The heart is the declaration-equivalence suite: every collapsed
``abl-*`` study must reproduce its frozen hand-written original
(:mod:`repro.harness.frozen`) row for row and byte for byte, serial,
parallel and cached alike.  Around it: unit tests for field-path
setting, grid expansion determinism, component-toggle composition and
Pareto-dominance edge cases.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.harness import frozen, parallel
from repro.harness.cache import ResultCache
from repro.harness.experiments import ALL_EXPERIMENTS
from repro.harness.reporting import to_csv
from repro.harness.scenario import ScenarioConfig
from repro.study import (Axis, Component, Metric, Objective, PivotSpec,
                         StudySpec, Toggles, Variant, dominates, expand,
                         pareto_frontier, run_study, set_field_path)
from repro.study.analysis import frontier_report
from repro.study.studies import STUDIES, build_study, get_study, ids_study
from tests.test_experiments import TINY

# One seed keeps the six frozen-vs-study reruns affordable; row
# identity does not depend on the seed count.
TINY1 = dataclasses.replace(TINY, seeds=1)


def tiny_config(**changes) -> ScenarioConfig:
    """A minimal scenario config for expansion-only tests (never run)."""
    from repro.harness.experiments import rwp_scenario
    cfg = rwp_scenario(TINY, 10.0, 10.0, validity=30.0, interest=0.5)
    return cfg.with_changes(**changes) if changes else cfg


def tiny_spec(grid, **overrides) -> StudySpec:
    """A one-metric spec over ``grid`` for expansion-only tests."""
    spec = dict(study_id="test-study", title="t", base=tiny_config(),
                grid=grid, seeds=(0,), metrics=(Metric("reliability"),))
    spec.update(overrides)
    return StudySpec(**spec)


class TestSetFieldPath:
    def test_sets_top_level_field(self):
        cfg = set_field_path(tiny_config(), "protocol", "gossip")
        assert cfg.protocol == "gossip"

    def test_sets_nested_field_immutably(self):
        base = tiny_config()
        cfg = set_field_path(base, "frugal.eviction_policy", "fifo")
        assert cfg.frugal.eviction_policy == "fifo"
        assert base.frugal.eviction_policy != "fifo"

    def test_unknown_field_names_known_fields(self):
        with pytest.raises(ValueError, match="known fields"):
            set_field_path(tiny_config(), "frugal.evicton_policy", "fifo")

    def test_none_intermediate_rejected(self):
        # The plain rwp config carries no energy instrumentation.
        with pytest.raises(ValueError, match="is None"):
            set_field_path(tiny_config(), "energy.duty_cycle", None)

    def test_non_dataclass_descent_rejected(self):
        with pytest.raises(ValueError, match="not a dataclass"):
            set_field_path(tiny_config(), "protocol.x", 1)


class TestAxis:
    def test_path_defaults_to_name(self):
        axis = Axis(name="protocol", values=("frugal", "gossip"))
        assert axis.paths() == ("protocol",)

    def test_tuple_path_sets_every_field(self):
        axis = Axis(name="speed", values=(7.0,),
                    path=("mobility.speed_min", "mobility.speed_max"))
        (_, transform), = axis.points()
        cfg = transform(tiny_config())
        assert cfg.mobility.speed_min == cfg.mobility.speed_max == 7.0

    def test_cells_override_explodes_composite_values(self):
        axis = Axis(name="outage", values=(("crash", 0.5),),
                    apply=lambda cfg, v: cfg,
                    cells=lambda v: {"outage": v[0], "radius_frac": v[1]})
        (cells, _), = axis.points()
        assert cells == {"outage": "crash", "radius_frac": 0.5}

    def test_path_and_apply_mutually_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            Axis(name="x", values=(1,), path="protocol",
                 apply=lambda cfg, v: cfg)

    def test_empty_values_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            Axis(name="x", values=())


class TestToggles:
    def two_components(self):
        return (Component("backoff", off={"frugal.use_backoff": False}),
                Component("ids",
                          off={"frugal.announce_on_new_neighbor": False}))

    def test_default_variants_all_on_then_leave_one_out(self):
        toggles = Toggles(components=self.two_components())
        labels = [toggles.label(v) for v in toggles.resolved_variants()]
        assert labels == ["backoff+ids", "no-backoff", "no-ids"]

    def test_explicit_label_wins(self):
        toggles = Toggles(components=self.two_components(),
                          variants=(Variant(enabled=(), label="bare"),))
        assert [toggles.label(v)
                for v in toggles.resolved_variants()] == ["bare"]

    def test_transforms_compose_in_component_order(self):
        toggles = Toggles(components=self.two_components())
        points = dict((cells["variant"], transform)
                      for cells, transform in toggles.points())
        cfg = points["no-backoff"](tiny_config())
        assert cfg.frugal.use_backoff is False
        assert cfg.frugal.announce_on_new_neighbor is True
        cfg = points["backoff+ids"](tiny_config())
        assert cfg.frugal.use_backoff is True

    def test_later_component_wins_on_shared_path(self):
        toggles = Toggles(components=(
            Component("a", off={"frugal.hb_upper_bound": 3.0}),
            Component("b", off={"frugal.hb_upper_bound": 7.0})))
        points = dict((cells["variant"], transform)
                      for cells, transform in toggles.points())
        cfg = points["no-a"](tiny_config())
        assert cfg.frugal.hb_upper_bound == 3.0

    def test_unknown_variant_component_rejected(self):
        with pytest.raises(ValueError, match="unknown components"):
            Toggles(components=self.two_components(),
                    variants=(Variant(enabled=("bakcoff",)),))

    def test_duplicate_component_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Toggles(components=(Component("a"), Component("a")))


class TestExpand:
    def test_rightmost_dimension_varies_fastest(self):
        spec = tiny_spec(grid=(
            Axis(name="protocol", values=("frugal", "gossip")),
            Axis(name="speed", values=(5.0, 10.0),
                 path=("mobility.speed_min", "mobility.speed_max"))))
        cells = [c.cells for c in expand(spec)]
        assert cells == [
            {"protocol": "frugal", "speed": 5.0},
            {"protocol": "frugal", "speed": 10.0},
            {"protocol": "gossip", "speed": 5.0},
            {"protocol": "gossip", "speed": 10.0}]

    def test_expansion_is_deterministic(self):
        spec = tiny_spec(grid=(
            Axis(name="protocol", values=("frugal", "gossip")),
            Toggles(components=(Component(
                "ids", off={"frugal.announce_on_new_neighbor": False}),))))
        first, second = expand(spec), expand(spec)
        assert [c.cells for c in first] == [c.cells for c in second]
        assert [c.config for c in first] == [c.config for c in second]

    def test_configs_reflect_cell_coordinates(self):
        spec = tiny_spec(grid=(
            Axis(name="protocol", values=("frugal", "gossip")),))
        for cell in expand(spec):
            assert cell.config.protocol == cell.cells["protocol"]

    def test_row_key_clash_rejected(self):
        spec = tiny_spec(grid=(
            Axis(name="protocol", values=("frugal",)),
            Axis(name="protocol2", values=("gossip",),
                 cells=lambda v: {"protocol": v})))
        with pytest.raises(ValueError, match="more than one grid"):
            expand(spec)


class TestSpecValidation:
    def test_empty_grid_seeds_metrics_rejected(self):
        with pytest.raises(ValueError, match="empty grid"):
            tiny_spec(grid=())
        with pytest.raises(ValueError, match="no seeds"):
            tiny_spec(grid=(Axis(name="protocol", values=("frugal",)),),
                      seeds=())
        with pytest.raises(ValueError, match="no metrics"):
            tiny_spec(grid=(Axis(name="protocol", values=("frugal",)),),
                      metrics=())

    def test_duplicate_metric_columns_rejected(self):
        with pytest.raises(ValueError, match="repeats metric"):
            tiny_spec(grid=(Axis(name="protocol", values=("frugal",)),),
                      metrics=(Metric("reliability"),
                               Metric("reliability")))

    def test_objective_goal_validated(self):
        with pytest.raises(ValueError, match="max.*min|'max' or 'min'"):
            Objective("reliability", "maximise")

    def test_pivot_coerces_single_keys(self):
        pivot = PivotSpec(rows="protocol", cols="churn", value="rel")
        assert pivot.rows == ("protocol",) and pivot.cols == ("churn",)


class TestPareto:
    R_MAX_J_MIN = (Objective("rel", "max"), Objective("joules", "min"))

    def test_simple_dominance(self):
        rows = [{"rel": 0.9, "joules": 10.0},
                {"rel": 0.8, "joules": 12.0},   # worse in both
                {"rel": 0.95, "joules": 20.0}]  # a trade-off: survives
        result = pareto_frontier(rows, self.R_MAX_J_MIN)
        assert list(result.frontier) == [rows[0], rows[2]]
        assert [d.row for d in result.dominated] == [rows[1]]
        assert result.dominated[0].by == rows[0]

    def test_exact_ties_both_survive(self):
        rows = [{"rel": 0.9, "joules": 10.0}, {"rel": 0.9, "joules": 10.0}]
        result = pareto_frontier(rows, self.R_MAX_J_MIN)
        assert len(result.frontier) == 2 and not result.dominated
        assert not dominates([0.9, 10.0], [0.9, 10.0], self.R_MAX_J_MIN)

    def test_partial_tie_decided_by_strict_objective(self):
        rows = [{"rel": 0.9, "joules": 10.0}, {"rel": 0.9, "joules": 11.0}]
        result = pareto_frontier(rows, self.R_MAX_J_MIN)
        assert list(result.frontier) == [rows[0]]

    def test_non_finite_values_rejected(self):
        for bad in (float("inf"), float("nan")):
            with pytest.raises(ValueError, match="non-finite"):
                pareto_frontier([{"rel": bad, "joules": 1.0}],
                                self.R_MAX_J_MIN)

    def test_missing_objective_key_names_columns(self):
        with pytest.raises(KeyError, match="known columns"):
            pareto_frontier([{"rel": 0.9}], self.R_MAX_J_MIN)

    def test_no_objectives_rejected(self):
        with pytest.raises(ValueError, match="at least one objective"):
            pareto_frontier([{"rel": 0.9}], ())

    def test_frontier_report_accounts_for_every_point(self):
        rows = [{"p": "a", "rel": 0.9, "joules": 10.0},
                {"p": "b", "rel": 0.8, "joules": 12.0}]
        text = frontier_report(pareto_frontier(rows, self.R_MAX_J_MIN),
                               cell_keys=("p",))
        assert "frontier: 1 of 2 points; 1 dominated" in text
        assert "rel max, joules min" in text
        assert "p=a" in text            # the dominating witness label


class TestRegistry:
    def test_every_study_registered_as_experiment(self):
        assert set(STUDIES) <= set(ALL_EXPERIMENTS)
        assert "study-frontier" in STUDIES

    def test_unknown_study_names_known_ones(self):
        with pytest.raises(KeyError, match="known studies"):
            get_study("abl-typo")

    def test_build_study_ids_match(self):
        for study_id in STUDIES:
            assert build_study(study_id, TINY1).study_id == study_id

    def test_frontier_spec_shape(self):
        spec = build_study("study-frontier", TINY1)
        assert len(spec.objectives) >= 3
        assert spec.pivot is not None
        assert len(expand(spec)) == 18  # 3 protocols x 3 churn x 2 duty
        assert spec.axis_keys() == ("protocol", "churn_per_min",
                                    "awake_fraction")


class TestDeclarationEquivalence:
    """The tentpole proof: collapsed studies == frozen hand-written."""

    @pytest.mark.parametrize("study_id", sorted(frozen.FROZEN_ABLATIONS))
    def test_study_reproduces_frozen_ablation(self, study_id, tmp_path):
        reference = frozen.FROZEN_ABLATIONS[study_id](TINY1)
        collapsed = ALL_EXPERIMENTS[study_id](TINY1)
        assert collapsed.rows == reference.rows
        # Same column order per row, so the CSVs are byte-identical.
        assert ([list(r) for r in collapsed.rows]
                == [list(r) for r in reference.rows])
        assert collapsed.parameters == reference.parameters
        assert collapsed.title == reference.title
        assert collapsed.experiment_id == reference.experiment_id
        ref_csv, new_csv = tmp_path / "ref.csv", tmp_path / "new.csv"
        to_csv(reference, str(ref_csv))
        to_csv(collapsed, str(new_csv))
        assert ref_csv.read_bytes() == new_csv.read_bytes()

    def test_serial_parallel_and_cached_runs_identical(self, tmp_path):
        spec = ids_study(TINY)
        serial = run_study(spec, parallel.ParallelRunner(jobs=1))
        workers = run_study(spec, parallel.ParallelRunner(jobs=2))
        cached_runner = parallel.ParallelRunner(
            jobs=1, cache=ResultCache(tmp_path / "cache"))
        cold = run_study(spec, cached_runner)
        assert workers.experiment.rows == serial.experiment.rows
        assert cold.experiment.rows == serial.experiment.rows

        # A warm-cache re-run must execute zero scenarios.
        cached_runner.stats.reset()
        warm = run_study(spec, cached_runner)
        assert warm.experiment.rows == serial.experiment.rows
        assert cached_runner.stats.executed == 0
        assert cached_runner.stats.cache_hits == len(expand(spec)) * len(
            spec.seeds)


class TestRunStudy:
    def test_unknown_metric_key_names_summary_keys(self):
        spec = tiny_spec(
            grid=(Axis(name="protocol", values=("frugal",)),),
            metrics=(Metric("joules_per_node"),))
        with pytest.raises(KeyError, match="known keys"):
            run_study(spec)

    def test_notes_carry_pivot_and_frontier(self):
        spec = tiny_spec(
            grid=(Axis(name="protocol", values=("frugal", "gossip")),),
            metrics=(Metric("reliability"), Metric("bandwidth_bytes")),
            objectives=(Objective("reliability", "max"),
                        Objective("bandwidth_bytes", "min")),
            pivot=PivotSpec(rows="protocol", cols="protocol",
                            value="reliability"))
        result = run_study(spec)
        assert any("Pareto frontier" in note
                   for note in result.experiment.notes)
        assert any("reliability by protocol" in note
                   for note in result.experiment.notes)
        assert result.frontier().frontier

    def test_frontier_requires_objectives(self):
        spec = tiny_spec(grid=(Axis(name="protocol", values=("frugal",)),))
        with pytest.raises(ValueError, match="no objectives"):
            run_study(spec).frontier()

    def test_std_metric_emits_std_column(self):
        spec = tiny_spec(
            grid=(Axis(name="protocol", values=("frugal",)),),
            seeds=(0, 1),
            metrics=(Metric("reliability", std=True),))
        result = run_study(spec)
        assert "reliability_std" in result.experiment.rows[0]


class TestExperimentResultErrors:
    """Regression: typo'd column names must raise, not return nothing."""

    def result(self):
        from repro.harness.experiments import ExperimentResult
        return ExperimentResult(
            experiment_id="x", title="t", parameters={},
            rows=[{"protocol": "frugal", "reliability": 1.0}])

    def test_column_typo_raises_with_known_columns(self):
        with pytest.raises(KeyError, match="known columns.*protocol"):
            self.result().column("reliabilty")

    def test_filter_typo_raises_with_known_columns(self):
        with pytest.raises(KeyError, match="known columns.*reliability"):
            self.result().filter(protocl="frugal")

    def test_valid_lookups_still_work(self):
        result = self.result()
        assert result.column("reliability") == [1.0]
        assert result.filter(protocol="frugal") == result.rows
        assert result.filter(protocol="gossip") == []
