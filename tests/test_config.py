"""Unit tests for protocol configuration (repro.core.config)."""

from __future__ import annotations

import pytest

from repro.core.config import FrugalConfig


class TestDefaults:
    def test_paper_section51_values(self):
        cfg = FrugalConfig.paper_random_waypoint()
        assert cfg.x == 40.0
        assert cfg.hb2bo == 2.0
        assert cfg.hb2ngc == 2.5
        assert cfg.hb_upper_bound == 1.0

    def test_default_hb_delay_is_fig4_15_seconds(self):
        assert FrugalConfig().hb_delay == 15.0

    def test_city_preset_sweeps_upper_bound(self):
        cfg = FrugalConfig.paper_city_section(hb_upper_bound=3.0)
        assert cfg.hb_upper_bound == 3.0


class TestValidation:
    @pytest.mark.parametrize("field,value", [
        ("hb_delay", 0.0),
        ("x", -1.0),
        ("hb_lower_bound", 0.0),
        ("hb2ngc", 0.0),
        ("hb2bo", -2.0),
        ("hb_jitter", -0.1),
        ("backoff_jitter_frac", -0.5),
        ("event_table_capacity", 0),
        ("eviction_policy", "lru"),
    ])
    def test_bad_values_rejected(self, field, value):
        with pytest.raises(ValueError):
            FrugalConfig(**{field: value})

    def test_bounds_must_be_ordered(self):
        with pytest.raises(ValueError):
            FrugalConfig(hb_lower_bound=2.0, hb_upper_bound=1.0)

    def test_unbounded_event_table_allowed(self):
        assert FrugalConfig(event_table_capacity=None) \
            .event_table_capacity is None


class TestDerivedDelays:
    def test_ngc_delay_is_hb_times_factor(self):
        cfg = FrugalConfig(hb2ngc=2.5)
        assert cfg.ngc_delay(2.0) == 5.0

    def test_backoff_shrinks_with_more_events(self):
        """Fig. 1 part II: p1 with more events gets the shorter back-off."""
        cfg = FrugalConfig(hb2bo=2.0)
        assert cfg.backoff_delay(1.0, 3) < cfg.backoff_delay(1.0, 1)
        assert cfg.backoff_delay(1.0, 1) == 0.5
        assert cfg.backoff_delay(1.0, 2) == 0.25

    def test_backoff_requires_something_to_send(self):
        with pytest.raises(ValueError):
            FrugalConfig().backoff_delay(1.0, 0)


class TestAdaptedHbDelay:
    def test_fig8_rule_x_over_speed(self):
        cfg = FrugalConfig(x=40.0, hb_upper_bound=10.0, hb_lower_bound=0.1)
        assert cfg.adapted_hb_delay(10.0, current=15.0) == 4.0

    def test_clamped_to_upper_bound(self):
        cfg = FrugalConfig(x=40.0, hb_upper_bound=1.0)
        assert cfg.adapted_hb_delay(10.0, current=15.0) == 1.0

    def test_clamped_to_lower_bound(self):
        cfg = FrugalConfig(x=40.0, hb_lower_bound=0.5, hb_upper_bound=1.0)
        assert cfg.adapted_hb_delay(1000.0, current=15.0) == 0.5

    def test_no_speed_info_still_clamps(self):
        """Fig. 8 lines 7-8 sit outside the conditional: even a static
        network converges to the upper bound."""
        cfg = FrugalConfig(hb_upper_bound=1.0)
        assert cfg.adapted_hb_delay(None, current=15.0) == 1.0

    def test_zero_average_speed_treated_as_no_info(self):
        cfg = FrugalConfig(hb_upper_bound=1.0)
        assert cfg.adapted_hb_delay(0.0, current=15.0) == 1.0

    def test_adaptive_disabled_pins_to_upper_bound(self):
        cfg = FrugalConfig(adaptive_heartbeat=False, hb_upper_bound=5.0)
        assert cfg.adapted_hb_delay(10.0, current=2.0) == 5.0


class TestWithChanges:
    def test_returns_modified_copy(self):
        base = FrugalConfig()
        derived = base.with_changes(x=80.0)
        assert derived.x == 80.0
        assert base.x == 40.0

    def test_changes_are_validated(self):
        with pytest.raises(ValueError):
            FrugalConfig().with_changes(hb2bo=0.0)
