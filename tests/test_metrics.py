"""Unit tests for the measurement layer (repro.metrics)."""

from __future__ import annotations

import pytest

from repro.core import FrugalConfig, FrugalPubSub
from repro.metrics import (MetricsCollector, event_reliability,
                           mean_reliability, reliability_spread)
from repro.metrics.reliability import ReliabilityReport
from repro.mobility import Stationary
from repro.net import Node, RadioConfig, WirelessMedium
from repro.net.messages import EventBatch, Heartbeat
from repro.sim import RngRegistry, Simulator
from repro.sim.space import Vec2

from tests.helpers import make_event


def build_pair(sim, rngs, subscribe=(".a", ".a"), distance=50.0):
    medium = WirelessMedium(sim, RadioConfig(range_override_m=100.0),
                            rng=rngs.stream("medium"))
    collector = MetricsCollector(medium)
    nodes = []
    for i, topic in enumerate(subscribe):
        proto = FrugalPubSub(FrugalConfig())
        node = Node(i, sim, medium,
                    Stationary(position=Vec2(i * distance, 0.0)),
                    proto, rngs.stream("node", i))
        proto.subscribe(topic)
        collector.track_node(node)
        nodes.append(node)
    for n in nodes:
        n.start()
    return medium, collector, nodes


class TestTransmitAccounting:
    def test_bytes_and_frames_counted_per_sender(self, sim, rngs):
        medium, collector, nodes = build_pair(sim, rngs)
        sim.run(until=3.2)
        stats = collector.stats[0]
        assert stats.frames_sent >= 3                # heartbeats at least
        assert stats.bytes_sent >= 3 * 50
        assert stats.bytes_by_kind["Heartbeat"] >= 150

    def test_event_payloads_counted(self, sim, rngs):
        medium, collector, nodes = build_pair(sim, rngs)
        sim.run(until=2.5)
        event = make_event(publisher=0, topic=".a.x", validity=60.0,
                           now=sim.now)
        collector.record_publication(event)
        nodes[0].protocol.publish(event)
        sim.run(until=4.0)
        assert collector.stats[0].events_sent >= 1
        assert collector.bytes_by_kind().get("EventBatch", 0) >= 400

    def test_freeze_suspends_counting(self, sim, rngs):
        medium, collector, nodes = build_pair(sim, rngs)
        collector.freeze()
        sim.run(until=5.0)
        assert collector.total_bytes() == 0
        collector.resume()
        sim.run(until=8.0)
        assert collector.total_bytes() > 0

    def test_freeze_suspends_delivery_timestamps(self, sim, rngs):
        """Deliveries outside the measurement window must not leak into
        the reliability figures."""
        medium, collector, nodes = build_pair(sim, rngs)
        event = make_event(publisher=0, topic=".a.x", validity=600.0,
                           now=0.0)
        collector.record_publication(event)
        collector.freeze()
        nodes[1].deliver(event)
        assert collector.deliveries_of(event.event_id) == {}
        collector.resume()
        nodes[1].deliver(event)
        assert 1 in collector.deliveries_of(event.event_id)


class TestReceptionClassification:
    def test_first_reception_useful_second_duplicate(self, sim, rngs):
        medium, collector, nodes = build_pair(sim, rngs)
        event = make_event(publisher=9, topic=".a.x", validity=600.0,
                           now=0.0)
        # Deliver the same payload twice to node 1 via raw medium hooks.
        msg = EventBatch(sender=0, events=(event,))
        collector._on_receive(1, msg)
        collector._on_receive(1, msg)
        stats = collector.stats[1]
        assert stats.useful_receptions == 1
        assert stats.duplicates_received == 1
        assert stats.parasites_received == 0

    def test_parasite_reception_counted_every_time(self, sim, rngs):
        medium, collector, nodes = build_pair(sim, rngs,
                                              subscribe=(".a", ".zzz"))
        event = make_event(publisher=9, topic=".a.x", validity=600.0,
                           now=0.0)
        msg = EventBatch(sender=0, events=(event,))
        collector._on_receive(1, msg)
        collector._on_receive(1, msg)
        assert collector.stats[1].parasites_received == 2
        assert collector.stats[1].duplicates_received == 0

    def test_heartbeats_are_not_event_receptions(self, sim, rngs):
        medium, collector, nodes = build_pair(sim, rngs)
        collector._on_receive(1, Heartbeat(sender=0,
                                           subscriptions=frozenset()))
        stats = collector.stats[1]
        assert stats.useful_receptions == 0
        assert stats.parasites_received == 0


class TestPerProcessAggregates:
    def test_division_by_node_count(self, sim, rngs):
        medium, collector, nodes = build_pair(sim, rngs)
        sim.run(until=2.2)
        total = collector.total_bytes()
        assert collector.bandwidth_per_process_bytes() == \
            pytest.approx(total / 2)

    def test_empty_collector_returns_zero(self, sim, rngs):
        medium = WirelessMedium(sim, RadioConfig(range_override_m=10.0))
        collector = MetricsCollector(medium)
        assert collector.bandwidth_per_process_bytes() == 0.0
        assert collector.duplicates_per_process() == 0.0


class TestDeliveryTimes:
    def test_delivery_timestamps_recorded(self, sim, rngs):
        medium, collector, nodes = build_pair(sim, rngs)
        sim.run(until=2.5)
        event = make_event(publisher=0, topic=".a.x", validity=60.0,
                           now=sim.now)
        collector.record_publication(event)
        nodes[0].protocol.publish(event)
        publish_time = sim.now
        sim.run(until=6.0)
        times = collector.deliveries_of(event.event_id)
        assert times[0] == publish_time          # local delivery
        assert times[1] > publish_time           # over the air

    def test_first_delivery_wins(self, sim, rngs):
        medium, collector, nodes = build_pair(sim, rngs)
        event = make_event(publisher=0, topic=".a.x", validity=60.0,
                           now=0.0)
        collector._on_deliver(nodes[1], event)
        t_first = collector.deliveries_of(event.event_id)[1]
        sim.run(until=1.0)
        collector._on_deliver(nodes[1], event)
        assert collector.deliveries_of(event.event_id)[1] == t_first


class TestReliabilityMath:
    def make_report(self, **kw):
        defaults = dict(event_id=make_event().event_id, subscribers=10,
                        delivered_in_time=5, delivered_late=1)
        defaults.update(kw)
        return ReliabilityReport(**defaults)

    def test_reliability_fraction(self):
        assert self.make_report().reliability == 0.5

    def test_zero_subscribers(self):
        assert self.make_report(subscribers=0,
                                delivered_in_time=0).reliability == 0.0

    def test_event_reliability_respects_validity(self, sim, rngs):
        medium, collector, nodes = build_pair(sim, rngs)
        event = make_event(publisher=0, topic=".a.x", validity=10.0,
                           now=0.0)
        collector._on_deliver(nodes[0], event)          # t=0, in time
        sim.run(until=50.0)
        collector._on_deliver(nodes[1], event)          # t=50, too late
        report = event_reliability(collector, event, [0, 1])
        assert report.delivered_in_time == 1
        assert report.delivered_late == 1
        assert report.reliability == 0.5

    def test_mean_and_spread(self):
        reports = [self.make_report(delivered_in_time=n)
                   for n in (2, 5, 8)]
        assert mean_reliability(reports) == pytest.approx(0.5)
        assert reliability_spread(reports) == pytest.approx(0.6)

    def test_empty_sequences(self):
        assert mean_reliability([]) == 0.0
        assert reliability_spread([]) == 0.0
