"""End-to-end integration tests: full worlds, multi-hop dissemination,
topic hierarchies and the paper's qualitative claims."""

from __future__ import annotations

import pytest

from repro.core import FrugalConfig, FrugalPubSub
from repro.core.events import EventFactory
from repro.harness import (Publication, RandomWaypointSpec, ScenarioConfig,
                           run_scenario)
from repro.metrics import MetricsCollector
from repro.mobility import Stationary
from repro.net import Node, RadioConfig, WirelessMedium
from repro.sim import RngRegistry, Simulator
from repro.sim.space import Vec2


def build_chain(sim, rngs, positions, topics, range_m=100.0,
                config=None):
    """A line of stationary nodes; topics[i] is node i's subscription."""
    medium = WirelessMedium(sim, RadioConfig(range_override_m=range_m),
                            rng=rngs.stream("medium"))
    collector = MetricsCollector(medium)
    nodes = []
    for i, (pos, topic) in enumerate(zip(positions, topics)):
        proto = FrugalPubSub(config or FrugalConfig())
        node = Node(i, sim, medium, Stationary(position=pos), proto,
                    rngs.stream("node", i))
        if topic:
            proto.subscribe(topic)
        collector.track_node(node)
        nodes.append(node)
    for n in nodes:
        n.start()
    return medium, collector, nodes


class TestMultiHop:
    def test_event_crosses_three_hops(self, sim, rngs):
        """0 -- 1 -- 2 -- 3 spaced at 90 m with a 100 m radio: the event
        must be store-and-forwarded hop by hop."""
        positions = [Vec2(90.0 * i, 0.0) for i in range(4)]
        _, collector, nodes = build_chain(sim, rngs, positions,
                                          [".a"] * 4)
        sim.run(until=3.3)
        event = EventFactory(0).create(".a.x", validity=120.0, now=sim.now)
        nodes[0].protocol.publish(event)
        sim.run(until=20.0)
        for node in nodes[1:]:
            assert node.delivered_events == [event], f"node {node.id}"

    def test_uninterested_relay_does_not_carry(self, sim, rngs):
        """A non-subscribed middle node drops parasite events, so the far
        subscriber stays unreached (the frugality trade-off: only
        interested processes forward)."""
        positions = [Vec2(0, 0), Vec2(90, 0), Vec2(180, 0)]
        _, _, nodes = build_chain(sim, rngs, positions,
                                  [".a", ".zzz", ".a"])
        sim.run(until=3.3)
        event = EventFactory(0).create(".a.x", validity=60.0, now=sim.now)
        nodes[0].protocol.publish(event)
        sim.run(until=30.0)
        assert nodes[2].delivered_events == []

    def test_hierarchy_entitlement_respected_end_to_end(self, sim, rngs):
        """Super-topic subscriber receives subtopic events; subtopic
        subscriber does not receive super-topic events (Fig. 1
        semantics)."""
        positions = [Vec2(0, 0), Vec2(50, 0), Vec2(100, 0)]
        _, _, nodes = build_chain(
            sim, rngs, positions, [".t0.t1", ".t0.t1.t2", ".t0"])
        sim.run(until=3.3)
        sub_event = EventFactory(1).create(".t0.t1.t2", validity=60.0,
                                           now=sim.now)
        nodes[1].protocol.publish(sub_event)
        sim.run(until=8.2)
        sup_event = EventFactory(0).create(".t0.t1", validity=60.0,
                                           now=sim.now)
        nodes[0].protocol.publish(sup_event)
        sim.run(until=20.0)
        ids_of = lambda n: [e.event_id for e in n.delivered_events]
        assert sub_event.event_id in ids_of(nodes[0])   # .t0.t1 covers it
        assert sub_event.event_id in ids_of(nodes[2])   # .t0 covers it
        assert sup_event.event_id in ids_of(nodes[2])   # .t0 covers it
        assert sup_event.event_id not in ids_of(nodes[1])  # not entitled

    def test_fig1_three_process_walkthrough(self, sim, rngs):
        """The paper's illustration: p2 (T2 subscriber, holds e4, e5)
        serves p1 (T1 subscriber); later both serve p3 (T0 subscriber)."""
        p1_pos, p2_pos, p3_pos = Vec2(0, 0), Vec2(50, 0), Vec2(80, 0)
        _, _, nodes = build_chain(sim, rngs, [p1_pos, p2_pos, p3_pos],
                                  [".t0.t1", ".t0.t1.t2", ".t0"])
        p1, p2, p3 = nodes
        sim.run(until=2.5)
        f2 = EventFactory(1)
        e4 = f2.create(".t0.t1.t2", validity=120.0, now=sim.now)
        e5 = f2.create(".t0.t1.t2", validity=120.0, now=sim.now)
        p2.protocol.publish(e4)
        p2.protocol.publish(e5)
        f1 = EventFactory(0)
        sim.run(until=4.5)
        e3 = f1.create(".t0.t1", validity=120.0, now=sim.now)
        p1.protocol.publish(e3)
        sim.run(until=30.0)
        assert {e.event_id for e in p1.delivered_events} == \
            {e3.event_id, e4.event_id, e5.event_id}
        assert {e.event_id for e in p3.delivered_events} == \
            {e3.event_id, e4.event_id, e5.event_id}
        # p2 is entitled to T2 only.
        assert {e.event_id for e in p2.delivered_events} == \
            {e4.event_id, e5.event_id}


class TestSuppression:
    def test_duplicate_suppression_in_dense_cluster(self, sim, rngs):
        """Ten co-located holders, one needy newcomer: overhearing plus
        back-off must keep the number of transmissions far below ten."""
        positions = [Vec2(float(i), 0.0) for i in range(10)]
        positions.append(Vec2(5.0, 30.0))    # the newcomer
        medium, collector, nodes = build_chain(
            sim, rngs, positions, [".a"] * 11)
        holders, newcomer = nodes[:10], nodes[10]
        newcomer.crash()                     # silent while holders seed
        sim.run(until=2.5)
        event = EventFactory(0).create(".a.x", validity=300.0, now=sim.now)
        holders[0].protocol.publish(event)
        sim.run(until=6.0)
        collector.resume()
        batches_before = sum(s.events_sent for s in collector.stats.values())
        newcomer.recover()
        sim.run(until=20.0)
        assert event in newcomer.delivered_events
        batches_after = sum(s.events_sent for s in collector.stats.values())
        # Ten holders could each have sent it once; suppression should cut
        # that far down (a few sends, not ten).
        assert batches_after - batches_before <= 4


class TestScenarioLevelClaims:
    def test_validity_monotonicity(self):
        """Longer validity never hurts reliability (paper Figs. 11/16):
        averaged over seeds, 150 s validity beats 20 s in a sparse world."""
        def reliability(validity: float) -> float:
            total = 0.0
            seeds = [1, 2, 3, 4]
            for seed in seeds:
                cfg = ScenarioConfig(
                    n_processes=12,
                    mobility=RandomWaypointSpec(2000.0, 2000.0, 10.0, 10.0),
                    duration=validity + 10.0, warmup=20.0, seed=seed,
                    subscriber_fraction=1.0,
                    publications=(Publication(at=2.0, validity=validity),))
                total += run_scenario(cfg).reliability()
            return total / len(seeds)
        assert reliability(150.0) >= reliability(20.0)

    def test_parasites_zero_when_everyone_subscribes(self):
        cfg = ScenarioConfig(
            n_processes=10,
            mobility=RandomWaypointSpec(1000.0, 1000.0, 10.0, 10.0),
            duration=60.0, warmup=10.0, seed=5,
            subscriber_fraction=1.0,
            publications=(Publication(at=2.0, validity=40.0),))
        result = run_scenario(cfg)
        assert result.parasites_per_process() == 0.0

    def test_frugal_parasites_far_below_flooding(self):
        base = ScenarioConfig(
            n_processes=12,
            mobility=RandomWaypointSpec(1200.0, 1200.0, 10.0, 10.0),
            duration=60.0, warmup=10.0, seed=2,
            subscriber_fraction=0.5,
            publications=(Publication(at=2.0, validity=40.0),))
        frugal = run_scenario(base)
        flood = run_scenario(base.with_changes(protocol="simple-flooding"))
        assert frugal.parasites_per_process() < \
            flood.parasites_per_process() / 5
