"""Unit tests for the discrete-event kernel (repro.sim.kernel)."""

from __future__ import annotations

import pytest

from repro.sim.kernel import (PeriodicTask, SimulationError, Simulator,
                              TimerWheel, WheelPeriodicTask)


class TestScheduling:
    def test_schedule_runs_callback_at_time(self, sim):
        out = []
        sim.schedule(2.5, out.append, "x")
        sim.run(until=10.0)
        assert out == ["x"]
        assert sim.now == 10.0

    def test_events_run_in_time_order(self, sim):
        out = []
        sim.schedule(3.0, out.append, 3)
        sim.schedule(1.0, out.append, 1)
        sim.schedule(2.0, out.append, 2)
        sim.run(until=5.0)
        assert out == [1, 2, 3]

    def test_same_time_fifo_tie_break(self, sim):
        out = []
        for i in range(10):
            sim.schedule(1.0, out.append, i)
        sim.run(until=2.0)
        assert out == list(range(10))

    def test_call_at_absolute_time(self, sim):
        out = []
        sim.call_at(7.0, out.append, "later")
        sim.run(until=6.9)
        assert out == []
        sim.run(until=7.0)
        assert out == ["later"]

    def test_schedule_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_call_at_in_past_rejected(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run(until=5.0)
        with pytest.raises(SimulationError):
            sim.call_at(4.0, lambda: None)

    def test_zero_delay_runs_now(self, sim):
        out = []
        sim.schedule(1.0, lambda: sim.schedule(0.0, out.append, "nested"))
        sim.run(until=1.0)
        assert out == ["nested"]
        assert sim.now == 1.0

    def test_now_advances_to_until_even_without_events(self, sim):
        sim.run(until=42.0)
        assert sim.now == 42.0

    def test_events_after_until_stay_queued(self, sim):
        out = []
        sim.schedule(5.0, out.append, "late")
        sim.run(until=2.0)
        assert out == []
        sim.run(until=5.0)
        assert out == ["late"]

    def test_events_processed_counter(self, sim):
        for i in range(5):
            sim.schedule(float(i), lambda: None)
        sim.run(until=10.0)
        assert sim.events_processed == 5


class TestCancellation:
    def test_cancelled_timer_does_not_fire(self, sim):
        out = []
        timer = sim.schedule(1.0, out.append, "no")
        timer.cancel()
        sim.run(until=2.0)
        assert out == []

    def test_cancel_after_fire_is_noop(self, sim):
        out = []
        timer = sim.schedule(1.0, out.append, "yes")
        sim.run(until=2.0)
        timer.cancel()
        assert out == ["yes"]

    def test_active_property_lifecycle(self, sim):
        timer = sim.schedule(1.0, lambda: None)
        assert timer.active
        sim.run(until=2.0)
        assert not timer.active
        other = sim.schedule(1.0, lambda: None)
        other.cancel()
        assert not other.active

    def test_cancel_from_within_event(self, sim):
        out = []
        victim = sim.schedule(2.0, out.append, "victim")
        sim.schedule(1.0, victim.cancel)
        sim.run(until=3.0)
        assert out == []


class TestRunSemantics:
    def test_run_until_idle_drains_queue(self, sim):
        out = []
        sim.schedule(1.0, lambda: sim.schedule(1.0, out.append, "deep"))
        sim.run_until_idle()
        assert out == ["deep"]
        assert sim.pending == 0

    def test_stop_halts_processing(self, sim):
        out = []
        sim.schedule(1.0, out.append, 1)
        sim.schedule(2.0, sim.stop)
        sim.schedule(3.0, out.append, 3)
        sim.run(until=10.0)
        assert out == [1]
        # The queue still holds the unprocessed event.
        sim.run(until=10.0)
        assert out == [1, 3]

    def test_max_events_budget_raises(self, sim):
        def reschedule():
            sim.schedule(1.0, reschedule)
        sim.schedule(1.0, reschedule)
        with pytest.raises(SimulationError, match="budget"):
            sim.run_until_idle(max_events=100)

    def test_reentrant_run_rejected(self, sim):
        def nested():
            sim.run(until=100.0)
        sim.schedule(1.0, nested)
        with pytest.raises(SimulationError, match="already running"):
            sim.run(until=2.0)

    def test_run_is_reusable_after_error(self, sim):
        sim.schedule(1.0, lambda: None)
        with pytest.raises(SimulationError):
            sim.call_at(-1.0, lambda: None)
        sim.run(until=2.0)
        assert sim.events_processed == 1


class TestPeriodicTask:
    def test_fires_every_period(self, sim):
        ticks = []
        PeriodicTask(sim, 1.0, lambda: ticks.append(sim.now))
        sim.run(until=5.0)
        assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_start_delay_overrides_first_tick(self, sim):
        ticks = []
        PeriodicTask(sim, 2.0, lambda: ticks.append(sim.now),
                     start_delay=0.5)
        sim.run(until=5.0)
        assert ticks == [0.5, 2.5, 4.5]

    def test_stop_prevents_future_ticks(self, sim):
        ticks = []
        task = PeriodicTask(sim, 1.0, lambda: ticks.append(sim.now))
        sim.schedule(2.5, task.stop)
        sim.run(until=10.0)
        assert ticks == [1.0, 2.0]
        assert not task.running

    def test_set_period_takes_effect_next_tick(self, sim):
        ticks = []
        task = PeriodicTask(sim, 1.0, lambda: ticks.append(sim.now))
        # set_period was scheduled before the t=2 tick was armed, so FIFO
        # tie-breaking runs it first: the t=2 tick re-arms at the new period.
        sim.schedule(2.0, task.set_period, 3.0)
        sim.run(until=9.0)
        assert ticks == [1.0, 2.0, 5.0, 8.0]

    def test_jitter_requires_rng(self, sim):
        with pytest.raises(SimulationError, match="rng"):
            PeriodicTask(sim, 1.0, lambda: None, jitter=0.1)

    def test_jitter_delays_within_bound(self, sim):
        import random
        ticks = []
        PeriodicTask(sim, 1.0, lambda: ticks.append(sim.now),
                     jitter=0.5, rng=random.Random(7))
        sim.run(until=20.0)
        assert len(ticks) >= 13           # at worst every 1.5 s
        gaps = [b - a for a, b in zip(ticks, ticks[1:])]
        assert all(1.0 <= g <= 1.5 + 1e-9 for g in gaps)

    def test_invalid_period_rejected(self, sim):
        with pytest.raises(SimulationError):
            PeriodicTask(sim, 0.0, lambda: None)
        task = PeriodicTask(sim, 1.0, lambda: None)
        with pytest.raises(SimulationError):
            task.set_period(-1.0)

    def test_stop_from_within_callback(self, sim):
        ticks = []
        def tick():
            ticks.append(sim.now)
            if len(ticks) == 2:
                task.stop()
        task = PeriodicTask(sim, 1.0, tick)
        sim.run(until=10.0)
        assert ticks == [1.0, 2.0]


class TestEdgeCases:
    """Corners the parallel-engine work leans on: cancellation interacting
    with bounded runs, live period changes, and budget exhaustion."""

    def test_cancel_at_same_instant_inside_bounded_run(self, sim):
        """A timer cancelled by an earlier same-instant event during
        run(until=...) must not fire: the cancelled head is skipped
        after it has already been scheduled for this very timestamp."""
        out = []
        victims = []
        sim.schedule(1.0, lambda: victims[0].cancel())   # seq 0: fires first
        victims.append(sim.schedule(1.0, out.append, "dead"))  # seq 1
        sim.run(until=1.0)
        assert out == []
        assert sim.now == 1.0
        assert not victims[0].fired
        assert sim.events_processed == 1

    def test_cancelled_timer_beyond_until_is_purged(self, sim):
        """run(until=...) pops cancelled heads even when their time lies
        beyond the window — the queue must not accumulate tombstones."""
        victim = sim.schedule(5.0, lambda: None)
        victim.cancel()
        sim.run(until=2.0)
        assert sim.pending == 0
        assert sim.now == 2.0
        assert sim.events_processed == 0

    def test_cancelled_timer_keeps_bounded_run_exact(self, sim):
        """Cancelling the only event inside the window must not stop the
        clock short of `until`, nor fire anything on the next run."""
        out = []
        t = sim.schedule(1.0, out.append, "no")
        sim.schedule(0.5, t.cancel)
        sim.run(until=3.0)
        assert out == []
        sim.run(until=10.0)
        assert out == [] and sim.now == 10.0

    def test_set_period_from_inside_running_callback(self, sim):
        """computeHBDelay adapts the heartbeat from within the beat
        itself; the new period must govern the very next re-arm."""
        ticks = []

        def tick() -> None:
            ticks.append(sim.now)
            if len(ticks) == 2:
                task.set_period(0.5)

        task = PeriodicTask(sim, 2.0, tick)
        sim.run(until=6.0)
        assert ticks == [2.0, 4.0, 4.5, 5.0, 5.5, 6.0]
        assert task.period == 0.5

    def test_set_period_between_ticks_spares_the_armed_tick(self, sim):
        """A period change between ticks takes effect at the *next*
        re-arm: the already-armed tick still fires on the old schedule."""
        ticks = []
        task = PeriodicTask(sim, 1.0, lambda: ticks.append(sim.now))
        sim.schedule(2.5, task.set_period, 3.0)
        sim.run(until=9.0)
        assert ticks == [1.0, 2.0, 3.0, 6.0, 9.0]

    def test_max_events_exhaustion_raises_cleanly(self, sim):
        """Budget exhaustion in run_until_idle must raise, leave the
        counter exact, and leave the kernel reusable (not wedged in the
        'running' state)."""
        def reschedule() -> None:
            sim.schedule(1.0, reschedule)

        sim.schedule(1.0, reschedule)
        with pytest.raises(SimulationError, match="budget"):
            sim.run_until_idle(max_events=10)
        assert sim.events_processed == 10
        # Clean recovery: a bounded run keeps going where we left off.
        resume_at = sim.now
        sim.run(until=resume_at + 5.0)
        assert sim.events_processed == 15
        assert sim.now == resume_at + 5.0

    def test_budget_equal_to_workload_still_raises(self, sim):
        """The budget is a tripwire, not a quota: processing exactly
        max_events raises even if the queue would have drained next."""
        for i in range(3):
            sim.schedule(float(i + 1), lambda: None)
        with pytest.raises(SimulationError, match="budget"):
            sim.run_until_idle(max_events=3)

    def test_max_events_zero_raises_before_any_event(self, sim):
        """A zero budget must trip immediately — historically the
        post-decrement check fired one event late, so ``max_events=0``
        processed one event before raising."""
        out = []
        sim.schedule(1.0, out.append, "never")
        with pytest.raises(SimulationError, match="budget"):
            sim.run(until=5.0, max_events=0)
        assert out == []
        assert sim.events_processed == 0

    def test_cancelled_timer_at_until_not_counted_against_budget(self, sim):
        """A timer cancelled at exactly ``t == until`` is purged, not
        processed: it must neither fire nor consume max_events budget.
        With a budget of 2, the cancel is the only charged event — if
        the purge were charged too, the tripwire would raise."""
        out = []
        victim = sim.schedule(2.0, out.append, "dead")   # lands at until
        sim.schedule(1.0, victim.cancel)
        sim.run(until=2.0, max_events=2)   # cancel + (uncharged) purge
        assert out == []
        assert sim.now == 2.0
        assert sim.events_processed == 1
        assert sim.pending == 0


class TestTimerWheel:
    """The coalescing wheel must be observably identical to dedicated
    kernel timers — same firing times, same tie order — while putting
    fewer events on the kernel heap."""

    def test_fires_at_scheduled_times(self, sim):
        wheel = TimerWheel(sim)
        out = []
        wheel.schedule(2.0, lambda: out.append(("a", sim.now)))
        wheel.schedule(1.0, lambda: out.append(("b", sim.now)))
        wheel.call_at(1.5, lambda: out.append(("c", sim.now)))
        sim.run(until=3.0)
        assert out == [("b", 1.0), ("c", 1.5), ("a", 2.0)]

    def test_tie_order_matches_arm_order(self, sim):
        """Same-instant wheel entries fire in arm order — the kernel's
        FIFO tie-break, reproduced through the leased sequence numbers."""
        wheel = TimerWheel(sim)
        out = []
        for i in range(8):
            wheel.schedule(1.0, lambda i=i: out.append(i))
        sim.run(until=1.0)
        assert out == list(range(8))

    def test_interleaves_exactly_with_kernel_timers(self, sim):
        """Wheel entries and plain kernel timers armed alternately at one
        instant must fire in global arm order — the wheel may not batch
        its entries past an interleaved kernel event."""
        wheel = TimerWheel(sim)
        out = []
        wheel.schedule(1.0, lambda: out.append("w0"))
        sim.schedule(1.0, out.append, "k0")
        wheel.schedule(1.0, lambda: out.append("w1"))
        sim.schedule(1.0, out.append, "k1")
        wheel.schedule(1.0, lambda: out.append("w2"))
        sim.run(until=2.0)
        assert out == ["w0", "k0", "w1", "k1", "w2"]

    def test_coalesces_kernel_events(self, sim):
        """N same-instant entries ride one kernel service event (that is
        the point of the wheel)."""
        wheel = TimerWheel(sim)
        fired = []
        for i in range(50):
            wheel.schedule(1.0, lambda i=i: fired.append(i))
        assert sim.pending == 1       # one service timer, not 50
        sim.run(until=1.0)
        assert fired == list(range(50))

    def test_cancel_prevents_firing(self, sim):
        wheel = TimerWheel(sim)
        out = []
        keep = wheel.schedule(1.0, lambda: out.append("keep"))
        drop = wheel.schedule(1.0, lambda: out.append("drop"))
        drop.cancel()
        assert keep.active and not drop.active
        sim.run(until=2.0)
        assert out == ["keep"]

    def test_cancel_head_reschedules_service(self, sim):
        """Cancelling the earliest entry must re-aim the service timer at
        the new head, not leave a stale wakeup."""
        wheel = TimerWheel(sim)
        out = []
        head = wheel.schedule(1.0, lambda: out.append("head"))
        wheel.schedule(5.0, lambda: out.append("tail"))
        head.cancel()
        sim.run(until=1.0)
        assert out == [] and wheel.pending == 1
        sim.run(until=5.0)
        assert out == ["tail"]

    def test_entry_scheduled_from_callback(self, sim):
        """A wheel callback arming another entry (periodic re-arm) must
        not starve or fire early."""
        wheel = TimerWheel(sim)
        ticks = []

        def tick():
            ticks.append(sim.now)
            if len(ticks) < 3:
                wheel.schedule(1.0, tick)

        wheel.schedule(1.0, tick)
        sim.run(until=10.0)
        assert ticks == [1.0, 2.0, 3.0]


class TestWheelPeriodicTask:
    """WheelPeriodicTask must be a drop-in for PeriodicTask."""

    def test_matches_plain_periodic_schedule(self):
        def run(use_wheel):
            sim = Simulator()
            ticks = []
            if use_wheel:
                WheelPeriodicTask(TimerWheel(sim), 1.0,
                                  lambda: ticks.append(sim.now))
            else:
                PeriodicTask(sim, 1.0, lambda: ticks.append(sim.now))
            sim.run(until=5.0)
            return ticks

        assert run(True) == run(False) == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_jitter_draws_match_plain_periodic(self):
        """With the same rng seed, jittered wheel ticks land on exactly
        the instants of a jittered PeriodicTask (identical draw order)."""
        import random

        def run(use_wheel):
            sim = Simulator()
            ticks = []
            rng = random.Random(7)
            if use_wheel:
                WheelPeriodicTask(TimerWheel(sim), 1.0,
                                  lambda: ticks.append(sim.now),
                                  jitter=0.5, rng=rng)
            else:
                PeriodicTask(sim, 1.0, lambda: ticks.append(sim.now),
                             jitter=0.5, rng=rng)
            sim.run(until=20.0)
            return ticks

        assert run(True) == run(False)

    def test_set_period_and_stop(self, sim):
        wheel = TimerWheel(sim)
        ticks = []
        task = WheelPeriodicTask(wheel, 1.0, lambda: ticks.append(sim.now))
        sim.schedule(2.0, task.set_period, 3.0)
        sim.schedule(8.5, task.stop)
        sim.run(until=20.0)
        assert ticks == [1.0, 2.0, 5.0, 8.0]
        assert not task.running

    def test_start_delay_overrides_first_tick(self, sim):
        ticks = []
        WheelPeriodicTask(TimerWheel(sim), 2.0,
                          lambda: ticks.append(sim.now), start_delay=0.5)
        sim.run(until=5.0)
        assert ticks == [0.5, 2.5, 4.5]

    def test_stop_from_within_callback(self, sim):
        wheel = TimerWheel(sim)
        ticks = []

        def tick():
            ticks.append(sim.now)
            if len(ticks) == 2:
                task.stop()

        task = WheelPeriodicTask(wheel, 1.0, tick)
        sim.run(until=10.0)
        assert ticks == [1.0, 2.0]


class TestDeterminism:
    def test_identical_runs_identical_trace(self):
        def trace():
            sim = Simulator()
            out = []
            def emit(x):
                out.append((sim.now, x))
                if x < 30:
                    sim.schedule(0.5, emit, x * 2)
            for i in range(5):
                sim.schedule(float(i), emit, i + 1)
            sim.run_until_idle()
            return out
        assert trace() == trace()
