"""Unit tests for protocol messages and wire sizes (repro.net.messages)."""

from __future__ import annotations

from repro.core.events import EventId
from repro.core.topics import Topic
from repro.net.messages import (EventBatch, EventIdList, Heartbeat,
                                SizeModel)

from tests.helpers import make_event


class TestSizeModel:
    def test_paper_constants(self):
        sizes = SizeModel()
        assert sizes.heartbeat_bytes == 50      # Section 5.2
        assert sizes.event_id_bytes == 16       # 128 bits

    def test_heartbeat_flat_cost(self):
        sizes = SizeModel()
        few = Heartbeat(sender=1, subscriptions=frozenset({Topic(".a")}))
        many = Heartbeat(sender=1, subscriptions=frozenset(
            {Topic(f".t{i}") for i in range(10)}))
        assert few.size_bytes(sizes) == many.size_bytes(sizes) == 50

    def test_id_list_scales_with_ids(self):
        sizes = SizeModel()
        base = EventIdList(sender=1, event_ids=()).size_bytes(sizes)
        three = EventIdList(sender=1, event_ids=(
            EventId(1, 0), EventId(1, 1), EventId(1, 2))).size_bytes(sizes)
        assert three == base + 3 * 16

    def test_event_batch_includes_payload_ids_and_neighbors(self):
        sizes = SizeModel()
        e = make_event(payload_bytes=400)
        batch = EventBatch(sender=1, events=(e,), neighbor_ids=(2, 3))
        expected = (sizes.header_bytes + 400 + sizes.event_id_bytes
                    + 2 * sizes.node_id_bytes)
        assert batch.size_bytes(sizes) == expected

    def test_batch_of_two_events_sums_payloads(self):
        sizes = SizeModel()
        a = make_event(seq=0, payload_bytes=400)
        b = make_event(seq=1, payload_bytes=1600)
        batch = EventBatch(sender=1, events=(a, b))
        assert batch.size_bytes(sizes) == \
            sizes.header_bytes + 2000 + 2 * sizes.event_id_bytes

    def test_kind_names(self):
        assert Heartbeat(sender=1,
                         subscriptions=frozenset()).kind == "Heartbeat"
        assert EventIdList(sender=1, event_ids=()).kind == "EventIdList"
        assert EventBatch(sender=1, events=()).kind == "EventBatch"

    def test_messages_hashable_and_immutable(self):
        hb = Heartbeat(sender=1, subscriptions=frozenset({Topic(".a")}))
        assert hash(hb) == hash(Heartbeat(
            sender=1, subscriptions=frozenset({Topic(".a")})))
