"""Unit tests for the flooding baselines (repro.baselines)."""

from __future__ import annotations

import pytest

from repro.baselines import (InterestAwareFlooding, NeighborInterestFlooding,
                             SimpleFlooding)
from repro.core.topics import Topic
from repro.net.messages import EventBatch, Heartbeat

from tests.helpers import FakeHost, make_event


def attach(cls, host: FakeHost, *topics: str, **kwargs):
    proto = cls(flood_jitter=0.0, **kwargs)
    proto.attach(host)
    for t in topics:
        proto.subscribe(t)
    proto.on_start()
    return proto


def batch(sender: int, *events) -> EventBatch:
    return EventBatch(sender=sender, events=tuple(events))


class TestFloodingCommon:
    def test_publish_floods_immediately_and_delivers(self):
        host = FakeHost()
        proto = attach(SimpleFlooding, host, ".a")
        event = make_event(topic=".a.x", validity=60.0, now=host.now)
        proto.publish(event)
        assert host.delivered == [event]
        assert len(host.sent_of_kind(EventBatch)) == 1

    def test_periodic_reflooding_every_second(self):
        host = FakeHost()
        proto = attach(SimpleFlooding, host, ".a")
        proto.publish(make_event(topic=".a.x", validity=60.0, now=host.now))
        host.advance(5.5)
        # 1 immediate + 5 periodic ticks.
        assert len(host.sent_of_kind(EventBatch)) == 6

    def test_expired_events_leave_the_flood(self):
        host = FakeHost()
        proto = attach(SimpleFlooding, host, ".a")
        proto.publish(make_event(topic=".a.x", validity=3.0, now=host.now))
        host.advance(10.0)
        sent = host.sent_of_kind(EventBatch)
        # immediate + ticks at 1, 2 s (the 3 s tick finds it expired).
        assert len(sent) == 3

    def test_duplicate_reception_counted_and_dropped(self):
        host = FakeHost()
        proto = attach(SimpleFlooding, host, ".a")
        event = make_event(topic=".a.x", validity=60.0, now=host.now)
        proto.on_message(batch(5, event))
        proto.on_message(batch(6, event))
        assert len(host.delivered) == 1
        assert proto.duplicates_dropped == 1

    def test_stop_clears_state(self):
        host = FakeHost()
        proto = attach(SimpleFlooding, host, ".a")
        proto.publish(make_event(topic=".a.x", validity=60.0, now=host.now))
        proto.on_stop()
        host.clear()
        host.advance(5.0)
        assert host.sent == []
        assert proto.stored_event_ids == set()

    def test_invalid_flood_period(self):
        with pytest.raises(ValueError):
            SimpleFlooding(flood_period=0.0)


class TestSimpleFlooding:
    def test_refloods_parasites(self):
        """Simple flooding propagates irrespective of interests."""
        host = FakeHost()
        proto = attach(SimpleFlooding, host, ".a")
        parasite = make_event(topic=".z", validity=60.0, now=host.now)
        proto.on_message(batch(5, parasite))
        assert host.delivered == []            # not subscribed
        assert proto.parasites_dropped == 1    # counted
        host.advance(1.5)
        sent = host.sent_of_kind(EventBatch)
        assert sent and parasite in sent[0].events   # ... but re-flooded


class TestInterestAwareFlooding:
    def test_drops_parasites_from_the_flood(self):
        host = FakeHost()
        proto = attach(InterestAwareFlooding, host, ".a")
        parasite = make_event(topic=".z", validity=60.0, now=host.now)
        interesting = make_event(publisher=50, topic=".a.x", validity=60.0,
                                 now=host.now)
        proto.on_message(batch(5, parasite, interesting))
        host.advance(1.5)
        sent = host.sent_of_kind(EventBatch)
        flooded = {e.event_id for b in sent for e in b.events}
        assert interesting.event_id in flooded
        assert parasite.event_id not in flooded

    def test_delivers_interesting_events(self):
        host = FakeHost()
        proto = attach(InterestAwareFlooding, host, ".a")
        event = make_event(topic=".a.x", validity=60.0, now=host.now)
        proto.on_message(batch(5, event))
        assert host.delivered == [event]


class TestNeighborInterestFlooding:
    def test_sends_heartbeats(self):
        host = FakeHost()
        proto = attach(NeighborInterestFlooding, host, ".a")
        host.advance(2.5)
        assert len(host.sent_of_kind(Heartbeat)) == 2

    def test_silent_without_interested_neighbors(self):
        host = FakeHost()
        proto = attach(NeighborInterestFlooding, host, ".a")
        proto.publish(make_event(topic=".a.x", validity=60.0, now=host.now))
        host.clear()
        host.advance(3.5)
        assert host.sent_of_kind(EventBatch) == []

    def test_floods_while_an_interested_neighbor_exists(self):
        host = FakeHost()
        proto = attach(NeighborInterestFlooding, host, ".a")
        proto.publish(make_event(topic=".a.x", validity=60.0, now=host.now))
        proto.on_message(Heartbeat(sender=5,
                                   subscriptions=frozenset({Topic(".a")})))
        host.clear()
        host.advance(2.5)
        assert len(host.sent_of_kind(EventBatch)) == 2

    def test_uninterested_neighbors_do_not_unlock_flooding(self):
        host = FakeHost()
        proto = attach(NeighborInterestFlooding, host, ".a")
        proto.publish(make_event(topic=".a.x", validity=60.0, now=host.now))
        proto.on_message(Heartbeat(sender=5,
                                   subscriptions=frozenset({Topic(".z")})))
        host.clear()
        host.advance(2.5)
        assert host.sent_of_kind(EventBatch) == []

    def test_neighbor_expiry_stops_the_flood(self):
        host = FakeHost()
        proto = attach(NeighborInterestFlooding, host, ".a",
                       neighbor_ttl=2.0)
        proto.publish(make_event(topic=".a.x", validity=600.0,
                                 now=host.now))
        proto.on_message(Heartbeat(sender=5,
                                   subscriptions=frozenset({Topic(".a")})))
        host.advance(1.5)
        flooding_while_fresh = len(host.sent_of_kind(EventBatch))
        assert flooding_while_fresh >= 1
        host.advance(3.0)          # neighbour is stale now
        host.clear()
        host.advance(3.0)
        assert host.sent_of_kind(EventBatch) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            NeighborInterestFlooding(heartbeat_period=0.0)
        with pytest.raises(ValueError):
            NeighborInterestFlooding(neighbor_ttl=-1.0)
