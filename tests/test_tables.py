"""Unit tests for the Section 4.1 data structures (repro.core.tables)."""

from __future__ import annotations

import pytest

from repro.core.events import EventId
from repro.core.gc import FifoPolicy
from repro.core.tables import EventTable, NeighborhoodTable
from repro.core.topics import Topic

from tests.helpers import make_event


class TestNeighborhoodTable:
    def test_upsert_inserts_and_refreshes(self):
        table = NeighborhoodTable()
        table.upsert(1, [Topic(".a")], speed=5.0, now=10.0)
        assert 1 in table
        entry = table.get(1)
        assert entry.speed == 5.0 and entry.store_time == 10.0
        table.upsert(1, [Topic(".a"), Topic(".b")], speed=7.0, now=20.0)
        assert len(table) == 1
        entry = table.get(1)
        assert entry.speed == 7.0 and entry.store_time == 20.0
        assert entry.subscriptions == {Topic(".a"), Topic(".b")}

    def test_refresh_preserves_known_event_ids(self):
        table = NeighborhoodTable()
        table.upsert(1, [Topic(".a")], None, now=0.0)
        table.record_known_event(1, EventId(9, 0))
        table.upsert(1, [Topic(".a")], None, now=5.0)
        assert table.get(1).knows(EventId(9, 0))

    def test_record_known_event_ignores_strangers(self):
        table = NeighborhoodTable()
        table.record_known_event(42, EventId(1, 1))
        assert 42 not in table

    def test_record_known_event_refreshes_store_time(self):
        table = NeighborhoodTable()
        table.upsert(1, [Topic(".a")], None, now=0.0)
        table.record_known_event(1, EventId(1, 1), now=9.0)
        assert table.get(1).store_time == 9.0

    def test_average_speed(self):
        table = NeighborhoodTable()
        table.upsert(1, [Topic(".a")], speed=10.0, now=0.0)
        table.upsert(2, [Topic(".a")], speed=None, now=0.0)  # no sensor
        table.upsert(3, [Topic(".a")], speed=20.0, now=0.0)
        assert table.average_speed() == 15.0
        assert table.average_speed(own_speed=30.0) == 20.0

    def test_average_speed_none_when_no_data(self):
        table = NeighborhoodTable()
        table.upsert(1, [Topic(".a")], speed=None, now=0.0)
        assert table.average_speed() is None
        assert table.average_speed(own_speed=5.0) == 5.0

    def test_interested_in_uses_covers(self):
        table = NeighborhoodTable()
        table.upsert(1, [Topic(".a")], None, now=0.0)
        table.upsert(2, [Topic(".a.b.c")], None, now=0.0)
        interested = table.interested_in(Topic(".a.b"))
        assert [e.node_id for e in interested] == [1]

    def test_collect_drops_stale_rows(self):
        table = NeighborhoodTable()
        table.upsert(1, [Topic(".a")], None, now=0.0)
        table.upsert(2, [Topic(".a")], None, now=8.0)
        removed = table.collect(now=10.0, ngc_delay=5.0)
        assert removed == [1]
        assert table.ids() == [2]

    def test_collect_boundary_not_stale(self):
        table = NeighborhoodTable()
        table.upsert(1, [Topic(".a")], None, now=5.0)
        assert table.collect(now=10.0, ngc_delay=5.0) == []

    def test_remove(self):
        table = NeighborhoodTable()
        table.upsert(1, [Topic(".a")], None, now=0.0)
        table.remove(1)
        assert len(table) == 0
        table.remove(1)   # idempotent


class TestEventTable:
    def test_store_and_lookup(self):
        table = EventTable()
        e = make_event(seq=0, validity=60.0)
        row = table.store(e, now=0.0)
        assert e.event_id in table
        assert table.get(e.event_id) is row
        assert len(table) == 1

    def test_store_is_idempotent(self):
        table = EventTable()
        e = make_event(seq=0)
        first = table.store(e, now=0.0)
        first.forward_count = 3
        again = table.store(e, now=5.0)
        assert again is first
        assert again.forward_count == 3
        assert len(table) == 1

    def test_capacity_evicts_expired_first(self):
        table = EventTable(capacity=2)
        dead = make_event(seq=0, validity=5.0, now=0.0)
        live = make_event(seq=1, validity=500.0, now=0.0)
        table.store(dead, now=0.0)
        table.store(live, now=0.0)
        newcomer = make_event(seq=2, validity=500.0, now=10.0)
        table.store(newcomer, now=10.0)    # dead has expired by now
        assert dead.event_id not in table
        assert live.event_id in table
        assert newcomer.event_id in table
        assert table.evictions_expired == 1
        assert table.evictions_policy == 0

    def test_capacity_falls_back_to_equation_one(self):
        table = EventTable(capacity=2)
        much_forwarded = make_event(seq=0, validity=300.0, now=0.0)
        rarely_forwarded = make_event(seq=1, validity=120.0, now=0.0)
        table.store(much_forwarded, now=0.0).forward_count = 5
        table.store(rarely_forwarded, now=0.0).forward_count = 1
        table.store(make_event(seq=2, validity=100.0, now=1.0), now=1.0)
        assert much_forwarded.event_id not in table
        assert rarely_forwarded.event_id in table
        assert table.evictions_policy == 1

    def test_custom_policy_used(self):
        table = EventTable(capacity=2, policy=FifoPolicy())
        old = make_event(seq=0, validity=100.0, now=0.0)
        new = make_event(seq=1, validity=100.0, now=0.0)
        table.store(old, now=0.0)
        table.store(new, now=5.0)
        table.store(make_event(seq=2, validity=100.0, now=6.0), now=6.0)
        assert old.event_id not in table

    def test_unbounded_table_never_evicts(self):
        table = EventTable(capacity=None)
        for i in range(100):
            table.store(make_event(seq=i), now=0.0)
        assert len(table) == 100

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            EventTable(capacity=0)

    def test_valid_rows_filters_expired(self):
        table = EventTable()
        short = make_event(seq=0, validity=10.0, now=0.0)
        long = make_event(seq=1, validity=100.0, now=0.0)
        table.store(short, now=0.0)
        table.store(long, now=0.0)
        rows = table.valid_rows(now=50.0)
        assert [r.event_id for r in rows] == [long.event_id]

    def test_valid_ids_for_uses_symmetric_relation(self):
        """Fig. 1: the holder of a subtopic event announces it to a
        super-topic subscriber, and a super-topic holder announces to a
        subtopic subscriber."""
        table = EventTable()
        sub_event = make_event(seq=0, topic=".t0.t1.t2", validity=60.0)
        sup_event = make_event(seq=1, topic=".t0.t1", validity=60.0)
        table.store(sub_event, now=0.0)
        table.store(sup_event, now=0.0)
        # Neighbour subscribed to the super-topic hears about both.
        assert table.valid_ids_for([Topic(".t0.t1")], now=0.0) == \
            sorted([sub_event.event_id, sup_event.event_id])
        # Neighbour subscribed to the subtopic also hears about both
        # (relatedness is symmetric; entitlement is checked at send time).
        assert table.valid_ids_for([Topic(".t0.t1.t2")], now=0.0) == \
            sorted([sub_event.event_id, sup_event.event_id])
        # Unrelated branch hears about nothing.
        assert table.valid_ids_for([Topic(".t9")], now=0.0) == []

    def test_valid_ids_for_excludes_expired(self):
        table = EventTable()
        e = make_event(seq=0, topic=".a", validity=10.0, now=0.0)
        table.store(e, now=0.0)
        assert table.valid_ids_for([Topic(".a")], now=5.0) == [e.event_id]
        assert table.valid_ids_for([Topic(".a")], now=15.0) == []

    def test_purge_expired(self):
        table = EventTable()
        a = make_event(seq=0, validity=10.0, now=0.0)
        b = make_event(seq=1, validity=100.0, now=0.0)
        table.store(a, now=0.0)
        table.store(b, now=0.0)
        assert table.purge_expired(now=50.0) == [a.event_id]
        assert len(table) == 1

    def test_increment_forward_count(self):
        table = EventTable()
        e = make_event(seq=0)
        table.store(e, now=0.0)
        table.increment_forward_count(e.event_id)
        table.increment_forward_count(e.event_id)
        assert table.get(e.event_id).forward_count == 2
        table.increment_forward_count(EventId(5, 5))   # unknown: no-op

    def test_iteration(self):
        table = EventTable()
        events = [make_event(seq=i) for i in range(3)]
        for e in events:
            table.store(e, now=0.0)
        assert {r.event_id for r in table} == {e.event_id for e in events}
