"""Smoke tests: every example script runs end to end and prints sane
output.  Examples are the library's public face; a broken example is a
broken deliverable."""

from __future__ import annotations

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamplesRun:
    def test_quickstart(self, capsys):
        load_example("quickstart").main(seed=1)
        out = capsys.readouterr().out
        assert "Reliability:" in out
        assert "bandwidth" in out

    def test_car_park(self, capsys):
        load_example("car_park").main(seed=3)
        out = capsys.readouterr().out
        assert "publishes a free spot" in out
        assert "Total bytes on air" in out

    def test_campus_conference(self, capsys):
        load_example("campus_conference").main(seed=5)
        out = capsys.readouterr().out
        assert "Announcements published:" in out
        # The cafeteria-only attendee must never see conference events.
        gus_line = [l for l in out.splitlines() if l.strip().
                    startswith("gus")][0]
        assert "." not in gus_line.split(".epfl.cafeteria")[1].split(
            "parasites")[0].replace("-", "").strip()

    def test_trace_dissemination(self, capsys):
        load_example("trace_dissemination").main(seed=2)
        out = capsys.readouterr().out
        assert "6/6 nodes delivered" in out
        assert "deliver node=5" in out

    def test_energy_budget(self, capsys):
        load_example("energy_budget").main(seed=2)
        out = capsys.readouterr().out
        assert "Campus on batteries" in out
        assert "Survivors over time — frugal" in out
        assert "J per delivered event" in out
        # The story the example exists to tell: the frugal campus keeps
        # more devices alive than the flooding one on equal batteries.
        tail = out.rsplit("keeps", 1)[1]
        frugal_alive = int(tail.split("of")[0].strip())
        flood_alive = int(tail.split("flooding:")[1].split(")")[0].strip())
        assert frugal_alive > flood_alive

    def test_custom_study(self, capsys):
        load_example("custom_study").main(seed=7)
        out = capsys.readouterr().out
        assert "Study 'popularity-x-ids'" in out
        # Every declared analysis note must have been attached/printed.
        assert "-- reliability by variant over interest --" in out
        assert "component deltas vs baseline" in out
        assert "-- Pareto frontier (reliability max, duplicates min) --" \
            in out
        # The closing claim parses back against the frontier accounting.
        tail = out.rsplit("settings are Pareto-optimal", 1)[0]
        frontier_n = int(tail.rsplit("\n", 1)[1].split("of")[0].strip())
        assert 1 <= frontier_n <= 4

    @pytest.mark.slow
    def test_custom_protocol(self, capsys):
        load_example("custom_protocol").main(seed=1)
        out = capsys.readouterr().out
        assert "selective-gossip" in out
        assert "Membership gating" in out
        # The gate must genuinely cut airtime on the low-interest
        # scenario the example constructs.
        factor = float(out.rsplit("by", 1)[1].split("x")[0].strip())
        assert factor > 1.0
        # The custom stack must have been unregistered on exit.
        from repro.core import registry
        assert "selective-gossip" not in registry.names(include_hidden=True)

    @pytest.mark.slow
    def test_protocol_comparison(self, capsys):
        load_example("protocol_comparison").main(n_events=2, interest=0.6)
        out = capsys.readouterr().out
        assert "frugal" in out and "simple-flooding" in out
        # Parse the table (the separator row contains no pipes) and check
        # the frugality ordering.
        lines = [l for l in out.splitlines() if "|" in l]
        header = [c.strip() for c in lines[0].split("|")]
        bw_col = header.index("bandwidth [kB]")
        rows = {l.split("|")[0].strip():
                float(l.split("|")[bw_col]) for l in lines[1:]}
        assert rows["frugal"] < rows["simple-flooding"]
