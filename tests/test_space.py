"""Unit tests for 2-D geometry and the spatial grid (repro.sim.space)."""

from __future__ import annotations

import math

import pytest

from repro.sim.space import SpatialGrid, Vec2


class TestVec2:
    def test_add_sub(self):
        assert Vec2(1, 2) + Vec2(3, 4) == Vec2(4, 6)
        assert Vec2(3, 4) - Vec2(1, 2) == Vec2(2, 2)

    def test_scalar_multiplication_both_sides(self):
        assert Vec2(1, 2) * 3 == Vec2(3, 6)
        assert 3 * Vec2(1, 2) == Vec2(3, 6)

    def test_norm_and_distance(self):
        assert Vec2(3, 4).norm() == 5.0
        assert Vec2(1, 1).distance_to(Vec2(4, 5)) == 5.0

    def test_dot(self):
        assert Vec2(1, 2).dot(Vec2(3, 4)) == 11.0

    def test_normalized(self):
        n = Vec2(10, 0).normalized()
        assert n == Vec2(1, 0)

    def test_normalized_zero_raises(self):
        with pytest.raises(ValueError):
            Vec2(0, 0).normalized()

    def test_lerp_endpoints_and_midpoint(self):
        a, b = Vec2(0, 0), Vec2(10, 20)
        assert a.lerp(b, 0.0) == a
        assert a.lerp(b, 1.0) == b
        assert a.lerp(b, 0.5) == Vec2(5, 10)

    def test_immutability(self):
        v = Vec2(1, 2)
        with pytest.raises(Exception):
            v.x = 5

    def test_as_tuple(self):
        assert Vec2(1.5, -2.0).as_tuple() == (1.5, -2.0)


class TestSpatialGrid:
    def test_insert_and_query(self):
        grid = SpatialGrid(cell_size=10.0)
        grid.insert(1, Vec2(0, 0))
        grid.insert(2, Vec2(5, 0))
        grid.insert(3, Vec2(50, 50))
        assert grid.query_radius(Vec2(0, 0), 10.0) == [1, 2]

    def test_query_excludes_requested_id(self):
        grid = SpatialGrid(cell_size=10.0)
        grid.insert(1, Vec2(0, 0))
        grid.insert(2, Vec2(1, 1))
        assert grid.query_radius(Vec2(0, 0), 10.0, exclude=1) == [2]

    def test_query_radius_larger_than_cell(self):
        grid = SpatialGrid(cell_size=1.0)
        for i in range(10):
            grid.insert(i, Vec2(float(i), 0.0))
        found = grid.query_radius(Vec2(0, 0), 5.0)
        assert found == [0, 1, 2, 3, 4, 5]

    def test_boundary_is_inclusive(self):
        grid = SpatialGrid(cell_size=10.0)
        grid.insert(1, Vec2(10, 0))
        assert grid.query_radius(Vec2(0, 0), 10.0) == [1]

    def test_move_between_cells(self):
        grid = SpatialGrid(cell_size=10.0)
        grid.insert(1, Vec2(0, 0))
        grid.insert(1, Vec2(100, 100))
        assert grid.query_radius(Vec2(0, 0), 15.0) == []
        assert grid.query_radius(Vec2(100, 100), 15.0) == [1]
        assert len(grid) == 1

    def test_move_within_cell(self):
        grid = SpatialGrid(cell_size=100.0)
        grid.insert(1, Vec2(1, 1))
        grid.insert(1, Vec2(2, 2))
        assert grid.position(1) == Vec2(2, 2)
        assert len(grid) == 1

    def test_remove(self):
        grid = SpatialGrid(cell_size=10.0)
        grid.insert(1, Vec2(0, 0))
        grid.remove(1)
        assert 1 not in grid
        assert grid.query_radius(Vec2(0, 0), 100.0) == []
        grid.remove(1)   # idempotent

    def test_negative_coordinates(self):
        grid = SpatialGrid(cell_size=10.0)
        grid.insert(1, Vec2(-5, -5))
        grid.insert(2, Vec2(-95, -95))
        assert grid.query_radius(Vec2(0, 0), 10.0) == [1]

    def test_results_sorted(self):
        grid = SpatialGrid(cell_size=10.0)
        for i in reversed(range(20)):
            grid.insert(i, Vec2(0.1 * i, 0))
        assert grid.query_radius(Vec2(0, 0), 5.0) == list(range(20))

    def test_matches_brute_force(self):
        import random
        rng = random.Random(3)
        grid = SpatialGrid(cell_size=25.0)
        points = {}
        for i in range(200):
            p = Vec2(rng.uniform(-500, 500), rng.uniform(-500, 500))
            points[i] = p
            grid.insert(i, p)
        for _ in range(20):
            center = Vec2(rng.uniform(-500, 500), rng.uniform(-500, 500))
            radius = rng.uniform(0, 300)
            expected = sorted(
                i for i, p in points.items()
                if math.hypot(p.x - center.x, p.y - center.y) <= radius)
            assert grid.query_radius(center, radius) == expected

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            SpatialGrid(cell_size=0.0)
        grid = SpatialGrid(cell_size=1.0)
        with pytest.raises(ValueError):
            grid.query_radius(Vec2(0, 0), -1.0)

    def test_items_and_ids(self):
        grid = SpatialGrid(cell_size=10.0)
        grid.insert(1, Vec2(0, 0))
        grid.insert(2, Vec2(5, 5))
        assert sorted(grid.ids()) == [1, 2]
        assert dict(grid.items())[2] == Vec2(5, 5)
