"""Unit tests for 2-D geometry and the spatial grid (repro.sim.space)."""

from __future__ import annotations

import math

import pytest

from repro.sim.space import SpatialGrid, Vec2


class TestVec2:
    def test_add_sub(self):
        assert Vec2(1, 2) + Vec2(3, 4) == Vec2(4, 6)
        assert Vec2(3, 4) - Vec2(1, 2) == Vec2(2, 2)

    def test_scalar_multiplication_both_sides(self):
        assert Vec2(1, 2) * 3 == Vec2(3, 6)
        assert 3 * Vec2(1, 2) == Vec2(3, 6)

    def test_norm_and_distance(self):
        assert Vec2(3, 4).norm() == 5.0
        assert Vec2(1, 1).distance_to(Vec2(4, 5)) == 5.0

    def test_dot(self):
        assert Vec2(1, 2).dot(Vec2(3, 4)) == 11.0

    def test_normalized(self):
        n = Vec2(10, 0).normalized()
        assert n == Vec2(1, 0)

    def test_normalized_zero_raises(self):
        with pytest.raises(ValueError):
            Vec2(0, 0).normalized()

    def test_lerp_endpoints_and_midpoint(self):
        a, b = Vec2(0, 0), Vec2(10, 20)
        assert a.lerp(b, 0.0) == a
        assert a.lerp(b, 1.0) == b
        assert a.lerp(b, 0.5) == Vec2(5, 10)

    def test_immutability(self):
        v = Vec2(1, 2)
        with pytest.raises(Exception):
            v.x = 5

    def test_as_tuple(self):
        assert Vec2(1.5, -2.0).as_tuple() == (1.5, -2.0)


class TestSpatialGrid:
    def test_insert_and_query(self):
        grid = SpatialGrid(cell_size=10.0)
        grid.insert(1, Vec2(0, 0))
        grid.insert(2, Vec2(5, 0))
        grid.insert(3, Vec2(50, 50))
        assert grid.query_radius(Vec2(0, 0), 10.0) == [1, 2]

    def test_query_excludes_requested_id(self):
        grid = SpatialGrid(cell_size=10.0)
        grid.insert(1, Vec2(0, 0))
        grid.insert(2, Vec2(1, 1))
        assert grid.query_radius(Vec2(0, 0), 10.0, exclude=1) == [2]

    def test_query_radius_larger_than_cell(self):
        grid = SpatialGrid(cell_size=1.0)
        for i in range(10):
            grid.insert(i, Vec2(float(i), 0.0))
        found = grid.query_radius(Vec2(0, 0), 5.0)
        assert found == [0, 1, 2, 3, 4, 5]

    def test_boundary_is_inclusive(self):
        grid = SpatialGrid(cell_size=10.0)
        grid.insert(1, Vec2(10, 0))
        assert grid.query_radius(Vec2(0, 0), 10.0) == [1]

    def test_move_between_cells(self):
        grid = SpatialGrid(cell_size=10.0)
        grid.insert(1, Vec2(0, 0))
        grid.insert(1, Vec2(100, 100))
        assert grid.query_radius(Vec2(0, 0), 15.0) == []
        assert grid.query_radius(Vec2(100, 100), 15.0) == [1]
        assert len(grid) == 1

    def test_move_within_cell(self):
        grid = SpatialGrid(cell_size=100.0)
        grid.insert(1, Vec2(1, 1))
        grid.insert(1, Vec2(2, 2))
        assert grid.position(1) == Vec2(2, 2)
        assert len(grid) == 1

    def test_remove(self):
        grid = SpatialGrid(cell_size=10.0)
        grid.insert(1, Vec2(0, 0))
        grid.remove(1)
        assert 1 not in grid
        assert grid.query_radius(Vec2(0, 0), 100.0) == []
        grid.remove(1)   # idempotent

    def test_negative_coordinates(self):
        grid = SpatialGrid(cell_size=10.0)
        grid.insert(1, Vec2(-5, -5))
        grid.insert(2, Vec2(-95, -95))
        assert grid.query_radius(Vec2(0, 0), 10.0) == [1]

    def test_results_sorted(self):
        grid = SpatialGrid(cell_size=10.0)
        for i in reversed(range(20)):
            grid.insert(i, Vec2(0.1 * i, 0))
        assert grid.query_radius(Vec2(0, 0), 5.0) == list(range(20))

    def test_matches_brute_force(self):
        import random
        rng = random.Random(3)
        grid = SpatialGrid(cell_size=25.0)
        points = {}
        for i in range(200):
            p = Vec2(rng.uniform(-500, 500), rng.uniform(-500, 500))
            points[i] = p
            grid.insert(i, p)
        for _ in range(20):
            center = Vec2(rng.uniform(-500, 500), rng.uniform(-500, 500))
            radius = rng.uniform(0, 300)
            expected = sorted(
                i for i, p in points.items()
                if math.hypot(p.x - center.x, p.y - center.y) <= radius)
            assert grid.query_radius(center, radius) == expected

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            SpatialGrid(cell_size=0.0)
        grid = SpatialGrid(cell_size=1.0)
        with pytest.raises(ValueError):
            grid.query_radius(Vec2(0, 0), -1.0)

    def test_items_and_ids(self):
        grid = SpatialGrid(cell_size=10.0)
        grid.insert(1, Vec2(0, 0))
        grid.insert(2, Vec2(5, 5))
        assert sorted(grid.ids()) == [1, 2]
        assert dict(grid.items())[2] == Vec2(5, 5)


# --------------------------------------------------------------------------
# Property suites: randomized oracles for the grid and the shard partition
# --------------------------------------------------------------------------

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.sim.shard.partition import ShardPlan  # noqa: E402

#: Coordinates stay well inside float-exact territory so the brute-force
#: oracle and the grid see literally the same arithmetic.
_COORD = st.floats(-1000.0, 1000.0, allow_nan=False, allow_infinity=False)
_IDS = st.integers(min_value=0, max_value=15)

_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), _IDS, _COORD, _COORD),
        st.tuples(st.just("remove"), _IDS),
        st.tuples(st.just("query"), _COORD, _COORD,
                  st.floats(0.0, 500.0, allow_nan=False))),
    max_size=60)


class TestSpatialGridProperties:
    """Randomized op sequences vs a brute-force O(N) dict oracle."""

    @settings(max_examples=50, deadline=None)
    @given(ops=_OPS, cell=st.floats(1.0, 100.0, allow_nan=False))
    def test_op_sequences_match_brute_force(self, ops, cell):
        grid = SpatialGrid(cell_size=cell)
        oracle = {}
        for op in ops:
            if op[0] == "insert":        # insert *or* move, like the medium
                _, obj_id, x, y = op
                oracle[obj_id] = Vec2(x, y)
                grid.insert(obj_id, Vec2(x, y))
            elif op[0] == "remove":
                _, obj_id = op
                oracle.pop(obj_id, None)
                grid.remove(obj_id)
            else:
                _, x, y, radius = op
                center = Vec2(x, y)
                want = sorted(i for i, p in oracle.items()
                              if p.distance_to(center) <= radius)
                assert grid.query_radius(center, radius) == want
        assert len(grid) == len(oracle)
        assert sorted(grid.ids()) == sorted(oracle)
        for obj_id, pos in oracle.items():
            assert grid.position(obj_id) == pos

    @settings(max_examples=50, deadline=None)
    @given(ops=_OPS, cell=st.floats(1.0, 100.0, allow_nan=False),
           exclude=_IDS)
    def test_exclusion_never_changes_other_results(self, ops, cell,
                                                   exclude):
        grid = SpatialGrid(cell_size=cell)
        present = set()
        for op in ops:
            if op[0] == "insert":
                grid.insert(op[1], Vec2(op[2], op[3]))
                present.add(op[1])
            elif op[0] == "remove":
                grid.remove(op[1])
                present.discard(op[1])
            else:
                center = Vec2(op[1], op[2])
                full = grid.query_radius(center, op[3])
                thinned = grid.query_radius(center, op[3], exclude=exclude)
                assert thinned == [i for i in full if i != exclude]


class TestShardPlanProperties:
    """The partition invariants the sharded engine's exactness rests on.

    Worlds are generated at least K cells wide so every stripe is
    non-empty — the regime ``compute_ownership`` always produces (the
    extent spans the real node positions).
    """

    @settings(max_examples=50, deadline=None)
    @given(data=st.data(),
           shards=st.integers(1, 6),
           cell=st.floats(10.0, 200.0, allow_nan=False),
           min_x=st.floats(-2000.0, 2000.0, allow_nan=False))
    def test_every_position_has_exactly_one_owner(self, data, shards,
                                                  cell, min_x):
        plan = ShardPlan(min_x=min_x, max_x=min_x + shards * cell + 1.0,
                         shards=shards, cell_size=cell)
        lo = plan.stripe(0)[0]
        hi = plan.stripe(shards - 1)[1]
        xs = data.draw(st.lists(
            st.floats(lo, hi, allow_nan=False, exclude_max=True),
            min_size=1, max_size=20))
        for x in xs:
            pos = Vec2(x, data.draw(_COORD))
            containing = [s for s in range(shards)
                          if plan.stripe(s)[0] <= x < plan.stripe(s)[1]]
            assert len(containing) == 1, \
                f"x={x} owned by {containing}, stripes must partition"
            assert plan.shard_of(pos) == containing[0]

    @settings(max_examples=50, deadline=None)
    @given(shards=st.integers(1, 6),
           cell=st.floats(10.0, 200.0, allow_nan=False),
           min_x=st.floats(-2000.0, 2000.0, allow_nan=False))
    def test_stripes_tile_the_extent_contiguously(self, shards, cell,
                                                  min_x):
        plan = ShardPlan(min_x=min_x, max_x=min_x + shards * cell + 1.0,
                         shards=shards, cell_size=cell)
        for s in range(shards):
            start, stop = plan.columns[s]
            assert start < stop, "wide-enough worlds leave no shard empty"
            if s:
                assert plan.columns[s - 1][1] == start
        # Coverage stated in exact column-index arithmetic (the float
        # multiply-back ``start * cell`` may round past a subnormal
        # min_x, which compute_ownership's metre-scale extents never
        # produce): the extent's first and last grid columns fall
        # inside the stripes.
        assert plan.columns[0][0] == math.floor(plan.min_x
                                                / plan.cell_size)
        assert plan.columns[-1][1] > math.floor(plan.max_x
                                                / plan.cell_size)

    @settings(max_examples=50, deadline=None)
    @given(data=st.data(),
           shards=st.integers(1, 6),
           cell=st.floats(10.0, 200.0, allow_nan=False),
           min_x=st.floats(-2000.0, 2000.0, allow_nan=False),
           range_m=st.floats(0.0, 500.0, allow_nan=False))
    def test_mirrors_are_exactly_the_disc_stripe_overlaps(self, data,
                                                          shards, cell,
                                                          min_x, range_m):
        plan = ShardPlan(min_x=min_x, max_x=min_x + shards * cell + 1.0,
                         shards=shards, cell_size=cell)
        lo = plan.stripe(0)[0]
        hi = plan.stripe(shards - 1)[1]
        x = data.draw(st.floats(lo, hi, allow_nan=False, exclude_max=True))
        pos = Vec2(x, data.draw(_COORD))
        owner = plan.shard_of(pos)
        mirrors = plan.mirror_shards(pos, range_m)
        # Oracle: interval intersection computed the other way round.
        want = [s for s in range(shards) if s != owner
                and max(plan.stripe(s)[0], x - range_m)
                <= min(plan.stripe(s)[1], x + range_m)]
        assert mirrors == want
        assert owner not in mirrors
        audible = plan.audible_shards(pos, range_m)
        assert audible == sorted(set([owner] + mirrors))
        # Soundness — the engine's boundary-zone guarantee: the owner of
        # any point within radio range is one of the audible shards.
        dx = data.draw(st.floats(-range_m, range_m, allow_nan=False)) \
            if range_m else 0.0
        q = Vec2(min(max(x + dx, lo), math.nextafter(hi, lo)),
                 pos.y)
        assert plan.shard_of(q) in audible

    @settings(max_examples=50, deadline=None)
    @given(shards=st.integers(1, 6),
           cell=st.floats(10.0, 200.0, allow_nan=False),
           min_x=st.floats(-2000.0, 2000.0, allow_nan=False),
           x=st.floats(-4000.0, 4000.0, allow_nan=False),
           r_small=st.floats(0.0, 200.0, allow_nan=False),
           r_grow=st.floats(0.0, 300.0, allow_nan=False))
    def test_mirrors_grow_monotonically_with_range(self, shards, cell,
                                                   min_x, x, r_small,
                                                   r_grow):
        plan = ShardPlan(min_x=min_x, max_x=min_x + shards * cell + 1.0,
                         shards=shards, cell_size=cell)
        pos = Vec2(x, 0.0)
        small = set(plan.mirror_shards(pos, r_small))
        large = set(plan.mirror_shards(pos, r_small + r_grow))
        assert small <= large


class TestShardPlanTiles:
    """The 2-D generalisation: R x C tile grids against brute oracles."""

    @staticmethod
    def _plan(data, rows, cols, cell, min_x, min_y):
        return ShardPlan(min_x=min_x, max_x=min_x + cols * cell + 1.0,
                         shards=rows * cols, cell_size=cell, rows=rows,
                         min_y=min_y, max_y=min_y + rows * cell + 1.0)

    @settings(max_examples=50, deadline=None)
    @given(data=st.data(),
           rows=st.integers(1, 4), cols=st.integers(1, 4),
           cell=st.floats(10.0, 200.0, allow_nan=False),
           min_x=st.floats(-2000.0, 2000.0, allow_nan=False),
           min_y=st.floats(-2000.0, 2000.0, allow_nan=False))
    def test_every_position_has_exactly_one_owning_tile(
            self, data, rows, cols, cell, min_x, min_y):
        plan = self._plan(data, rows, cols, cell, min_x, min_y)
        x_lo = plan.tile(0)[0]
        y_lo = plan.tile(0)[1] if rows > 1 else min_y
        x_hi = plan.tile(plan.shards - 1)[2]
        y_hi = plan.tile(plan.shards - 1)[3] if rows > 1 else min_y + 1.0
        for _ in range(10):
            pos = Vec2(
                data.draw(st.floats(x_lo, x_hi, allow_nan=False,
                                    exclude_max=True)),
                data.draw(st.floats(y_lo, y_hi, allow_nan=False,
                                    exclude_max=True)))
            containing = [
                s for s in range(plan.shards)
                if plan.tile(s)[0] <= pos.x < plan.tile(s)[2]
                and plan.tile(s)[1] <= pos.y < plan.tile(s)[3]]
            assert len(containing) == 1, \
                f"{pos} owned by {containing}, tiles must partition"
            assert plan.shard_of(pos) == containing[0]

    @settings(max_examples=50, deadline=None)
    @given(data=st.data(),
           rows=st.integers(1, 4), cols=st.integers(1, 4),
           cell=st.floats(10.0, 200.0, allow_nan=False),
           min_x=st.floats(-2000.0, 2000.0, allow_nan=False),
           min_y=st.floats(-2000.0, 2000.0, allow_nan=False),
           range_m=st.floats(0.0, 500.0, allow_nan=False))
    def test_mirrors_are_exactly_the_disc_tile_overlaps(
            self, data, rows, cols, cell, min_x, min_y, range_m):
        plan = self._plan(data, rows, cols, cell, min_x, min_y)
        pos = Vec2(data.draw(st.floats(min_x - 500.0, min_x + 3000.0,
                                       allow_nan=False)),
                   data.draw(st.floats(min_y - 500.0, min_y + 3000.0,
                                       allow_nan=False)))
        owner = plan.shard_of(pos)
        mirrors = plan.mirror_shards(pos, range_m)
        # Oracle: per-axis closed-interval checks against the clamped
        # *ownership region* (boundary bands reach to infinity on their
        # outer sides — shard_of clamps out-of-extent positions into
        # them), refined by the corner distance only when the point is
        # diagonally off an interior tile corner.
        want = []
        for s in range(plan.shards):
            if s == owner:
                continue
            x_lo, y_lo, x_hi, y_hi = plan.tile(s)
            if s % plan.cols == 0:
                x_lo = -math.inf
            if s % plan.cols == plan.cols - 1:
                x_hi = math.inf
            if s // plan.cols == 0:
                y_lo = -math.inf
            if s // plan.cols == plan.rows - 1:
                y_hi = math.inf
            if not (x_lo <= pos.x + range_m
                    and pos.x - range_m <= x_hi):
                continue
            if not (y_lo <= pos.y + range_m
                    and pos.y - range_m <= y_hi):
                continue
            dx = max(x_lo - pos.x, 0.0, pos.x - x_hi)
            dy = max(y_lo - pos.y, 0.0, pos.y - y_hi)
            if dx > 0.0 and dy > 0.0 and math.hypot(dx, dy) > range_m:
                continue
            want.append(s)
        assert mirrors == want
        assert owner not in mirrors
        audible = plan.audible_shards(pos, range_m)
        assert audible == sorted(set([owner] + mirrors))
        # Soundness: the owner of any point within radio range of the
        # sender is one of the audible shards.
        if range_m:
            r = data.draw(st.floats(0.0, range_m, allow_nan=False))
            theta = data.draw(st.floats(0.0, 2 * math.pi,
                                        allow_nan=False))
            q = Vec2(pos.x + r * math.cos(theta),
                     pos.y + r * math.sin(theta))
            if q.distance_to(pos) <= range_m:
                assert plan.shard_of(q) in audible

    @settings(max_examples=50, deadline=None)
    @given(data=st.data(),
           shards=st.integers(1, 6),
           cell=st.floats(10.0, 200.0, allow_nan=False),
           min_x=st.floats(-2000.0, 2000.0, allow_nan=False),
           range_m=st.floats(0.0, 500.0, allow_nan=False))
    def test_single_row_plan_is_bit_identical_to_the_stripe_plan(
            self, data, shards, cell, min_x, range_m):
        """rows=1 must reproduce the historical stripe predicates
        exactly — including never consulting y."""
        stripe_plan = ShardPlan(min_x=min_x,
                                max_x=min_x + shards * cell + 1.0,
                                shards=shards, cell_size=cell)
        tiled = ShardPlan(min_x=min_x, max_x=min_x + shards * cell + 1.0,
                          shards=shards, cell_size=cell, rows=1,
                          min_y=-123.0, max_y=456.0)
        assert tiled.columns == stripe_plan.columns
        pos = Vec2(data.draw(st.floats(min_x - 500.0, min_x + 3000.0,
                                       allow_nan=False)),
                   data.draw(st.floats(-1e6, 1e6, allow_nan=False)))
        assert tiled.shard_of(pos) == stripe_plan.shard_of(pos)
        assert tiled.mirror_shards(pos, range_m) == \
            stripe_plan.mirror_shards(pos, range_m)

    def test_rows_must_divide_the_shard_count(self):
        with pytest.raises(ValueError):
            ShardPlan(min_x=0.0, max_x=1000.0, shards=4, cell_size=100.0,
                      rows=3, min_y=0.0, max_y=1000.0)

    def test_tall_plans_need_a_y_extent(self):
        with pytest.raises(ValueError):
            ShardPlan(min_x=0.0, max_x=1000.0, shards=4, cell_size=100.0,
                      rows=2)

    def test_row_major_tile_layout(self):
        plan = ShardPlan(min_x=0.0, max_x=400.0, shards=4,
                         cell_size=100.0, rows=2, min_y=0.0, max_y=400.0)
        assert plan.cols == 2
        # Shards 0,1 share the low row band; 2,3 the high one.
        assert plan.row_bands[0] == plan.row_bands[1]
        assert plan.row_bands[2] == plan.row_bands[3]
        assert plan.row_bands[0] != plan.row_bands[2]
        # Shards 0,2 share the low column band; 1,3 the high one.
        assert plan.columns[0] == plan.columns[2]
        assert plan.columns[1] == plan.columns[3]
        assert plan.shard_of(Vec2(50.0, 50.0)) == 0
        assert plan.shard_of(Vec2(350.0, 50.0)) == 1
        assert plan.shard_of(Vec2(50.0, 350.0)) == 2
        assert plan.shard_of(Vec2(350.0, 350.0)) == 3
