"""Docstring coverage enforcement for the public API surface.

Mirrors the CI ``ruff check`` (pydocstyle rules D101/D102/D103) for the
``repro.sim``, ``repro.net``, ``repro.harness`` and ``repro.faults``
packages plus the protocol-stack surface (``repro.core.stack``,
``repro.core.registry``, the ``repro.baselines.gossip`` and
``repro.baselines.reference`` modules), so the docs contract is enforced
even where ruff is not installed: every public class, function, method
and property in those trees must carry a docstring.  Private names
(leading underscore) and dunders are exempt, matching the pydocstyle
visibility rules.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil
from typing import Iterator, List, Tuple

import pytest

DOCUMENTED_PACKAGES = ("repro.sim", "repro.sim.shard", "repro.net",
                       "repro.harness", "repro.faults", "repro.core.stack",
                       "repro.core.registry", "repro.baselines.gossip",
                       "repro.baselines.reference", "repro.rt",
                       "repro.study")


def _iter_modules(package_name: str) -> Iterator[object]:
    package = importlib.import_module(package_name)
    yield package
    # Plain modules (e.g. repro.core.registry) have no __path__.
    for info in pkgutil.iter_modules(getattr(package, "__path__", [])):
        if info.name.startswith("_"):
            continue
        yield importlib.import_module(f"{package_name}.{info.name}")


def _class_members(cls: type) -> Iterator[Tuple[str, object]]:
    for name, member in vars(cls).items():
        if name.startswith("_"):
            continue
        if isinstance(member, property):
            yield f"{cls.__qualname__}.{name} (property)", member.fget
        elif isinstance(member, (classmethod, staticmethod)):
            yield f"{cls.__qualname__}.{name}", member.__func__
        elif inspect.isfunction(member):
            yield f"{cls.__qualname__}.{name}", member


def _undocumented(package_name: str) -> List[str]:
    missing: List[str] = []
    for module in _iter_modules(package_name):
        for name, obj in vars(module).items():
            if name.startswith("_") or getattr(obj, "__module__", None) \
                    != module.__name__:
                continue
            if inspect.isclass(obj):
                if not obj.__doc__:
                    missing.append(f"{module.__name__}.{name}")
                for label, func in _class_members(obj):
                    # Deliberately *not* inspect.getdoc: an override must
                    # carry its own docstring (as pydocstyle requires),
                    # not inherit its parent's.
                    if func is not None and not func.__doc__:
                        missing.append(f"{module.__name__}.{label}")
            elif inspect.isfunction(obj):
                if not obj.__doc__:
                    missing.append(f"{module.__name__}.{name}")
    return missing


@pytest.mark.parametrize("package_name", DOCUMENTED_PACKAGES)
def test_every_public_api_has_a_docstring(package_name):
    missing = _undocumented(package_name)
    assert not missing, (
        f"{len(missing)} public APIs in {package_name} lack docstrings "
        f"(args/returns/units belong there):\n  " + "\n  ".join(missing))
