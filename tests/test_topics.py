"""Unit tests for hierarchical topics (repro.core.topics)."""

from __future__ import annotations

import pytest

from repro.core.topics import (Topic, TopicError, covers, related,
                               subscription_matches_event,
                               subscriptions_related)


class TestParsing:
    def test_simple_topic(self):
        t = Topic(".grenoble.conferences.middleware")
        assert t.parts == ("grenoble", "conferences", "middleware")
        assert str(t) == ".grenoble.conferences.middleware"
        assert t.depth == 3

    def test_root(self):
        root = Topic(".")
        assert root.is_root
        assert root.parts == ()
        assert str(root) == "."
        assert Topic.root() == root

    def test_copy_constructor(self):
        t = Topic(".a.b")
        assert Topic(t) == t

    def test_from_parts_round_trip(self):
        t = Topic.from_parts(["a", "b", "c"])
        assert t == Topic(".a.b.c")

    @pytest.mark.parametrize("bad", [
        "a.b",            # not absolute
        ".a.",            # trailing dot
        ".a..b",          # empty segment
        ".a b",           # whitespace
        "",               # empty string
    ])
    def test_malformed_rejected(self, bad):
        with pytest.raises(TopicError):
            Topic(bad)

    def test_non_string_rejected(self):
        with pytest.raises(TopicError):
            Topic(42)   # type: ignore[arg-type]


class TestStructure:
    def test_parent_chain(self):
        t = Topic(".a.b.c")
        assert t.parent == Topic(".a.b")
        assert t.parent.parent == Topic(".a")
        assert t.parent.parent.parent == Topic(".")

    def test_root_is_own_parent(self):
        assert Topic.root().parent == Topic.root()

    def test_child(self):
        assert Topic(".a").child("b") == Topic(".a.b")
        assert Topic.root().child("x") == Topic(".x")

    def test_child_rejects_compound_segment(self):
        with pytest.raises(TopicError):
            Topic(".a").child("b.c")

    def test_ancestors_nearest_first(self):
        t = Topic(".a.b.c")
        assert list(t.ancestors()) == [Topic(".a.b"), Topic(".a"),
                                       Topic(".")]

    def test_equality_and_hash(self):
        assert Topic(".a.b") == Topic(".a.b")
        assert hash(Topic(".a.b")) == hash(Topic(".a.b"))
        assert Topic(".a.b") != Topic(".a.c")
        assert len({Topic(".x"), Topic(".x"), Topic(".y")}) == 2

    def test_ordering(self):
        assert sorted([Topic(".b"), Topic(".a.z"), Topic(".a")]) == \
            [Topic(".a"), Topic(".a.z"), Topic(".b")]


class TestRelations:
    def test_covers_descendant(self):
        assert Topic(".a").covers(Topic(".a.b.c"))
        assert Topic(".a.b").covers(Topic(".a.b"))

    def test_covers_rejects_ancestor_and_sibling(self):
        assert not Topic(".a.b").covers(Topic(".a"))
        assert not Topic(".a.b").covers(Topic(".a.c"))

    def test_segment_boundaries_respected(self):
        """`.foo` must not cover `.foobar`."""
        assert not Topic(".foo").covers(Topic(".foobar"))
        assert not related(".foo", ".foobar")

    def test_root_covers_everything(self):
        assert Topic.root().covers(Topic(".anything.at.all"))
        assert not Topic(".a").covers(Topic.root())

    def test_is_ancestor_strict(self):
        assert Topic(".a").is_ancestor_of(Topic(".a.b"))
        assert not Topic(".a").is_ancestor_of(Topic(".a"))

    def test_related_symmetric(self):
        # The Fig. 1 case: T1 super-topic of T2 relates both ways.
        assert related(".t0.t1", ".t0.t1.t2")
        assert related(".t0.t1.t2", ".t0.t1")
        assert not related(".t0.t1", ".t0.t4")

    def test_module_level_covers_accepts_strings(self):
        assert covers(".a", ".a.b")
        assert not covers(".a.b", ".a")


class TestSubscriptionMatching:
    def test_event_matches_any_subscription(self):
        subs = [Topic(".sports"), Topic(".news.tech")]
        assert subscription_matches_event(subs, Topic(".sports.football"))
        assert subscription_matches_event(subs, Topic(".news.tech"))
        assert not subscription_matches_event(subs, Topic(".news.politics"))

    def test_empty_subscriptions_match_nothing(self):
        assert not subscription_matches_event([], Topic(".a"))

    def test_subscriptions_related_cross_pairs(self):
        mine = [Topic(".t0.t1")]
        theirs = [Topic(".t0.t1.t2")]
        assert subscriptions_related(mine, theirs)
        assert subscriptions_related(theirs, mine)

    def test_subscriptions_unrelated_branches(self):
        assert not subscriptions_related([Topic(".a.b")], [Topic(".a.c")])

    def test_paper_fig1_scenario(self):
        """p1 subscribes T1, p2 subscribes T2 (subtopic), p3 subscribes T0:
        all three pairs must match for the Fig. 1 exchange to happen."""
        t0, t1, t2 = Topic(".t0"), Topic(".t0.t1"), Topic(".t0.t1.t2")
        assert subscriptions_related([t1], [t2])
        assert subscriptions_related([t1], [t0])
        assert subscriptions_related([t2], [t0])
        # And entitlement is asymmetric: p1 (T1) is entitled to T2 events,
        # p2 (T2) is NOT entitled to T1 events.
        assert subscription_matches_event([t1], t2)
        assert not subscription_matches_event([t2], t1)
