"""Tests for the UDP loopback cluster (repro.rt.cluster).

These bind real ``127.0.0.1`` datagram sockets: small populations, high
time compression, generous assertions — the point is that registered
protocol stacks deliver over an actual kernel network path, not exact
timing.
"""

from __future__ import annotations

import pytest

from repro.core.base import ProtocolCounters
from repro.harness.scenario import (FixedPositionsSpec, Publication,
                                    ScenarioConfig)
from repro.rt.bridge import grid_positions
from repro.rt.cluster import RT_FAULT_KINDS, LoopbackCluster, RtFault


def tiny_config(protocol: str = "frugal", n: int = 5,
                seed: int = 0, **changes) -> ScenarioConfig:
    """A minimal full-mesh scenario: one publication, short window."""
    cfg = ScenarioConfig(
        n_processes=n,
        mobility=FixedPositionsSpec(grid_positions(n)),
        duration=10.0, warmup=4.0, seed=seed, protocol=protocol,
        subscriber_fraction=0.8, speed_sensor=False,
        publications=(Publication(at=1.0, validity=8.0),))
    return cfg.with_changes(**changes) if changes else cfg


class TestClusterDelivery:
    def test_frugal_delivers_over_real_udp(self):
        result = LoopbackCluster(tiny_config(), time_scale=20.0).run()
        assert result.reliability() == 1.0
        assert result.datagrams_sent > 0
        assert result.wire_bytes_sent > 0
        assert result.frames_rejected == 0
        counters = result.counters()
        assert counters.heartbeats_sent > 0
        assert counters.delivered_count >= counters.batches_sent > 0

    def test_counters_are_windowed_per_node(self):
        cfg = tiny_config()
        result = LoopbackCluster(cfg, time_scale=20.0).run()
        assert len(result.per_node_counters) == cfg.n_processes
        # The warm-up baseline was subtracted: the measurement window is
        # 10 virtual seconds of ~1 Hz heartbeats, so per-node heartbeat
        # counts must be nowhere near the lifetime (14 s) tally.
        for c in result.per_node_counters:
            assert isinstance(c, ProtocolCounters)
            assert 0 <= c.heartbeats_sent <= 13

    def test_non_subscribers_drop_parasites(self):
        result = LoopbackCluster(tiny_config(), time_scale=20.0).run()
        reports = result.per_event_reports()
        assert len(reports) == 1
        assert reports[0].subscribers == len(result.subscriber_ids) == 4

    def test_same_seed_same_subscriber_draw_as_sim(self):
        from repro.harness.scenario import select_subscribers
        from repro.sim import RngRegistry
        cfg = tiny_config()
        result = LoopbackCluster(cfg, time_scale=20.0).run()
        expected = select_subscribers(cfg, RngRegistry(cfg.seed))
        assert result.subscriber_ids == expected

    def test_summary_schema(self):
        result = LoopbackCluster(tiny_config(), time_scale=20.0).run()
        summary = result.summary()
        for key in ("reliability", "messages_per_node", "datagrams_sent",
                    "wire_bytes_sent", "frames_rejected", "wallclock_s"):
            assert key in summary
        assert summary["messages_per_node"] > 0


class TestClusterFaults:
    def test_crashed_subscriber_misses_the_event(self):
        cfg = tiny_config()
        result = LoopbackCluster(cfg, time_scale=20.0).run()
        victim = [i for i in result.subscriber_ids][-1]
        faulted = LoopbackCluster(
            cfg, time_scale=20.0,
            faults=(RtFault(at=0.2, kind="crash", node=victim),)).run()
        n_subs = len(faulted.subscriber_ids)
        assert faulted.reliability() == pytest.approx((n_subs - 1) / n_subs)

    def test_recovered_subscriber_catches_up(self):
        # Crash before the publication, recover mid-validity: the
        # store-and-forward layers must replay the event to the
        # returning node (the paper's core catch-up behaviour), so
        # reliability recovers to 1.0.  The window is generous —
        # rediscovery (1 s heartbeats) plus the 2 s forwarding backoff
        # put the catch-up several virtual seconds after the fault ends.
        cfg = tiny_config(
            duration=16.0,
            publications=(Publication(at=1.0, validity=14.0),))
        probe = LoopbackCluster(cfg, time_scale=20.0).run()
        victim = [i for i in probe.subscriber_ids][-1]
        result = LoopbackCluster(
            cfg, time_scale=20.0,
            faults=(RtFault(at=0.2, kind="crash", node=victim),
                    RtFault(at=4.0, kind="recover", node=victim))).run()
        assert result.reliability() == 1.0

    def test_silence_window_is_survivable(self):
        # Silence outlives the 2.5 s neighbour-eviction horizon, so both
        # sides rediscover each other after the restore and the id
        # exchange replays the missed event (same budget as above).
        cfg = tiny_config(
            duration=16.0,
            publications=(Publication(at=1.0, validity=14.0),))
        probe = LoopbackCluster(cfg, time_scale=20.0).run()
        victim = [i for i in probe.subscriber_ids][-1]
        result = LoopbackCluster(
            cfg, time_scale=20.0,
            faults=(RtFault(at=0.2, kind="silence", node=victim),
                    RtFault(at=4.0, kind="restore", node=victim))).run()
        assert result.reliability() == 1.0


class TestValidation:
    def test_fault_vocabulary(self):
        assert RT_FAULT_KINDS == ("crash", "recover", "silence", "restore")
        with pytest.raises(ValueError):
            RtFault(at=1.0, kind="drain", node=0)
        with pytest.raises(ValueError):
            RtFault(at=-1.0, kind="crash", node=0)
        with pytest.raises(ValueError):
            RtFault(at=1.0, kind="crash", node=-1)

    def test_fault_node_out_of_range(self):
        with pytest.raises(ValueError, match="only 5 nodes"):
            LoopbackCluster(tiny_config(),
                            faults=(RtFault(at=1.0, kind="crash", node=9),))

    def test_bad_time_scale_rejected(self):
        with pytest.raises(ValueError):
            LoopbackCluster(tiny_config(), time_scale=0.0)

    def test_unknown_protocol_error_lists_known_names(self):
        # ScenarioConfig validates protocol itself, so sneak an unknown
        # name past it to prove the cluster's own guard also reports
        # the full registry (satellite: registry ergonomics).
        cfg = tiny_config()
        object.__setattr__(cfg, "protocol", "bogus-proto")
        with pytest.raises(ValueError) as err:
            LoopbackCluster(cfg)
        assert "bogus-proto" in str(err.value)
        assert "frugal" in str(err.value)
        assert "gossip" in str(err.value)


class TestRegistryErgonomics:
    """Unknown-protocol errors on every surface list the known names."""

    def test_scenario_config_lists_known_protocols(self):
        with pytest.raises(ValueError) as err:
            tiny_config(protocol="no-such-protocol")
        assert "frugal" in str(err.value)
        assert "simple-flooding" in str(err.value)

    def test_registry_get_lists_known_protocols(self):
        from repro.core import registry
        with pytest.raises(ValueError) as err:
            registry.get("no-such-protocol")
        assert "no-such-protocol" in str(err.value)
        assert "frugal" in str(err.value)

    def test_rt_cli_lists_known_protocols(self, capsys):
        from repro.rt.cli import main
        code = main(["loopback-bridge", "--protocols", "no-such-protocol"])
        assert code == 2
        err = capsys.readouterr().err
        assert "no-such-protocol" in err
        assert "frugal" in err

    def test_harness_cli_unknown_experiment_exits_2(self, capsys):
        from repro.harness.cli import main
        assert main(["no-such-experiment"]) == 2
